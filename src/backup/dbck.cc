#include "src/backup/dbck.h"

#include <map>
#include <set>
#include <utility>

#include "src/core/schema.h"

namespace moira {
namespace {

// Renders "table row <n>: <what>".
DbckIssue Issue(const char* table, size_t row, const std::string& what, bool repairable) {
  return DbckIssue{table, "row " + std::to_string(row) + ": " + what, repairable};
}

}  // namespace

bool DbConsistencyChecker::UserIdExists(int64_t users_id) {
  return mc_->ExactOne(mc_->users(), "users_id", Value(users_id), MR_USER).code ==
         MR_SUCCESS;
}

bool DbConsistencyChecker::ListIdExists(int64_t list_id) {
  return mc_->ListById(list_id).code == MR_SUCCESS;
}

bool DbConsistencyChecker::MachineIdExists(int64_t mach_id) {
  return mc_->ExactOne(mc_->machine(), "mach_id", Value(mach_id), MR_MACHINE).code ==
         MR_SUCCESS;
}

bool DbConsistencyChecker::StringIdExists(int64_t string_id) {
  return mc_->ExactOne(mc_->strings(), "string_id", Value(string_id), MR_STRING).code ==
         MR_SUCCESS;
}

void DbConsistencyChecker::CheckUsers(std::vector<DbckIssue>* issues) {
  Table* users = mc_->users();
  std::set<std::string> logins;
  std::set<int64_t> ids;
  users->Scan([&](size_t row, const Row&) {
    const std::string& login = MoiraContext::StrCell(users, row, "login");
    if (!logins.insert(login).second) {
      issues->push_back(Issue("users", row, "duplicate login " + login, false));
    }
    int64_t users_id = MoiraContext::IntCell(users, row, "users_id");
    if (!ids.insert(users_id).second) {
      issues->push_back(
          Issue("users", row, "duplicate users_id " + std::to_string(users_id), false));
    }
    const std::string& potype = MoiraContext::StrCell(users, row, "potype");
    if (potype == "POP" &&
        !MachineIdExists(MoiraContext::IntCell(users, row, "pop_id"))) {
      issues->push_back(Issue("users", row, login + " POP box on missing machine", true));
    }
    if (potype == "SMTP" &&
        !StringIdExists(MoiraContext::IntCell(users, row, "box_id"))) {
      issues->push_back(Issue("users", row, login + " SMTP box string missing", true));
    }
    return true;
  });
}

void DbConsistencyChecker::CheckLists(std::vector<DbckIssue>* issues) {
  Table* lists = mc_->list();
  lists->Scan([&](size_t row, const Row&) {
    const std::string& acl_type = MoiraContext::StrCell(lists, row, "acl_type");
    int64_t acl_id = MoiraContext::IntCell(lists, row, "acl_id");
    const std::string& name = MoiraContext::StrCell(lists, row, "name");
    if (acl_type == "USER" && !UserIdExists(acl_id)) {
      issues->push_back(Issue("list", row, name + " ACE user missing", false));
    }
    if (acl_type == "LIST" && !ListIdExists(acl_id)) {
      issues->push_back(Issue("list", row, name + " ACE list missing", false));
    }
    return true;
  });
}

void DbConsistencyChecker::CheckMembers(std::vector<DbckIssue>* issues) {
  Table* members = mc_->members();
  members->Scan([&](size_t row, const Row& r) {
    int64_t list_id = r[members->ColumnIndex("list_id")].AsInt();
    const std::string& type = r[members->ColumnIndex("member_type")].AsString();
    int64_t member_id = r[members->ColumnIndex("member_id")].AsInt();
    if (!ListIdExists(list_id)) {
      issues->push_back(Issue("members", row, "membership in missing list", true));
      return true;
    }
    bool resolved = (type == "USER" && UserIdExists(member_id)) ||
                    (type == "LIST" && ListIdExists(member_id)) ||
                    (type == "STRING" && StringIdExists(member_id));
    if (!resolved) {
      issues->push_back(Issue("members", row, "dangling " + type + " member", true));
    }
    return true;
  });
}

void DbConsistencyChecker::CheckMachinesAndClusters(std::vector<DbckIssue>* issues) {
  Table* mcmap = mc_->mcmap();
  mcmap->Scan([&](size_t row, const Row& r) {
    if (!MachineIdExists(r[0].AsInt())) {
      issues->push_back(Issue("mcmap", row, "mapping for missing machine", true));
    }
    if (mc_->ExactOne(mc_->cluster(), "clu_id", Value(r[1].AsInt()), MR_CLUSTER).code !=
        MR_SUCCESS) {
      issues->push_back(Issue("mcmap", row, "mapping for missing cluster", true));
    }
    return true;
  });
  Table* svc = mc_->svc();
  svc->Scan([&](size_t row, const Row& r) {
    if (mc_->ExactOne(mc_->cluster(), "clu_id", Value(r[0].AsInt()), MR_CLUSTER).code !=
        MR_SUCCESS) {
      issues->push_back(Issue("svc", row, "service data for missing cluster", true));
    }
    return true;
  });
}

void DbConsistencyChecker::CheckFilesys(std::vector<DbckIssue>* issues) {
  Table* filesys = mc_->filesys();
  filesys->Scan([&](size_t row, const Row&) {
    const std::string& label = MoiraContext::StrCell(filesys, row, "label");
    if (!MachineIdExists(MoiraContext::IntCell(filesys, row, "mach_id"))) {
      issues->push_back(Issue("filesys", row, label + " on missing machine", false));
    }
    if (!UserIdExists(MoiraContext::IntCell(filesys, row, "owner"))) {
      issues->push_back(Issue("filesys", row, label + " owner missing", false));
    }
    if (!ListIdExists(MoiraContext::IntCell(filesys, row, "owners"))) {
      issues->push_back(Issue("filesys", row, label + " owners list missing", false));
    }
    if (MoiraContext::StrCell(filesys, row, "type") == "NFS") {
      int64_t phys_id = MoiraContext::IntCell(filesys, row, "phys_id");
      if (mc_->ExactOne(mc_->nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS).code !=
          MR_SUCCESS) {
        issues->push_back(Issue("filesys", row, label + " on missing partition", false));
      }
    }
    return true;
  });
}

void DbConsistencyChecker::CheckQuotasAndAllocation(std::vector<DbckIssue>* issues) {
  Table* quota = mc_->nfsquota();
  std::map<int64_t, int64_t> allocation;  // phys_id -> summed quota
  quota->Scan([&](size_t row, const Row& r) {
    bool dangling = false;
    if (!UserIdExists(r[quota->ColumnIndex("users_id")].AsInt())) {
      issues->push_back(Issue("nfsquota", row, "quota for missing user", true));
      dangling = true;
    }
    int64_t filsys_id = r[quota->ColumnIndex("filsys_id")].AsInt();
    if (mc_->ExactOne(mc_->filesys(), "filsys_id", Value(filsys_id), MR_FILESYS).code !=
        MR_SUCCESS) {
      issues->push_back(Issue("nfsquota", row, "quota for missing filesystem", true));
      dangling = true;
    }
    if (!dangling) {
      allocation[r[quota->ColumnIndex("phys_id")].AsInt()] +=
          r[quota->ColumnIndex("quota")].AsInt();
    }
    return true;
  });
  Table* phys = mc_->nfsphys();
  phys->Scan([&](size_t row, const Row&) {
    int64_t phys_id = MoiraContext::IntCell(phys, row, "nfsphys_id");
    int64_t recorded = MoiraContext::IntCell(phys, row, "allocated");
    int64_t actual = allocation.contains(phys_id) ? allocation[phys_id] : 0;
    if (recorded != actual) {
      issues->push_back(Issue("nfsphys", row,
                              "allocated=" + std::to_string(recorded) +
                                  " but quotas sum to " + std::to_string(actual),
                              true));
    }
    return true;
  });
}

void DbConsistencyChecker::CheckQuotaUsage(std::vector<DbckIssue>* issues) {
  Table* quota = mc_->nfsquota();
  // Keys of the quota rows that survive Repair(): (users_id, phys_id) of
  // every nfsquota row whose user and filesystem both still exist.  The
  // dangling rows themselves are reported by CheckQuotasAndAllocation.
  std::set<std::pair<int64_t, int64_t>> quota_keys;
  quota->Scan([&](size_t row, const Row& r) {
    int64_t hard = r[quota->ColumnIndex("quota")].AsInt();
    int64_t soft = r[quota->ColumnIndex("soft")].AsInt();
    if (soft < 0) {
      issues->push_back(
          Issue("nfsquota", row, "negative soft limit " + std::to_string(soft), true));
    } else if (soft > hard) {
      issues->push_back(Issue("nfsquota", row,
                              "soft limit " + std::to_string(soft) +
                                  " exceeds hard quota " + std::to_string(hard),
                              true));
    }
    bool dangling =
        !UserIdExists(r[quota->ColumnIndex("users_id")].AsInt()) ||
        mc_->ExactOne(mc_->filesys(), "filsys_id",
                      Value(r[quota->ColumnIndex("filsys_id")].AsInt()), MR_FILESYS)
                .code != MR_SUCCESS;
    if (!dangling) {
      quota_keys.insert({r[quota->ColumnIndex("users_id")].AsInt(),
                         r[quota->ColumnIndex("phys_id")].AsInt()});
    }
    return true;
  });
  // Usage rows must point at a live user, filesystem, and quota row; the
  // rollup expectations below count only the rows that pass (with negative
  // usage treated as the 0 that Repair() clamps it to).
  Table* usage = mc_->quotausage();
  std::map<std::pair<std::string, int64_t>, std::pair<int64_t, int64_t>> sums;
  usage->Scan([&](size_t row, const Row& r) {
    int64_t users_id = r[usage->ColumnIndex("users_id")].AsInt();
    int64_t filsys_id = r[usage->ColumnIndex("filsys_id")].AsInt();
    int64_t phys_id = r[usage->ColumnIndex("phys_id")].AsInt();
    int64_t used = r[usage->ColumnIndex("usage")].AsInt();
    int64_t reports = r[usage->ColumnIndex("reports")].AsInt();
    if (!UserIdExists(users_id)) {
      issues->push_back(Issue("quotausage", row, "usage for missing user", true));
      return true;
    }
    if (mc_->ExactOne(mc_->filesys(), "filsys_id", Value(filsys_id), MR_FILESYS).code !=
        MR_SUCCESS) {
      issues->push_back(Issue("quotausage", row, "usage for missing filesystem", true));
      return true;
    }
    if (!quota_keys.contains({users_id, phys_id})) {
      issues->push_back(Issue("quotausage", row, "usage with no matching quota", true));
      return true;
    }
    if (used < 0) {
      issues->push_back(
          Issue("quotausage", row, "negative usage " + std::to_string(used), true));
      used = 0;
    }
    sums[{kRollupUser, users_id}].first += used;
    sums[{kRollupUser, users_id}].second += reports;
    sums[{kRollupFilesys, filsys_id}].first += used;
    sums[{kRollupFilesys, filsys_id}].second += reports;
    return true;
  });
  Table* rollup = mc_->quotarollup();
  std::set<std::pair<std::string, int64_t>> seen;
  rollup->Scan([&](size_t row, const Row&) {
    const std::string& kind = MoiraContext::StrCell(rollup, row, "kind");
    int64_t id = MoiraContext::IntCell(rollup, row, "id");
    if (kind != kRollupUser && kind != kRollupFilesys) {
      issues->push_back(Issue("quotarollup", row, "unknown rollup kind " + kind, true));
      return true;
    }
    if (!seen.insert({kind, id}).second) {
      issues->push_back(Issue("quotarollup", row,
                              "duplicate " + kind + " rollup for id " + std::to_string(id),
                              true));
      return true;
    }
    auto it = sums.find({kind, id});
    int64_t want_usage = it == sums.end() ? 0 : it->second.first;
    int64_t want_reports = it == sums.end() ? 0 : it->second.second;
    if (MoiraContext::IntCell(rollup, row, "usage") != want_usage ||
        MoiraContext::IntCell(rollup, row, "reports") != want_reports) {
      issues->push_back(
          Issue("quotarollup", row,
                kind + " " + std::to_string(id) + " rollup usage=" +
                    std::to_string(MoiraContext::IntCell(rollup, row, "usage")) +
                    " but usage rows sum to " + std::to_string(want_usage),
                true));
    }
    return true;
  });
  for (const auto& [key, totals] : sums) {
    if ((totals.first != 0 || totals.second != 0) && !seen.contains(key)) {
      issues->push_back(DbckIssue{
          "quotarollup",
          "missing " + key.first + " rollup for id " + std::to_string(key.second), true});
    }
  }
}

void DbConsistencyChecker::CheckServerHosts(std::vector<DbckIssue>* issues) {
  Table* sh = mc_->serverhosts();
  sh->Scan([&](size_t row, const Row&) {
    const std::string& service = MoiraContext::StrCell(sh, row, "service");
    if (mc_->ServiceByName(service).code != MR_SUCCESS) {
      issues->push_back(Issue("serverhosts", row, "host for missing service " + service,
                              true));
    }
    if (!MachineIdExists(MoiraContext::IntCell(sh, row, "mach_id"))) {
      issues->push_back(Issue("serverhosts", row, service + " on missing machine", true));
    }
    return true;
  });
}

void DbConsistencyChecker::CheckAcls(std::vector<DbckIssue>* issues) {
  Table* capacls = mc_->capacls();
  capacls->Scan([&](size_t row, const Row& r) {
    if (!ListIdExists(r[capacls->ColumnIndex("list_id")].AsInt())) {
      issues->push_back(Issue("capacls", row, "capability points at missing list", true));
    }
    return true;
  });
  Table* hostaccess = mc_->hostaccess();
  hostaccess->Scan([&](size_t row, const Row&) {
    if (!MachineIdExists(MoiraContext::IntCell(hostaccess, row, "mach_id"))) {
      issues->push_back(Issue("hostaccess", row, "access entry for missing machine",
                              true));
    }
    return true;
  });
}

std::vector<DbckIssue> DbConsistencyChecker::Check() {
  std::vector<DbckIssue> issues;
  CheckUsers(&issues);
  CheckLists(&issues);
  CheckMembers(&issues);
  CheckMachinesAndClusters(&issues);
  CheckFilesys(&issues);
  CheckQuotasAndAllocation(&issues);
  CheckQuotaUsage(&issues);
  CheckServerHosts(&issues);
  CheckAcls(&issues);
  return issues;
}

int DbConsistencyChecker::Repair(std::vector<std::string>* log) {
  int repairs = 0;
  // Counts a repair and, when the caller asked for the per-violation report,
  // records one line describing it.
  auto note = [&](const char* table, size_t row, const std::string& what) {
    ++repairs;
    if (log != nullptr) {
      log->push_back(std::string(table) + " row " + std::to_string(row) + ": " + what);
    }
  };
  // Dangling members.
  Table* members = mc_->members();
  std::vector<size_t> drop;
  members->Scan([&](size_t row, const Row& r) {
    int64_t list_id = r[0].AsInt();
    const std::string& type = r[1].AsString();
    int64_t member_id = r[2].AsInt();
    bool ok = ListIdExists(list_id) &&
              ((type == "USER" && UserIdExists(member_id)) ||
               (type == "LIST" && ListIdExists(member_id)) ||
               (type == "STRING" && StringIdExists(member_id)));
    if (!ok) {
      drop.push_back(row);
    }
    return true;
  });
  for (size_t row : drop) {
    members->Delete(row);
    note("members", row, "dropped dangling membership");
  }
  // Dangling quotas.
  Table* quota = mc_->nfsquota();
  drop.clear();
  quota->Scan([&](size_t row, const Row& r) {
    int64_t filsys_id = r[quota->ColumnIndex("filsys_id")].AsInt();
    if (!UserIdExists(r[quota->ColumnIndex("users_id")].AsInt()) ||
        mc_->ExactOne(mc_->filesys(), "filsys_id", Value(filsys_id), MR_FILESYS).code !=
            MR_SUCCESS) {
      drop.push_back(row);
    }
    return true;
  });
  for (size_t row : drop) {
    quota->Delete(row);
    note("nfsquota", row, "dropped quota for missing user or filesystem");
  }
  // Soft limits clamped into [0, hard quota].
  quota->Scan([&](size_t row, const Row& r) {
    int64_t hard = r[quota->ColumnIndex("quota")].AsInt();
    int64_t soft = r[quota->ColumnIndex("soft")].AsInt();
    int64_t fixed = soft < 0 ? 0 : (soft > hard ? hard : soft);
    if (fixed != soft) {
      MoiraContext::SetCell(quota, row, "soft", Value(fixed));
      note("nfsquota", row,
           "clamped soft limit " + std::to_string(soft) + " -> " + std::to_string(fixed));
    }
    return true;
  });
  // Usage rows without a live user, filesystem, or backing quota row are
  // dropped; negative usage is clamped to zero.
  std::set<std::pair<int64_t, int64_t>> quota_keys;
  quota->Scan([&](size_t, const Row& r) {
    quota_keys.insert({r[quota->ColumnIndex("users_id")].AsInt(),
                       r[quota->ColumnIndex("phys_id")].AsInt()});
    return true;
  });
  Table* usage = mc_->quotausage();
  std::vector<std::pair<size_t, std::string>> doomed_usage;
  usage->Scan([&](size_t row, const Row& r) {
    int64_t users_id = r[usage->ColumnIndex("users_id")].AsInt();
    int64_t filsys_id = r[usage->ColumnIndex("filsys_id")].AsInt();
    int64_t phys_id = r[usage->ColumnIndex("phys_id")].AsInt();
    if (!UserIdExists(users_id)) {
      doomed_usage.emplace_back(row, "dropped usage for missing user");
    } else if (mc_->ExactOne(mc_->filesys(), "filsys_id", Value(filsys_id), MR_FILESYS)
                   .code != MR_SUCCESS) {
      doomed_usage.emplace_back(row, "dropped usage for missing filesystem");
    } else if (!quota_keys.contains({users_id, phys_id})) {
      doomed_usage.emplace_back(row, "dropped usage with no matching quota");
    } else if (int64_t used = r[usage->ColumnIndex("usage")].AsInt(); used < 0) {
      MoiraContext::SetCell(usage, row, "usage", Value(int64_t{0}));
      note("quotausage", row, "clamped negative usage " + std::to_string(used) + " -> 0");
    }
    return true;
  });
  for (const auto& [row, what] : doomed_usage) {
    usage->Delete(row);
    note("quotausage", row, what);
  }
  // Rebuild the rollup aggregates from the surviving usage rows.
  std::map<std::pair<std::string, int64_t>, std::pair<int64_t, int64_t>> sums;
  usage->Scan([&](size_t, const Row& r) {
    int64_t used = r[usage->ColumnIndex("usage")].AsInt();
    int64_t reports = r[usage->ColumnIndex("reports")].AsInt();
    sums[{kRollupUser, r[usage->ColumnIndex("users_id")].AsInt()}].first += used;
    sums[{kRollupUser, r[usage->ColumnIndex("users_id")].AsInt()}].second += reports;
    sums[{kRollupFilesys, r[usage->ColumnIndex("filsys_id")].AsInt()}].first += used;
    sums[{kRollupFilesys, r[usage->ColumnIndex("filsys_id")].AsInt()}].second += reports;
    return true;
  });
  Table* rollup = mc_->quotarollup();
  std::set<std::pair<std::string, int64_t>> seen_rollups;
  std::vector<std::pair<size_t, std::string>> stray_rollups;
  rollup->Scan([&](size_t row, const Row&) {
    const std::string& kind = MoiraContext::StrCell(rollup, row, "kind");
    int64_t id = MoiraContext::IntCell(rollup, row, "id");
    if (kind != kRollupUser && kind != kRollupFilesys) {
      stray_rollups.emplace_back(row, "dropped rollup with unknown kind " + kind);
      return true;
    }
    if (!seen_rollups.insert({kind, id}).second) {
      stray_rollups.emplace_back(
          row, "dropped duplicate " + kind + " rollup for id " + std::to_string(id));
      return true;
    }
    auto it = sums.find({kind, id});
    int64_t want_usage = it == sums.end() ? 0 : it->second.first;
    int64_t want_reports = it == sums.end() ? 0 : it->second.second;
    int64_t have_usage = MoiraContext::IntCell(rollup, row, "usage");
    if (have_usage != want_usage ||
        MoiraContext::IntCell(rollup, row, "reports") != want_reports) {
      MoiraContext::SetCell(rollup, row, "usage", Value(want_usage));
      MoiraContext::SetCell(rollup, row, "reports", Value(want_reports));
      MoiraContext::SetCell(rollup, row, "modtime", Value(mc_->Now()));
      note("quotarollup", row,
           kind + " " + std::to_string(id) + " rollup usage " +
               std::to_string(have_usage) + " -> " + std::to_string(want_usage));
    }
    return true;
  });
  for (const auto& [row, what] : stray_rollups) {
    rollup->Delete(row);
    note("quotarollup", row, what);
  }
  for (const auto& [key, totals] : sums) {
    if ((totals.first != 0 || totals.second != 0) && !seen_rollups.contains(key)) {
      size_t row = rollup->Append({Value(key.first), Value(key.second),
                                   Value(totals.first), Value(totals.second),
                                   Value(mc_->Now())});
      note("quotarollup", row,
           "recreated " + key.first + " rollup for id " + std::to_string(key.second));
    }
  }
  // Dangling mcmap / svc / serverhosts / capacls / hostaccess rows.
  auto drop_where = [&](Table* table, const char* name, const char* what, auto bad) {
    std::vector<size_t> doomed;
    table->Scan([&](size_t row, const Row& r) {
      if (bad(row, r)) {
        doomed.push_back(row);
      }
      return true;
    });
    for (size_t row : doomed) {
      table->Delete(row);
      note(name, row, what);
    }
  };
  drop_where(mc_->mcmap(), "mcmap", "dropped dangling mapping",
             [&](size_t, const Row& r) {
               return !MachineIdExists(r[0].AsInt()) ||
                      mc_->ExactOne(mc_->cluster(), "clu_id", Value(r[1].AsInt()),
                                    MR_CLUSTER)
                              .code != MR_SUCCESS;
             });
  drop_where(mc_->svc(), "svc", "dropped service data for missing cluster",
             [&](size_t, const Row& r) {
               return mc_->ExactOne(mc_->cluster(), "clu_id", Value(r[0].AsInt()),
                                    MR_CLUSTER)
                          .code != MR_SUCCESS;
             });
  Table* sh = mc_->serverhosts();
  drop_where(sh, "serverhosts", "dropped dangling server host",
             [&](size_t row, const Row&) {
               return mc_->ServiceByName(MoiraContext::StrCell(sh, row, "service")).code !=
                          MR_SUCCESS ||
                      !MachineIdExists(MoiraContext::IntCell(sh, row, "mach_id"));
             });
  Table* capacls = mc_->capacls();
  drop_where(capacls, "capacls", "dropped capability for missing list",
             [&](size_t row, const Row&) {
               return !ListIdExists(MoiraContext::IntCell(capacls, row, "list_id"));
             });
  Table* hostaccess = mc_->hostaccess();
  drop_where(hostaccess, "hostaccess", "dropped access entry for missing machine",
             [&](size_t row, const Row&) {
               return !MachineIdExists(MoiraContext::IntCell(hostaccess, row, "mach_id"));
             });
  // Poboxes pointing nowhere are cleared to NONE.
  Table* users = mc_->users();
  users->Scan([&](size_t row, const Row&) {
    const std::string& potype = MoiraContext::StrCell(users, row, "potype");
    bool broken =
        (potype == "POP" &&
         !MachineIdExists(MoiraContext::IntCell(users, row, "pop_id"))) ||
        (potype == "SMTP" && !StringIdExists(MoiraContext::IntCell(users, row, "box_id")));
    if (broken) {
      MoiraContext::SetCell(users, row, "potype", Value("NONE"));
      note("users", row, "cleared " + potype + " pobox to NONE");
    }
    return true;
  });
  // Recompute partition allocations from the surviving quotas.
  std::map<int64_t, int64_t> allocation;
  quota->Scan([&](size_t, const Row& r) {
    allocation[r[quota->ColumnIndex("phys_id")].AsInt()] +=
        r[quota->ColumnIndex("quota")].AsInt();
    return true;
  });
  Table* phys = mc_->nfsphys();
  phys->Scan([&](size_t row, const Row&) {
    int64_t phys_id = MoiraContext::IntCell(phys, row, "nfsphys_id");
    int64_t actual = allocation.contains(phys_id) ? allocation[phys_id] : 0;
    int64_t recorded = MoiraContext::IntCell(phys, row, "allocated");
    if (recorded != actual) {
      MoiraContext::SetCell(phys, row, "allocated", Value(actual));
      note("nfsphys", row,
           "recomputed allocated " + std::to_string(recorded) + " -> " +
               std::to_string(actual));
    }
    return true;
  });
  return repairs;
}

}  // namespace moira
