// mrbackup / mrrestore (paper section 5.2.2).
//
// mrbackup copies each relation into an ASCII file: one line per row, colon
// separated fields, with ':' and '\' escaped as \: and \\ and non-printing
// characters as \nnn octal.  nightly.sh keeps the last three backups on line
// (backup_1 newest).  mrrestore rebuilds an empty database from the files;
// journal replay re-executes changes made after the dump, bounding loss to
// well under a day of transactions.
#ifndef MOIRA_SRC_BACKUP_BACKUP_H_
#define MOIRA_SRC_BACKUP_BACKUP_H_

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/context.h"
#include "src/server/journal.h"

namespace moira {

class BackupManager {
 public:
  // Dumps every relation of `db` into dir/<table>.  Returns total bytes
  // written, or -1 on I/O failure.  The directory is created if needed.
  static int64_t Dump(const Database& db, const std::filesystem::path& dir);

  // Restores relations from dir into `db`, whose schema must already exist
  // and whose tables must be empty (the paper's "smstemp" convention).
  // Returns MR_SUCCESS, or MR_INTERNAL on malformed input / arity mismatch.
  static int32_t Restore(Database* db, const std::filesystem::path& dir);

  // nightly.sh: rotates root/backup_3 <- backup_2 <- backup_1 and dumps into
  // a fresh root/backup_1.  Returns bytes written or -1.
  static int64_t RotateAndDump(const Database& db, const std::filesystem::path& root);

  // Re-executes journalled changes through the query registry with each
  // entry's original principal and client name (falling back to root /
  // "journal-replay" for pre-upgrade entries without them), so modby/modwith
  // stamps come out identical to the original run.  When `replay_clock` is
  // given it is Set to each entry's recorded time before executing, so
  // modtime stamps also come out identical (the caller restores the clock
  // afterwards).  Returns the number of entries that replayed successfully.
  static int ReplayJournal(MoiraContext* mc, const std::vector<JournalEntry>& entries,
                           SimulatedClock* replay_clock = nullptr);

  // The full dump as one in-memory string ("table <name>" header followed by
  // that relation's backup lines).  Two databases in the same state produce
  // byte-identical dumps — the replication layer's convergence check.
  static std::string DumpToString(const Database& db);

  // Serializes one row / parses one line (exposed for tests).
  static std::string RowToLine(const Row& row);
  static bool LineToRow(const std::string& line, const TableSchema& schema, Row* row);
};

}  // namespace moira

#endif  // MOIRA_SRC_BACKUP_BACKUP_H_
