// Checkpoint + changelog lifecycle (DESIGN.md "Checkpoint & changelog
// lifecycle"), modelled on the MooseFS master's metadata discipline: the DCM
// cron periodically writes a full backup-format snapshot of the database
// stamped with the journal's last_seq into `checkpoint.<seq>`, seals the live
// changelog into a numbered segment, and retires segments wholly covered by
// the checkpoint.  Recovery is then "load the latest checkpoint, replay the
// segment tail" — both online (server restart, replica bootstrap) and offline
// (the mrrestore CLI's point-in-time replay).
#ifndef MOIRA_SRC_BACKUP_CHECKPOINT_H_
#define MOIRA_SRC_BACKUP_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/backup/backup.h"
#include "src/core/context.h"
#include "src/dcm/cron.h"
#include "src/server/journal.h"

namespace moira {

class CheckpointManager {
 public:
  // Writes a checkpoint of `db` stamped `seq` under root/checkpoint.<seq>.
  // Crash-safe: the tables are dumped into root/checkpoint.tmp, the SEQ stamp
  // file is written last, and the directory is renamed into place — so a
  // half-written checkpoint is never listed (ListCheckpoints validates the
  // stamp) and a stale tmp from a crash is overwritten by the next writer.
  // Returns false on I/O failure or if checkpoint.<seq> already exists.
  static bool Write(const Database& db, const std::string& root, uint64_t seq);

  // Complete checkpoints under root, ascending by seq (see ListCheckpoints).
  static std::vector<CheckpointRef> List(const std::string& root);
  static std::optional<CheckpointRef> Latest(const std::string& root);
  // Newest checkpoint with seq <= through_seq (point-in-time recovery).
  static std::optional<CheckpointRef> LatestAtOrBefore(const std::string& root,
                                                       uint64_t through_seq);

  // Replaces db's rows with the checkpoint's contents.  Returns false on
  // malformed input (the database is left cleared in that case).
  static bool Load(Database* db, const CheckpointRef& checkpoint);

  // Deletes all but the newest `keep` checkpoints (and any stale
  // checkpoint.tmp).  Returns the number removed.
  static int Prune(const std::string& root, int keep);
};

// Retention knobs for one checkpoint pass.
struct CheckpointPolicy {
  // Checkpoints kept on disk after a pass (>= 1).
  int keep = 2;
  // Skip the pass when fewer than this many entries landed since the last
  // checkpoint (an idle primary should not churn disk).
  uint64_t min_new_entries = 1;
  // Retain this many entries below the checkpoint seq when truncating, so
  // replicas lagging a little catch up over the wire instead of re-
  // bootstrapping from a snapshot after every pass.
  uint64_t grace_entries = 0;
};

struct CheckpointSummary {
  bool ran = false;            // false: skipped (no new entries) or failed
  uint64_t seq = 0;            // seq of the checkpoint written
  size_t segments_retired = 0;
  size_t entries_truncated = 0;
  int checkpoints_pruned = 0;
};

// One full lifecycle pass against the journal's attached directory:
// checkpoint at last_seq, rotate the live changelog, truncate retired
// segments (keeping the policy's grace window), prune old checkpoints.  The
// journal must be in directory mode; `db` must be quiesced for the dump (the
// caller holds the server's write lock or runs on the serialized poll loop).
CheckpointSummary RunCheckpointPass(const Database& db, Journal* journal,
                                    const CheckpointPolicy& policy = {});

// Registers the pass as the cron job "checkpoint", firing every `interval`
// seconds (the paper's nightly.sh slot).  When `last` is non-null the most
// recent pass's summary is stored there.
void ScheduleCheckpoints(CronScheduler* cron, const Database* db, Journal* journal,
                         UnixTime interval, CheckpointPolicy policy = {},
                         CheckpointSummary* last = nullptr);

// What startup recovery reconstructed.
struct RecoveryResult {
  uint64_t checkpoint_seq = 0;  // 0: no checkpoint, replayed from scratch
  int entries_loaded = 0;       // journal entries loaded from segments + live
  int entries_replayed = 0;     // entries re-executed against the database
  uint64_t last_seq = 0;        // journal position after recovery
};

// Server restart: loads the newest checkpoint under `root` (if any) into
// mc->db(), attaches `journal` to the directory recovering the segment tail,
// and replays every entry past the checkpoint.  mc must hold a freshly
// seeded database (schema + defaults at the original start time, the same
// convention replicas follow): with no checkpoint on disk, the whole journal
// replays against that seeded state.  With `replay_clock` given,
// each entry replays at its recorded time and the clock is restored
// afterwards, so the recovered state is byte-identical to the pre-crash
// primary.  Returns nullopt when the tail does not connect to the checkpoint
// (first entry on disk > checkpoint_seq + 1, or a gap between entries) —
// recovering from such a directory would silently lose committed changes.
std::optional<RecoveryResult> RecoverServerState(MoiraContext* mc,
                                                 SimulatedClock* replay_clock,
                                                 Journal* journal,
                                                 const std::string& root);

// Offline point-in-time recovery (the mrrestore CLI): rebuilds mc->db() as of
// `target_seq` from the newest checkpoint at or before it plus the on-disk
// segment range, without attaching a journal.  Same contiguity and
// freshly-seeded-database rules as RecoverServerState.
std::optional<RecoveryResult> RestoreToSeq(MoiraContext* mc,
                                           SimulatedClock* replay_clock,
                                           const std::string& root,
                                           uint64_t target_seq);

}  // namespace moira

#endif  // MOIRA_SRC_BACKUP_CHECKPOINT_H_
