// E4 — Access-check caching (paper section 5.5): "many access checks will
// have to be performed twice: once to allow the client to find out that it
// should prompt the user ... and again when the query is actually executed.
// It is expected that some form of access caching will eventually be worked
// into the server for performance reasons."
//
// Measures the access+execute pair with the per-connection cache on and off,
// and raw repeated access checks, on a paper-scale membership graph.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/client/client.h"
#include "src/server/server.h"

namespace moira {
namespace {

struct CacheBench {
  explicit CacheBench(bool enable_cache) : site(SiteSpec{}) {
    ServerOptions options;
    options.enable_access_cache = enable_cache;
    server = std::make_unique<MoiraServer>(site.mc.get(), site.realm.get(), options);
    login = site.builder->admin_login();
    site.realm->AddPrincipal("bench-admin-x", "pw");
    client = std::make_unique<MrClient>(
        [this] { return std::make_unique<LoopbackChannel>(server.get()); });
    client->SetKerberosIdentity(site.realm.get(), login, "pw:opsmgr");
    client->Connect();
    client->Auth("bench");
  }

  BenchSite site;
  std::unique_ptr<MoiraServer> server;
  std::unique_ptr<MrClient> client;
  std::string login;
};

CacheBench& Cached() {
  static CacheBench* bench = new CacheBench(true);
  return *bench;
}

CacheBench& Uncached() {
  static CacheBench* bench = new CacheBench(false);
  return *bench;
}

// The paper's double-check pattern: mr_access to decide whether to prompt,
// then the query itself.  The admin's rights resolve through the dbadmin
// list via CAPACLS.
void AccessThenQuery(CacheBench& bench, benchmark::State& state) {
  const std::string& user = bench.site.builder->active_logins()[0];
  int flip = 0;
  for (auto _ : state) {
    int32_t access =
        bench.client->Access("update_user_shell", {user, "/bin/bench"});
    int32_t code = bench.client->Query(
        "update_user_shell", {user, flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}, [](Tuple) {});
    benchmark::DoNotOptimize(access + code);
  }
}

void BM_AccessThenQuery_CacheOn(benchmark::State& state) {
  AccessThenQuery(Cached(), state);
}
BENCHMARK(BM_AccessThenQuery_CacheOn);

void BM_AccessThenQuery_CacheOff(benchmark::State& state) {
  AccessThenQuery(Uncached(), state);
}
BENCHMARK(BM_AccessThenQuery_CacheOff);

// Repeated pure access checks (no intervening mutation): the cache's best
// case vs the recursive list-membership walk every time.
void RepeatedAccess(CacheBench& bench, benchmark::State& state) {
  for (auto _ : state) {
    int32_t code = bench.client->Access("add_machine", {"x.mit.edu", "VAX"});
    benchmark::DoNotOptimize(code);
  }
}

void BM_RepeatedAccess_CacheOn(benchmark::State& state) {
  RepeatedAccess(Cached(), state);
}
BENCHMARK(BM_RepeatedAccess_CacheOn);

void BM_RepeatedAccess_CacheOff(benchmark::State& state) {
  RepeatedAccess(Uncached(), state);
}
BENCHMARK(BM_RepeatedAccess_CacheOff);

}  // namespace
}  // namespace moira

BENCHMARK_MAIN();
