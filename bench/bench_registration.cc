// E7 — New user registration (paper section 5.10): "the user accounts people
// would be faced with having to give out ~1000 accounts or more at the
// beginning of each term".  Runs the full registration storm through the
// registration server — verify, Kerberos probe, grab_login (pobox + group +
// filesystem + quota allocation), set_password — and reports throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "src/krb/crypt.h"
#include "src/reg/regserver.h"

namespace moira {
namespace {

// One registration end to end, against a site pre-loaded with registerable
// students from the registrar's tape.
void BM_SingleRegistration(benchmark::State& state) {
  static BenchSite* site = new BenchSite(TestSiteSpec());
  static auto* reg = new RegistrationServer(site->mc.get(), site->realm.get());
  static auto* userreg = new UserregClient(reg, site->realm.get());
  static int counter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    int i = counter++;
    std::string first = "Bench" + std::to_string(i);
    std::string id = "800-10-" + std::to_string(10000 + i);
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "tape", "add_user",
        {kUniqueLogin, "-1", "/bin/csh", "Mark", first, "Q", "0",
         HashMitId(id, first, "Mark"), "1992"},
        [](Tuple) {});
    state.ResumeTiming();
    int32_t code = userreg->Register(first, "Q", "Mark", id,
                                     "bench" + std::to_string(i), "pw");
    benchmark::DoNotOptimize(code);
    if (code != MR_SUCCESS) {
      state.SkipWithError("registration failed");
      break;
    }
  }
}
BENCHMARK(BM_SingleRegistration);

// The registration-day storm: N students in one burst.
void BM_RegistrationStorm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchSite site{TestSiteSpec()};
    RegistrationServer reg(site.mc.get(), site.realm.get());
    UserregClient userreg(&reg, site.realm.get());
    for (int i = 0; i < n; ++i) {
      std::string id = "800-20-" + std::to_string(10000 + i);
      QueryRegistry::Instance().Execute(
          *site.mc, "root", "tape", "add_user",
          {kUniqueLogin, "-1", "/bin/csh", "Storm", "Stu" + std::to_string(i), "Q", "0",
           HashMitId(id, "Stu" + std::to_string(i), "Storm"), "1992"},
          [](Tuple) {});
    }
    state.ResumeTiming();
    int failures = 0;
    for (int i = 0; i < n; ++i) {
      std::string id = "800-20-" + std::to_string(10000 + i);
      if (userreg.Register("Stu" + std::to_string(i), "Q", "Storm", id,
                           "storm" + std::to_string(i), "pw") != MR_SUCCESS) {
        ++failures;
      }
    }
    state.counters["failures"] = failures;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RegistrationStorm)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void PrintStormReport() {
  BenchSite site{TestSiteSpec()};
  RegistrationServer reg(site.mc.get(), site.realm.get());
  UserregClient userreg(&reg, site.realm.get());
  int ok = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string id = "800-30-" + std::to_string(10000 + i);
    QueryRegistry::Instance().Execute(
        *site.mc, "root", "tape", "add_user",
        {kUniqueLogin, "-1", "/bin/csh", "Term", "New" + std::to_string(i), "Q", "0",
         HashMitId(id, "New" + std::to_string(i), "Term"), "1992"},
        [](Tuple) {});
    if (userreg.Register("New" + std::to_string(i), "Q", "Term", id,
                         "term" + std::to_string(i), "pw") == MR_SUCCESS) {
      ++ok;
    }
  }
  std::printf("E7 registration storm: %d/1000 accounts established with no staff "
              "intervention\n\n",
              ok);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintStormReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
