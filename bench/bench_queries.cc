// E10 — The breadth of the query system (paper section 7): latency of
// representative queries from each of the four classes against the
// paper-scale database, exercising indexed lookups, wildcard scans,
// recursive membership, and mutation paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/db/exec.h"

namespace moira {
namespace {

int32_t Exec(std::string_view query, const std::vector<std::string>& args,
             int* tuples = nullptr) {
  return QueryRegistry::Instance().Execute(*PaperSite().mc, "root", "bench", query, args,
                                           [&](Tuple) {
                                             if (tuples != nullptr) {
                                               ++*tuples;
                                             }
                                           });
}

const std::string& RandomLogin(SplitMix64& rng) {
  const std::vector<std::string>& logins = PaperSite().builder->active_logins();
  return logins[rng.Below(logins.size())];
}

// --- retrieve class ---

void BM_Retrieve_UserByLogin(benchmark::State& state) {
  SplitMix64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_user_by_login", {RandomLogin(rng)}));
  }
}
BENCHMARK(BM_Retrieve_UserByLogin);

void BM_Retrieve_UserByUid(benchmark::State& state) {
  SplitMix64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Exec("get_user_by_uid", {std::to_string(6500 + rng.Below(7000))}));
  }
}
BENCHMARK(BM_Retrieve_UserByUid);

void BM_Retrieve_WildcardLoginScan(benchmark::State& state) {
  for (auto _ : state) {
    int tuples = 0;
    benchmark::DoNotOptimize(Exec("get_user_by_login", {"a*"}, &tuples));
  }
}
BENCHMARK(BM_Retrieve_WildcardLoginScan)->Unit(benchmark::kMicrosecond);

void BM_Retrieve_AllActiveLogins(benchmark::State& state) {
  for (auto _ : state) {
    int tuples = 0;
    Exec("get_all_active_logins", {}, &tuples);
    benchmark::DoNotOptimize(tuples);
  }
}
BENCHMARK(BM_Retrieve_AllActiveLogins)->Unit(benchmark::kMillisecond);

void BM_Retrieve_MembersOfList(benchmark::State& state) {
  SplitMix64 rng(3);
  for (auto _ : state) {
    std::string list = "ml-" + std::to_string(1 + rng.Below(600));
    int tuples = 0;
    benchmark::DoNotOptimize(Exec("get_members_of_list", {list}, &tuples));
  }
}
BENCHMARK(BM_Retrieve_MembersOfList);

void BM_Retrieve_ListsOfMemberRecursive(benchmark::State& state) {
  SplitMix64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_lists_of_member", {"RUSER", RandomLogin(rng)}));
  }
}
BENCHMARK(BM_Retrieve_ListsOfMemberRecursive)->Unit(benchmark::kMicrosecond);

void BM_Retrieve_ServerHostInfo(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_server_host_info", {"NFS", "*"}));
  }
}
BENCHMARK(BM_Retrieve_ServerHostInfo)->Unit(benchmark::kMicrosecond);

// --- update class ---

void BM_Update_UserShell(benchmark::State& state) {
  SplitMix64 rng(5);
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("update_user_shell",
                                  {RandomLogin(rng),
                                   flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}));
  }
}
BENCHMARK(BM_Update_UserShell);

void BM_Update_Finger(benchmark::State& state) {
  SplitMix64 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("update_finger_by_login",
                                  {RandomLogin(rng), "Full Name", "nick", "addr", "555",
                                   "office", "556", "dept", "affil"}));
  }
}
BENCHMARK(BM_Update_Finger);

// --- append + delete pairs (kept balanced so the site doesn't grow) ---

void BM_AppendDelete_Machine(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    std::string name = "bench-mach-" + std::to_string(i++) + ".mit.edu";
    Exec("add_machine", {name, "VAX"});
    benchmark::DoNotOptimize(Exec("delete_machine", {name}));
  }
}
BENCHMARK(BM_AppendDelete_Machine);

void BM_AppendDelete_ListMember(benchmark::State& state) {
  Exec("add_list", {"bench-list", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", "b"});
  SplitMix64 rng(7);
  for (auto _ : state) {
    const std::string& login = RandomLogin(rng);
    Exec("add_member_to_list", {"bench-list", "USER", login});
    benchmark::DoNotOptimize(
        Exec("delete_member_from_list", {"bench-list", "USER", login}));
  }
}
BENCHMARK(BM_AppendDelete_ListMember);

// --- access checks (the CAPACLS path with recursive membership) ---

void BM_AccessCheck_AdminViaList(benchmark::State& state) {
  const std::string& admin = PaperSite().builder->admin_login();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryRegistry::Instance().CheckAccess(
        *PaperSite().mc, admin, "add_machine", {"x.mit.edu", "VAX"}));
  }
}
BENCHMARK(BM_AccessCheck_AdminViaList);

void BM_AccessCheck_DeniedUser(benchmark::State& state) {
  SplitMix64 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryRegistry::Instance().CheckAccess(
        *PaperSite().mc, RandomLogin(rng), "add_machine", {"x.mit.edu", "VAX"}));
  }
}
BENCHMARK(BM_AccessCheck_DeniedUser);

// --- access-path planner workloads (tentpole: statistics-driven executor) ---
//
// Identical tables at 10k and 100k rows, with and without indexes, probed by
// the three workloads the planner optimizes: multi-condition equality (most
// selective index wins), case-insensitive equality (folded index), and
// wildcard lookups with a literal prefix (index range pruning).  Reported as
// wall time AND rows examined per operation; the scan baseline shows the
// reduction factor.  A fourth workload probes a closed uid window (kBetween)
// — an ordered-index range scan against the Filter-style full sweep it
// replaced.  Results also land in BENCH_queries.json.

struct PathSample {
  const char* workload;
  size_t table_rows;
  bool indexed;
  double ns_per_op;
  double rows_examined_per_op;
  double rows_emitted_per_op;
  int64_t index_hits;
  int64_t prefix_scans;
  int64_t range_scans;
  int64_t full_scans;
};

std::vector<PathSample>& PathSamples() {
  static auto* samples = new std::vector<PathSample>();
  return *samples;
}

std::unique_ptr<Database> MakeBenchTable(size_t rows, bool indexed, Table** out) {
  static SimulatedClock clock(568000000);
  auto db = std::make_unique<Database>(&clock);
  Table* t = db->CreateTable(TableSchema{"bench",
                                         {{"login", ColumnType::kString},
                                          {"uid", ColumnType::kInt},
                                          {"shell", ColumnType::kString}}});
  if (indexed) {
    t->CreateIndex("login");
    t->CreateFoldedIndex("login");
    t->CreateIndex("uid");
    t->CreateIndex("shell");  // low cardinality: the planner must not pick it
  }
  for (size_t i = 0; i < rows; ++i) {
    t->Append({"login" + std::to_string(i), static_cast<int64_t>(i),
               "/bin/shell" + std::to_string(i % 20)});
  }
  *out = t;
  return db;
}

using Workload = std::vector<Condition> (*)(const Table&, SplitMix64&);

std::vector<Condition> MultiConditionEq(const Table& t, SplitMix64& rng) {
  size_t i = rng.Below(t.LiveCount());
  return {Condition{2, Condition::Op::kEq, Value("/bin/shell" + std::to_string(i % 20)),
                    Value()},
          Condition{0, Condition::Op::kEq, Value("login" + std::to_string(i)), Value()}};
}

std::vector<Condition> CaseInsensitiveEq(const Table& t, SplitMix64& rng) {
  return {Condition{0, Condition::Op::kEqNoCase,
                    Value("LOGIN" + std::to_string(rng.Below(t.LiveCount()))), Value()}};
}

std::vector<Condition> WildcardPrefix(const Table& t, SplitMix64& rng) {
  // ~10-row result window regardless of table size.
  return {Condition{0, Condition::Op::kWild,
                    Value("login" + std::to_string(rng.Below(t.LiveCount() / 10)) + "?"),
                    Value()}};
}

std::vector<Condition> UidRangeWindow(const Table& t, SplitMix64& rng) {
  // Closed ~rows/1000-row uid window.  With the uid index this is a single
  // ordered-index range scan (kBetween fully absorbed, no residual); without
  // it the same predicate degenerates to the Filter-style full sweep it
  // replaced.
  int64_t width = static_cast<int64_t>(t.LiveCount() / 1000);
  int64_t lo = static_cast<int64_t>(rng.Below(t.LiveCount() - width));
  return {Condition{1, Condition::Op::kBetween, Value(lo), Value(lo + width - 1)}};
}

PathSample RunWorkload(const char* name, Workload workload, size_t rows, bool indexed,
                       int iterations) {
  Table* t = nullptr;
  std::unique_ptr<Database> db = MakeBenchTable(rows, indexed, &t);
  SplitMix64 rng(42);
  TableStats before = t->stats();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    benchmark::DoNotOptimize(t->Match(workload(*t, rng)));
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  const TableStats& after = t->stats();
  PathSample sample;
  sample.workload = name;
  sample.table_rows = rows;
  sample.indexed = indexed;
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      iterations;
  sample.rows_examined_per_op =
      static_cast<double>(after.rows_examined - before.rows_examined) / iterations;
  sample.rows_emitted_per_op =
      static_cast<double>(after.rows_emitted - before.rows_emitted) / iterations;
  sample.index_hits = after.index_hits - before.index_hits;
  sample.prefix_scans = after.prefix_scans - before.prefix_scans;
  sample.range_scans = after.range_scans - before.range_scans;
  sample.full_scans = after.full_scans - before.full_scans;
  return sample;
}

void RunAccessPathReport() {
  struct {
    const char* name;
    Workload fn;
  } workloads[] = {{"multi_condition_eq", MultiConditionEq},
                   {"case_insensitive_eq", CaseInsensitiveEq},
                   {"wildcard_prefix", WildcardPrefix},
                   {"uid_range_window", UidRangeWindow}};
  std::printf("Access-path executor: rows examined per lookup, planner vs full scan\n");
  std::printf("%-22s %9s %14s %14s %10s %10s\n", "workload", "rows", "planner ns/op",
              "scan ns/op", "examined", "reduction");
  for (size_t rows : {size_t{10000}, size_t{100000}}) {
    // Fewer iterations for the scan baseline at 100k: it visits every row.
    int iters = rows > 50000 ? 200 : 500;
    for (const auto& w : workloads) {
      PathSample planned = RunWorkload(w.name, w.fn, rows, /*indexed=*/true, iters);
      PathSample scanned = RunWorkload(w.name, w.fn, rows, /*indexed=*/false, iters);
      PathSamples().push_back(planned);
      PathSamples().push_back(scanned);
      std::printf("%-22s %9zu %14.0f %14.0f %10.1f %9.0fx\n", w.name, rows,
                  planned.ns_per_op, scanned.ns_per_op, planned.rows_examined_per_op,
                  scanned.rows_examined_per_op /
                      (planned.rows_examined_per_op > 0 ? planned.rows_examined_per_op
                                                        : 1.0));
    }
  }
  std::printf("\n");
}

void WriteBenchJson(const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_queries_access_paths\",\n  \"samples\": [\n");
  const std::vector<PathSample>& samples = PathSamples();
  for (size_t i = 0; i < samples.size(); ++i) {
    const PathSample& s = samples[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"table_rows\": %zu, \"indexed\": %s, "
                 "\"ns_per_op\": %.1f, \"rows_examined_per_op\": %.2f, "
                 "\"rows_emitted_per_op\": %.2f, \"index_hits\": %lld, "
                 "\"prefix_scans\": %lld, \"range_scans\": %lld, "
                 "\"full_scans\": %lld}%s\n",
                 s.workload, s.table_rows, s.indexed ? "true" : "false", s.ns_per_op,
                 s.rows_examined_per_op, s.rows_emitted_per_op,
                 static_cast<long long>(s.index_hits), static_cast<long long>(s.prefix_scans),
                 static_cast<long long>(s.range_scans),
                 static_cast<long long>(s.full_scans), i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path);
}

void PrintRegistryReport() {
  size_t retrieve = 0;
  size_t append = 0;
  size_t update = 0;
  size_t del = 0;
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    switch (def.qclass) {
      case QueryClass::kRetrieve:
        ++retrieve;
        break;
      case QueryClass::kAppend:
        ++append;
        break;
      case QueryClass::kUpdate:
        ++update;
        break;
      case QueryClass::kDelete:
        ++del;
        break;
    }
  }
  std::printf("E10 query registry: %zu handles (%zu retrieve, %zu append, %zu update, "
              "%zu delete); paper: \"over 100 query handles\"\n\n",
              QueryRegistry::Instance().All().size(), retrieve, append, update, del);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintRegistryReport();
  moira::RunAccessPathReport();
  moira::WriteBenchJson("BENCH_queries.json");
  moira::PaperSite();  // build the site outside any timing loop
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
