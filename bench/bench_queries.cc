// E10 — The breadth of the query system (paper section 7): latency of
// representative queries from each of the four classes against the
// paper-scale database, exercising indexed lookups, wildcard scans,
// recursive membership, and mutation paths.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <utility>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/common/worker_pool.h"
#include "src/db/exec.h"

namespace moira {
namespace {

int32_t Exec(std::string_view query, const std::vector<std::string>& args,
             int* tuples = nullptr) {
  return QueryRegistry::Instance().Execute(*PaperSite().mc, "root", "bench", query, args,
                                           [&](Tuple) {
                                             if (tuples != nullptr) {
                                               ++*tuples;
                                             }
                                           });
}

const std::string& RandomLogin(SplitMix64& rng) {
  const std::vector<std::string>& logins = PaperSite().builder->active_logins();
  return logins[rng.Below(logins.size())];
}

// --- retrieve class ---

void BM_Retrieve_UserByLogin(benchmark::State& state) {
  SplitMix64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_user_by_login", {RandomLogin(rng)}));
  }
}
BENCHMARK(BM_Retrieve_UserByLogin);

void BM_Retrieve_UserByUid(benchmark::State& state) {
  SplitMix64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Exec("get_user_by_uid", {std::to_string(6500 + rng.Below(7000))}));
  }
}
BENCHMARK(BM_Retrieve_UserByUid);

void BM_Retrieve_WildcardLoginScan(benchmark::State& state) {
  for (auto _ : state) {
    int tuples = 0;
    benchmark::DoNotOptimize(Exec("get_user_by_login", {"a*"}, &tuples));
  }
}
BENCHMARK(BM_Retrieve_WildcardLoginScan)->Unit(benchmark::kMicrosecond);

void BM_Retrieve_AllActiveLogins(benchmark::State& state) {
  for (auto _ : state) {
    int tuples = 0;
    Exec("get_all_active_logins", {}, &tuples);
    benchmark::DoNotOptimize(tuples);
  }
}
BENCHMARK(BM_Retrieve_AllActiveLogins)->Unit(benchmark::kMillisecond);

void BM_Retrieve_MembersOfList(benchmark::State& state) {
  SplitMix64 rng(3);
  for (auto _ : state) {
    std::string list = "ml-" + std::to_string(1 + rng.Below(600));
    int tuples = 0;
    benchmark::DoNotOptimize(Exec("get_members_of_list", {list}, &tuples));
  }
}
BENCHMARK(BM_Retrieve_MembersOfList);

void BM_Retrieve_ListsOfMemberRecursive(benchmark::State& state) {
  SplitMix64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_lists_of_member", {"RUSER", RandomLogin(rng)}));
  }
}
BENCHMARK(BM_Retrieve_ListsOfMemberRecursive)->Unit(benchmark::kMicrosecond);

void BM_Retrieve_ServerHostInfo(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_server_host_info", {"NFS", "*"}));
  }
}
BENCHMARK(BM_Retrieve_ServerHostInfo)->Unit(benchmark::kMicrosecond);

// --- update class ---

void BM_Update_UserShell(benchmark::State& state) {
  SplitMix64 rng(5);
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("update_user_shell",
                                  {RandomLogin(rng),
                                   flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}));
  }
}
BENCHMARK(BM_Update_UserShell);

void BM_Update_Finger(benchmark::State& state) {
  SplitMix64 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("update_finger_by_login",
                                  {RandomLogin(rng), "Full Name", "nick", "addr", "555",
                                   "office", "556", "dept", "affil"}));
  }
}
BENCHMARK(BM_Update_Finger);

// --- append + delete pairs (kept balanced so the site doesn't grow) ---

void BM_AppendDelete_Machine(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    std::string name = "bench-mach-" + std::to_string(i++) + ".mit.edu";
    Exec("add_machine", {name, "VAX"});
    benchmark::DoNotOptimize(Exec("delete_machine", {name}));
  }
}
BENCHMARK(BM_AppendDelete_Machine);

void BM_AppendDelete_ListMember(benchmark::State& state) {
  Exec("add_list", {"bench-list", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", "b"});
  SplitMix64 rng(7);
  for (auto _ : state) {
    const std::string& login = RandomLogin(rng);
    Exec("add_member_to_list", {"bench-list", "USER", login});
    benchmark::DoNotOptimize(
        Exec("delete_member_from_list", {"bench-list", "USER", login}));
  }
}
BENCHMARK(BM_AppendDelete_ListMember);

// --- access checks (the CAPACLS path with recursive membership) ---

void BM_AccessCheck_AdminViaList(benchmark::State& state) {
  const std::string& admin = PaperSite().builder->admin_login();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryRegistry::Instance().CheckAccess(
        *PaperSite().mc, admin, "add_machine", {"x.mit.edu", "VAX"}));
  }
}
BENCHMARK(BM_AccessCheck_AdminViaList);

void BM_AccessCheck_DeniedUser(benchmark::State& state) {
  SplitMix64 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryRegistry::Instance().CheckAccess(
        *PaperSite().mc, RandomLogin(rng), "add_machine", {"x.mit.edu", "VAX"}));
  }
}
BENCHMARK(BM_AccessCheck_DeniedUser);

// --- access-path planner workloads (tentpole: statistics-driven executor) ---
//
// Identical tables at 10k and 100k rows, with and without indexes, probed by
// the three workloads the planner optimizes: multi-condition equality (most
// selective index wins), case-insensitive equality (folded index), and
// wildcard lookups with a literal prefix (index range pruning).  Reported as
// wall time AND rows examined per operation; the scan baseline shows the
// reduction factor.  A fourth workload probes a closed uid window (kBetween)
// — an ordered-index range scan against the Filter-style full sweep it
// replaced.  Results also land in BENCH_queries.json.

struct PathSample {
  const char* workload;
  size_t table_rows;
  bool indexed;
  double ns_per_op;
  double rows_examined_per_op;
  double rows_emitted_per_op;
  int64_t index_hits;
  int64_t prefix_scans;
  int64_t range_scans;
  int64_t full_scans;
};

std::vector<PathSample>& PathSamples() {
  static auto* samples = new std::vector<PathSample>();
  return *samples;
}

std::unique_ptr<Database> MakeBenchTable(size_t rows, bool indexed, Table** out) {
  static SimulatedClock clock(568000000);
  auto db = std::make_unique<Database>(&clock);
  Table* t = db->CreateTable(TableSchema{"bench",
                                         {{"login", ColumnType::kString},
                                          {"uid", ColumnType::kInt},
                                          {"shell", ColumnType::kString}}});
  if (indexed) {
    t->CreateIndex("login");
    t->CreateFoldedIndex("login");
    t->CreateIndex("uid");
    t->CreateIndex("shell");  // low cardinality: the planner must not pick it
  }
  for (size_t i = 0; i < rows; ++i) {
    t->Append({"login" + std::to_string(i), static_cast<int64_t>(i),
               "/bin/shell" + std::to_string(i % 20)});
  }
  *out = t;
  return db;
}

using Workload = std::vector<Condition> (*)(const Table&, SplitMix64&);

std::vector<Condition> MultiConditionEq(const Table& t, SplitMix64& rng) {
  size_t i = rng.Below(t.LiveCount());
  return {Condition{2, Condition::Op::kEq, Value("/bin/shell" + std::to_string(i % 20)),
                    Value()},
          Condition{0, Condition::Op::kEq, Value("login" + std::to_string(i)), Value()}};
}

std::vector<Condition> CaseInsensitiveEq(const Table& t, SplitMix64& rng) {
  return {Condition{0, Condition::Op::kEqNoCase,
                    Value("LOGIN" + std::to_string(rng.Below(t.LiveCount()))), Value()}};
}

std::vector<Condition> WildcardPrefix(const Table& t, SplitMix64& rng) {
  // ~10-row result window regardless of table size.
  return {Condition{0, Condition::Op::kWild,
                    Value("login" + std::to_string(rng.Below(t.LiveCount() / 10)) + "?"),
                    Value()}};
}

std::vector<Condition> UidRangeWindow(const Table& t, SplitMix64& rng) {
  // Closed ~rows/1000-row uid window.  With the uid index this is a single
  // ordered-index range scan (kBetween fully absorbed, no residual); without
  // it the same predicate degenerates to the Filter-style full sweep it
  // replaced.
  int64_t width = static_cast<int64_t>(t.LiveCount() / 1000);
  int64_t lo = static_cast<int64_t>(rng.Below(t.LiveCount() - width));
  return {Condition{1, Condition::Op::kBetween, Value(lo), Value(lo + width - 1)}};
}

PathSample RunWorkload(const char* name, Workload workload, size_t rows, bool indexed,
                       int iterations) {
  Table* t = nullptr;
  std::unique_ptr<Database> db = MakeBenchTable(rows, indexed, &t);
  SplitMix64 rng(42);
  TableStats before = t->stats();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    benchmark::DoNotOptimize(t->Match(workload(*t, rng)));
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  const TableStats& after = t->stats();
  PathSample sample;
  sample.workload = name;
  sample.table_rows = rows;
  sample.indexed = indexed;
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      iterations;
  sample.rows_examined_per_op =
      static_cast<double>(after.rows_examined - before.rows_examined) / iterations;
  sample.rows_emitted_per_op =
      static_cast<double>(after.rows_emitted - before.rows_emitted) / iterations;
  sample.index_hits = after.index_hits - before.index_hits;
  sample.prefix_scans = after.prefix_scans - before.prefix_scans;
  sample.range_scans = after.range_scans - before.range_scans;
  sample.full_scans = after.full_scans - before.full_scans;
  return sample;
}

void RunAccessPathReport() {
  struct {
    const char* name;
    Workload fn;
  } workloads[] = {{"multi_condition_eq", MultiConditionEq},
                   {"case_insensitive_eq", CaseInsensitiveEq},
                   {"wildcard_prefix", WildcardPrefix},
                   {"uid_range_window", UidRangeWindow}};
  std::printf("Access-path executor: rows examined per lookup, planner vs full scan\n");
  std::printf("%-22s %9s %14s %14s %10s %10s\n", "workload", "rows", "planner ns/op",
              "scan ns/op", "examined", "reduction");
  for (size_t rows : {size_t{10000}, size_t{100000}}) {
    // Fewer iterations for the scan baseline at 100k: it visits every row.
    int iters = rows > 50000 ? 200 : 500;
    for (const auto& w : workloads) {
      PathSample planned = RunWorkload(w.name, w.fn, rows, /*indexed=*/true, iters);
      PathSample scanned = RunWorkload(w.name, w.fn, rows, /*indexed=*/false, iters);
      PathSamples().push_back(planned);
      PathSamples().push_back(scanned);
      std::printf("%-22s %9zu %14.0f %14.0f %10.1f %9.0fx\n", w.name, rows,
                  planned.ns_per_op, scanned.ns_per_op, planned.rows_examined_per_op,
                  scanned.rows_examined_per_op /
                      (planned.rows_examined_per_op > 0 ? planned.rows_examined_per_op
                                                        : 1.0));
    }
  }
  std::printf("\n");
}

// --- join-planner workloads (tentpole: cost-based join planning) ---
//
// fact (10k/100k rows, key = i % 100, indexed) joined to dim (100 keys x 20
// rows, key and unique name both indexed), run cost-based and with
// ForceNaiveJoin (the pre-cost-based left-to-right, one-probe-per-row
// executor).  join_fanout joins the bare tables: the cost-based executor
// starts from the 50x-smaller dim side and batches its 2000 outer keys into
// 100 distinct probes of fact.  join_selective_tail adds a unique-name
// equality on dim: the planner starts from that single row and probes fact
// once, where the naive order scans all of fact first and probes dim per
// row.  Both reductions (rows examined and index probes) land in
// BENCH_queries.json.

struct JoinSample {
  const char* workload;
  size_t fact_rows;
  bool cost_based;
  double ns_per_op;
  double rows_examined_per_op;
  double index_probes_per_op;
  double probe_cache_hits_per_op;
  int64_t join_reorders;
  double tuples_per_op;
};

std::vector<JoinSample>& JoinSamples() {
  static auto* samples = new std::vector<JoinSample>();
  return *samples;
}

constexpr size_t kJoinDimKeys = 100;
constexpr size_t kJoinDimRowsPerKey = 20;

struct JoinTables {
  std::unique_ptr<Database> db;
  Table* fact;
  Table* dim;
};

JoinTables MakeJoinTables(size_t fact_rows) {
  static SimulatedClock clock(568000000);
  JoinTables jt;
  jt.db = std::make_unique<Database>(&clock);
  jt.fact = jt.db->CreateTable(TableSchema{
      "fact", {{"key", ColumnType::kInt}, {"payload", ColumnType::kString}}});
  jt.fact->CreateIndex("key");
  for (size_t i = 0; i < fact_rows; ++i) {
    jt.fact->Append({static_cast<int64_t>(i % kJoinDimKeys), "p" + std::to_string(i)});
  }
  jt.dim = jt.db->CreateTable(TableSchema{
      "dim", {{"key", ColumnType::kInt}, {"name", ColumnType::kString}}});
  jt.dim->CreateIndex("key");
  jt.dim->CreateIndex("name");
  for (size_t k = 0; k < kJoinDimKeys; ++k) {
    for (size_t j = 0; j < kJoinDimRowsPerKey; ++j) {
      jt.dim->Append({static_cast<int64_t>(k),
                      "name" + std::to_string(k * kJoinDimRowsPerKey + j)});
    }
  }
  return jt;
}

JoinSample RunJoinWorkload(const char* name, bool selective_tail, size_t fact_rows,
                           bool cost_based, int iterations) {
  JoinTables jt = MakeJoinTables(fact_rows);
  SplitMix64 rng(43);
  auto examined = [&] {
    return jt.fact->stats().rows_examined + jt.dim->stats().rows_examined;
  };
  auto probes = [&] { return jt.fact->stats().index_hits + jt.dim->stats().index_hits; };
  auto cache_hits = [&] {
    return jt.fact->stats().probe_cache_hits + jt.dim->stats().probe_cache_hits;
  };
  const int64_t examined0 = examined();
  const int64_t probes0 = probes();
  const int64_t cache0 = cache_hits();
  const int64_t reorders0 = jt.fact->stats().join_reorders;
  size_t tuples = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    Selector s = From(jt.fact).Join(jt.dim, "key", "key");
    if (selective_tail) {
      s.WhereEq("name", Value("name" + std::to_string(
                                  rng.Below(kJoinDimKeys * kJoinDimRowsPerKey))));
    }
    if (!cost_based) {
      s.ForceNaiveJoin();
    }
    s.Emit([&](const std::vector<size_t>&) { ++tuples; });
    benchmark::DoNotOptimize(tuples);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  JoinSample sample;
  sample.workload = name;
  sample.fact_rows = fact_rows;
  sample.cost_based = cost_based;
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      iterations;
  sample.rows_examined_per_op = static_cast<double>(examined() - examined0) / iterations;
  sample.index_probes_per_op = static_cast<double>(probes() - probes0) / iterations;
  sample.probe_cache_hits_per_op = static_cast<double>(cache_hits() - cache0) / iterations;
  sample.join_reorders = jt.fact->stats().join_reorders - reorders0;
  sample.tuples_per_op = static_cast<double>(tuples) / iterations;
  return sample;
}

void RunJoinReport() {
  struct {
    const char* name;
    bool selective_tail;
  } workloads[] = {{"join_fanout", false}, {"join_selective_tail", true}};
  std::printf("Join planner: cost-based (reordered, batched) vs naive left-to-right\n");
  std::printf("%-22s %9s %13s %13s %11s %11s %9s\n", "workload", "rows", "cost ns/op",
              "naive ns/op", "exam. red.", "probe red.", "cache/op");
  for (size_t rows : {size_t{10000}, size_t{100000}}) {
    // The fan-out join materializes ~20 tuples per fact row; keep the 100k
    // iteration count small.
    const int iters = rows > 50000 ? 3 : 10;
    for (const auto& w : workloads) {
      JoinSample cost = RunJoinWorkload(w.name, w.selective_tail, rows,
                                        /*cost_based=*/true, iters);
      JoinSample naive = RunJoinWorkload(w.name, w.selective_tail, rows,
                                         /*cost_based=*/false, iters);
      JoinSamples().push_back(cost);
      JoinSamples().push_back(naive);
      std::printf("%-22s %9zu %13.0f %13.0f %10.0fx %10.0fx %9.0f\n", w.name, rows,
                  cost.ns_per_op, naive.ns_per_op,
                  naive.rows_examined_per_op /
                      (cost.rows_examined_per_op > 0 ? cost.rows_examined_per_op : 1.0),
                  naive.index_probes_per_op /
                      (cost.index_probes_per_op > 0 ? cost.index_probes_per_op : 1.0),
                  cost.probe_cache_hits_per_op);
    }
  }
  std::printf("\n");
}

// --- sharded-vs-flat sweep (tentpole: hash-partitioned hot tables) ---
//
// The same table at 100k and 1M rows, partitioned into 1/2/4/8 shards, under
// a probe-heavy mix (equality on the partition key: routed to one shard) and
// a scan-heavy mix (a ~rows/20 uid range window with a selective residual on
// an unindexed column: fanned across every shard).  Each point reports wall
// time AND the measured work model the acceptance gates use: modeled speedup
// = flat rows examined / critical path, where the critical path sums, per
// query, the busiest shard's rows examined (from the ShardRowsExamined
// ledger).  On a multi-core host the parallel fan-out turns that model into
// wall time; on a single-core host (like CI) wall time cannot show it, so
// the gates bind to the model and wall time is informational.  The identical
// query stream (fixed seed) must also match the flat table row-for-row.

struct ShardSample {
  const char* workload;
  size_t table_rows;
  size_t shards;
  double ns_per_op;
  double rows_examined_per_op;
  double critical_path_rows_per_op;
  double modeled_speedup_x;  // flat rows examined / this critical path
  double wall_speedup_x;     // flat ns/op / this ns/op — informational only:
                             // on a loaded or single-core host it understates
                             // the model, so no gate binds to it
  int64_t single_shard_probes;
  int64_t fanout_scans;
  int64_t matched_rows;
};

std::vector<ShardSample>& ShardSamples() {
  static auto* samples = new std::vector<ShardSample>();
  return *samples;
}

struct BenchGate {
  std::string name;
  double value;
  bool pass;
};

std::vector<BenchGate>& ShardGates() {
  static auto* gates = new std::vector<BenchGate>();
  return *gates;
}

std::unique_ptr<Database> MakeShardBenchTable(size_t rows, size_t shards,
                                              Table** out) {
  static SimulatedClock clock(568000000);
  auto db = std::make_unique<Database>(&clock);
  Table* t = db->CreateShardedTable(TableSchema{"bench",
                                                {{"uid", ColumnType::kInt},
                                                 {"login", ColumnType::kString},
                                                 {"flags", ColumnType::kInt}}},
                                    "uid", shards);
  t->CreateIndex("uid");
  t->CreateIndex("login");
  for (size_t i = 0; i < rows; ++i) {
    t->Append({static_cast<int64_t>(i), "u" + std::to_string(i),
               static_cast<int64_t>(i % 16)});
  }
  *out = t;
  return db;
}

ShardSample RunShardWorkload(const char* name, bool probe_heavy, Table* t,
                             size_t rows, size_t shards, int iterations) {
  SplitMix64 rng(44);
  const int64_t window = static_cast<int64_t>(rows / 20);
  const TableStats& stats = t->stats();
  const int64_t examined0 = stats.rows_examined;
  const int64_t single0 = stats.single_shard_probes;
  const int64_t fanout0 = stats.fanout_scans;
  int64_t critical_path = 0;
  int64_t matched = 0;
  std::chrono::steady_clock::duration elapsed{0};
  std::vector<int64_t> before = t->ShardRowsExamined();
  for (int i = 0; i < iterations; ++i) {
    std::vector<Condition> conditions;
    if (probe_heavy) {
      conditions.push_back(Condition{0, Condition::Op::kEq,
                                     Value(static_cast<int64_t>(rng.Below(rows))),
                                     Value()});
    } else {
      int64_t lo = static_cast<int64_t>(rng.Below(rows - window));
      conditions.push_back(
          Condition{0, Condition::Op::kBetween, Value(lo), Value(lo + window - 1)});
      // Residual on the unindexed flags column: examined stays ~window wide,
      // emitted shrinks 16x.
      conditions.push_back(
          Condition{2, Condition::Op::kEq, Value(int64_t{7}), Value()});
    }
    auto start = std::chrono::steady_clock::now();
    std::vector<size_t> result = t->Match(conditions);
    elapsed += std::chrono::steady_clock::now() - start;
    matched += static_cast<int64_t>(result.size());
    // Per-query critical path: the busiest shard bounds this query's latency
    // on a shard-parallel executor.
    std::vector<int64_t> after = t->ShardRowsExamined();
    int64_t worst = 0;
    for (size_t s = 0; s < after.size(); ++s) {
      worst = std::max(worst, after[s] - before[s]);
    }
    critical_path += worst;
    before = std::move(after);
  }
  ShardSample sample;
  sample.workload = name;
  sample.table_rows = rows;
  sample.shards = shards;
  sample.ns_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      iterations;
  sample.rows_examined_per_op =
      static_cast<double>(t->stats().rows_examined - examined0) / iterations;
  sample.critical_path_rows_per_op = static_cast<double>(critical_path) / iterations;
  sample.modeled_speedup_x = 1.0;  // filled against the flat run by the caller
  sample.wall_speedup_x = 1.0;     // likewise
  sample.single_shard_probes = t->stats().single_shard_probes - single0;
  sample.fanout_scans = t->stats().fanout_scans - fanout0;
  sample.matched_rows = matched;
  return sample;
}

bool RunShardedReport() {
  std::printf("Sharded vs flat: per-shard work model (single busiest shard = "
              "critical path)\n");
  std::printf("%-12s %9s %7s %12s %11s %11s %9s %8s\n", "workload", "rows",
              "shards", "ns/op", "examined", "crit. path", "modeled", "wall");
  struct Flat {
    double examined_per_op;
    double ns_per_op;
    int64_t matched_rows;
  };
  // Keyed by (rows, probe_heavy) of the flat run the sharded points compare
  // against; the sweep visits shards == 1 first.
  std::map<std::pair<size_t, bool>, Flat> flats;
  bool probe_work_ok = true;
  bool probe_routing_ok = true;
  bool results_ok = true;
  double scan_1m_4s_speedup = 0.0;
  double probe_1m_4s_examined = 0.0;
  double probe_1m_flat_examined = 0.0;
  WorkerPool pool(std::thread::hardware_concurrency());
  for (size_t rows : {size_t{100000}, size_t{1000000}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      Table* t = nullptr;
      std::unique_ptr<Database> db = MakeShardBenchTable(rows, shards, &t);
      if (shards > 1) {
        db->AttachWorkerPool(&pool);
      }
      for (bool probe_heavy : {true, false}) {
        const char* name = probe_heavy ? "probe_heavy" : "scan_heavy";
        const int iters = probe_heavy ? 2000 : (rows > 500000 ? 10 : 30);
        ShardSample s = RunShardWorkload(name, probe_heavy, t, rows, shards, iters);
        if (shards == 1) {
          flats[{rows, probe_heavy}] = {s.rows_examined_per_op, s.ns_per_op,
                                        s.matched_rows};
        }
        const Flat& flat = flats[{rows, probe_heavy}];
        if (s.critical_path_rows_per_op > 0) {
          s.modeled_speedup_x = flat.examined_per_op / s.critical_path_rows_per_op;
        }
        if (s.ns_per_op > 0) {
          s.wall_speedup_x = flat.ns_per_op / s.ns_per_op;
        }
        results_ok = results_ok && s.matched_rows == flat.matched_rows;
        if (probe_heavy && shards > 1) {
          // Partition-key probes must route to one shard and cost no more
          // work than the flat table answers them with.
          probe_work_ok =
              probe_work_ok && s.rows_examined_per_op <= flat.examined_per_op + 0.01;
          probe_routing_ok = probe_routing_ok &&
                             s.single_shard_probes == iters && s.fanout_scans == 0;
        }
        if (rows == 1000000 && shards == 4) {
          (probe_heavy ? probe_1m_4s_examined : scan_1m_4s_speedup) =
              probe_heavy ? s.rows_examined_per_op : s.modeled_speedup_x;
        }
        if (rows == 1000000 && shards == 1 && probe_heavy) {
          probe_1m_flat_examined = s.rows_examined_per_op;
        }
        std::printf("%-12s %9zu %7zu %12.0f %11.1f %11.1f %8.2fx %7.2fx\n", name,
                    rows, shards, s.ns_per_op, s.rows_examined_per_op,
                    s.critical_path_rows_per_op, s.modeled_speedup_x,
                    s.wall_speedup_x);
        ShardSamples().push_back(s);
      }
    }
  }
  const bool scan_ok = scan_1m_4s_speedup >= 2.0;
  ShardGates().push_back(
      {"scan_heavy_1m_rows_4_shards_modeled_speedup_ge_2x", scan_1m_4s_speedup,
       scan_ok});
  ShardGates().push_back({"probe_heavy_sharded_work_no_worse_than_flat",
                          probe_1m_4s_examined - probe_1m_flat_examined,
                          probe_work_ok});
  ShardGates().push_back({"partition_key_probes_route_to_one_shard",
                          probe_routing_ok ? 1.0 : 0.0, probe_routing_ok});
  ShardGates().push_back(
      {"sharded_results_match_flat", results_ok ? 1.0 : 0.0, results_ok});
  if (!scan_ok) {
    std::printf("FAIL: scan-heavy modeled speedup %.2fx at 1M rows / 4 shards "
                "is below the 2x gate\n", scan_1m_4s_speedup);
  }
  if (!probe_work_ok) {
    std::printf("FAIL: sharded partition-key probes examine more rows than flat\n");
  }
  if (!probe_routing_ok) {
    std::printf("FAIL: partition-key probes did not all route to a single shard\n");
  }
  if (!results_ok) {
    std::printf("FAIL: sharded results diverge from the flat table\n");
  }
  std::printf("\n");
  return scan_ok && probe_work_ok && probe_routing_ok && results_ok;
}

void WriteBenchJson(const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_queries_access_paths\",\n  \"samples\": [\n");
  const std::vector<PathSample>& samples = PathSamples();
  for (size_t i = 0; i < samples.size(); ++i) {
    const PathSample& s = samples[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"table_rows\": %zu, \"indexed\": %s, "
                 "\"ns_per_op\": %.1f, \"rows_examined_per_op\": %.2f, "
                 "\"rows_emitted_per_op\": %.2f, \"index_hits\": %lld, "
                 "\"prefix_scans\": %lld, \"range_scans\": %lld, "
                 "\"full_scans\": %lld}%s\n",
                 s.workload, s.table_rows, s.indexed ? "true" : "false", s.ns_per_op,
                 s.rows_examined_per_op, s.rows_emitted_per_op,
                 static_cast<long long>(s.index_hits), static_cast<long long>(s.prefix_scans),
                 static_cast<long long>(s.range_scans),
                 static_cast<long long>(s.full_scans), i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"join_samples\": [\n");
  const std::vector<JoinSample>& joins = JoinSamples();
  for (size_t i = 0; i < joins.size(); ++i) {
    const JoinSample& s = joins[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"fact_rows\": %zu, \"cost_based\": %s, "
                 "\"ns_per_op\": %.1f, \"rows_examined_per_op\": %.2f, "
                 "\"index_probes_per_op\": %.2f, \"probe_cache_hits_per_op\": %.2f, "
                 "\"join_reorders\": %lld, \"tuples_per_op\": %.2f}%s\n",
                 s.workload, s.fact_rows, s.cost_based ? "true" : "false", s.ns_per_op,
                 s.rows_examined_per_op, s.index_probes_per_op, s.probe_cache_hits_per_op,
                 static_cast<long long>(s.join_reorders), s.tuples_per_op,
                 i + 1 < joins.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"sharded_samples\": [\n");
  const std::vector<ShardSample>& sharded = ShardSamples();
  for (size_t i = 0; i < sharded.size(); ++i) {
    const ShardSample& s = sharded[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"table_rows\": %zu, \"shards\": %zu, "
                 "\"ns_per_op\": %.1f, \"rows_examined_per_op\": %.2f, "
                 "\"critical_path_rows_per_op\": %.2f, \"modeled_speedup_x\": %.3f, "
                 "\"wall_ns_per_op\": %.1f, \"wall_speedup_x\": %.3f, "
                 "\"single_shard_probes\": %lld, \"fanout_scans\": %lld, "
                 "\"matched_rows\": %lld}%s\n",
                 s.workload, s.table_rows, s.shards, s.ns_per_op,
                 s.rows_examined_per_op, s.critical_path_rows_per_op,
                 s.modeled_speedup_x, s.ns_per_op, s.wall_speedup_x,
                 static_cast<long long>(s.single_shard_probes),
                 static_cast<long long>(s.fanout_scans),
                 static_cast<long long>(s.matched_rows),
                 i + 1 < sharded.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"gates\": [\n");
  const std::vector<BenchGate>& gates = ShardGates();
  for (size_t i = 0; i < gates.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.3f, \"pass\": %s}%s\n",
                 gates[i].name.c_str(), gates[i].value,
                 gates[i].pass ? "true" : "false", i + 1 < gates.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path);
}

void PrintRegistryReport() {
  size_t retrieve = 0;
  size_t append = 0;
  size_t update = 0;
  size_t del = 0;
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    switch (def.qclass) {
      case QueryClass::kRetrieve:
        ++retrieve;
        break;
      case QueryClass::kAppend:
        ++append;
        break;
      case QueryClass::kUpdate:
        ++update;
        break;
      case QueryClass::kDelete:
        ++del;
        break;
    }
  }
  std::printf("E10 query registry: %zu handles (%zu retrieve, %zu append, %zu update, "
              "%zu delete); paper: \"over 100 query handles\"\n\n",
              QueryRegistry::Instance().All().size(), retrieve, append, update, del);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintRegistryReport();
  moira::RunAccessPathReport();
  moira::RunJoinReport();
  // The sharded-vs-flat gates run even under an unmatchable
  // --benchmark_filter, which is how scripts/check.sh --bench-smoke fails on
  // a routing or speedup regression.
  bool ok = moira::RunShardedReport();
  moira::WriteBenchJson("BENCH_queries.json");
  moira::PaperSite();  // build the site outside any timing loop
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
