// E10 — The breadth of the query system (paper section 7): latency of
// representative queries from each of the four classes against the
// paper-scale database, exercising indexed lookups, wildcard scans,
// recursive membership, and mutation paths.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/random.h"

namespace moira {
namespace {

int32_t Exec(std::string_view query, const std::vector<std::string>& args,
             int* tuples = nullptr) {
  return QueryRegistry::Instance().Execute(*PaperSite().mc, "root", "bench", query, args,
                                           [&](Tuple) {
                                             if (tuples != nullptr) {
                                               ++*tuples;
                                             }
                                           });
}

const std::string& RandomLogin(SplitMix64& rng) {
  const std::vector<std::string>& logins = PaperSite().builder->active_logins();
  return logins[rng.Below(logins.size())];
}

// --- retrieve class ---

void BM_Retrieve_UserByLogin(benchmark::State& state) {
  SplitMix64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_user_by_login", {RandomLogin(rng)}));
  }
}
BENCHMARK(BM_Retrieve_UserByLogin);

void BM_Retrieve_UserByUid(benchmark::State& state) {
  SplitMix64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Exec("get_user_by_uid", {std::to_string(6500 + rng.Below(7000))}));
  }
}
BENCHMARK(BM_Retrieve_UserByUid);

void BM_Retrieve_WildcardLoginScan(benchmark::State& state) {
  for (auto _ : state) {
    int tuples = 0;
    benchmark::DoNotOptimize(Exec("get_user_by_login", {"a*"}, &tuples));
  }
}
BENCHMARK(BM_Retrieve_WildcardLoginScan)->Unit(benchmark::kMicrosecond);

void BM_Retrieve_AllActiveLogins(benchmark::State& state) {
  for (auto _ : state) {
    int tuples = 0;
    Exec("get_all_active_logins", {}, &tuples);
    benchmark::DoNotOptimize(tuples);
  }
}
BENCHMARK(BM_Retrieve_AllActiveLogins)->Unit(benchmark::kMillisecond);

void BM_Retrieve_MembersOfList(benchmark::State& state) {
  SplitMix64 rng(3);
  for (auto _ : state) {
    std::string list = "ml-" + std::to_string(1 + rng.Below(600));
    int tuples = 0;
    benchmark::DoNotOptimize(Exec("get_members_of_list", {list}, &tuples));
  }
}
BENCHMARK(BM_Retrieve_MembersOfList);

void BM_Retrieve_ListsOfMemberRecursive(benchmark::State& state) {
  SplitMix64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_lists_of_member", {"RUSER", RandomLogin(rng)}));
  }
}
BENCHMARK(BM_Retrieve_ListsOfMemberRecursive)->Unit(benchmark::kMicrosecond);

void BM_Retrieve_ServerHostInfo(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("get_server_host_info", {"NFS", "*"}));
  }
}
BENCHMARK(BM_Retrieve_ServerHostInfo)->Unit(benchmark::kMicrosecond);

// --- update class ---

void BM_Update_UserShell(benchmark::State& state) {
  SplitMix64 rng(5);
  int flip = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("update_user_shell",
                                  {RandomLogin(rng),
                                   flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}));
  }
}
BENCHMARK(BM_Update_UserShell);

void BM_Update_Finger(benchmark::State& state) {
  SplitMix64 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Exec("update_finger_by_login",
                                  {RandomLogin(rng), "Full Name", "nick", "addr", "555",
                                   "office", "556", "dept", "affil"}));
  }
}
BENCHMARK(BM_Update_Finger);

// --- append + delete pairs (kept balanced so the site doesn't grow) ---

void BM_AppendDelete_Machine(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    std::string name = "bench-mach-" + std::to_string(i++) + ".mit.edu";
    Exec("add_machine", {name, "VAX"});
    benchmark::DoNotOptimize(Exec("delete_machine", {name}));
  }
}
BENCHMARK(BM_AppendDelete_Machine);

void BM_AppendDelete_ListMember(benchmark::State& state) {
  Exec("add_list", {"bench-list", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", "b"});
  SplitMix64 rng(7);
  for (auto _ : state) {
    const std::string& login = RandomLogin(rng);
    Exec("add_member_to_list", {"bench-list", "USER", login});
    benchmark::DoNotOptimize(
        Exec("delete_member_from_list", {"bench-list", "USER", login}));
  }
}
BENCHMARK(BM_AppendDelete_ListMember);

// --- access checks (the CAPACLS path with recursive membership) ---

void BM_AccessCheck_AdminViaList(benchmark::State& state) {
  const std::string& admin = PaperSite().builder->admin_login();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryRegistry::Instance().CheckAccess(
        *PaperSite().mc, admin, "add_machine", {"x.mit.edu", "VAX"}));
  }
}
BENCHMARK(BM_AccessCheck_AdminViaList);

void BM_AccessCheck_DeniedUser(benchmark::State& state) {
  SplitMix64 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryRegistry::Instance().CheckAccess(
        *PaperSite().mc, RandomLogin(rng), "add_machine", {"x.mit.edu", "VAX"}));
  }
}
BENCHMARK(BM_AccessCheck_DeniedUser);

void PrintRegistryReport() {
  size_t retrieve = 0;
  size_t append = 0;
  size_t update = 0;
  size_t del = 0;
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    switch (def.qclass) {
      case QueryClass::kRetrieve:
        ++retrieve;
        break;
      case QueryClass::kAppend:
        ++append;
        break;
      case QueryClass::kUpdate:
        ++update;
        break;
      case QueryClass::kDelete:
        ++del;
        break;
    }
  }
  std::printf("E10 query registry: %zu handles (%zu retrieve, %zu append, %zu update, "
              "%zu delete); paper: \"over 100 query handles\"\n\n",
              QueryRegistry::Instance().All().size(), retrieve, append, update, del);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintRegistryReport();
  moira::PaperSite();  // build the site outside any timing loop
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
