// Quota engine benchmarks (DESIGN.md "Quota engine"), written to
// BENCH_quota.json:
//
//  - rollup: get_quota_status answered from the quotarollup aggregates vs a
//    full-scan baseline computing the same answers, under a telemetry-ingest
//    workload.  Gate: >= 50x fewer rows examined at the largest population
//    (100k users unless MOIRA_BENCH_QUOTA_MAX_USERS caps it), with the two
//    paths agreeing on every answer.
//  - sweep: seeded fileserver churn shipped through the at-least-once
//    telemetry transport (duplicate + deferred deliveries), swept
//    periodically, checked against an independent notice oracle that
//    observes the accounted usage after every round.  Gates: zero missed and
//    zero duplicate hard-limit notices.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/comerr/moira_errors.h"
#include "src/db/exec.h"
#include "src/dcm/delta.h"
#include "src/nfsd/nfs_server.h"
#include "src/quota/quota.h"
#include "src/server/journal.h"

namespace moira {
namespace {

int64_t DbRows(MoiraContext& mc) {
  int64_t total = 0;
  for (const std::string& name : mc.db().TableNames()) {
    total += mc.db().GetTable(name)->stats().rows_examined;
  }
  return total;
}

// Attaches an NfsServerSim to every NFS server host and ships the generated
// files so the servers know their quota holders and partitions.
std::map<std::string, std::unique_ptr<NfsServerSim>> AttachServers(BenchSite& site) {
  std::map<std::string, std::unique_ptr<NfsServerSim>> servers;
  for (const std::string& name : site.builder->nfs_server_names()) {
    auto server = std::make_unique<NfsServerSim>(site.directory.Find(name));
    InstallNfsUpdateCommand(site.directory.Find(name), server.get());
    servers.emplace(name, std::move(server));
  }
  site.dcm->RunOnce();
  return servers;
}

QuotaTelemetryDriver MakeDriver(BenchSite& site, Journal* journal,
                                std::map<std::string, std::unique_ptr<NfsServerSim>>& servers,
                                uint64_t seed) {
  QuotaTelemetryDriver driver(site.mc.get(), journal, seed);
  for (auto& [name, server] : servers) {
    driver.AttachServer(name, server.get());
  }
  return driver;
}

// ---------------------------------------------------------------------------
// Rollup arm: indexed aggregates vs full-scan baseline.

struct StatusAnswer {
  int64_t usage = 0;
  int64_t hard = 0;
  int64_t entries = 0;

  bool operator==(const StatusAnswer& o) const {
    return usage == o.usage && hard == o.hard && entries == o.entries;
  }
};

StatusAnswer RollupAnswer(MoiraContext& mc, const std::string& kind,
                          const std::string& name) {
  StatusAnswer ans;
  QueryRegistry::Instance().Execute(mc, "root", "bench", "get_quota_status",
                                    {kind, name}, [&](Tuple t) {
                                      ans.usage = std::atoll(t[2].c_str());
                                      ans.hard = std::atoll(t[4].c_str());
                                      ans.entries = std::atoll(t[6].c_str());
                                    });
  return ans;
}

// The same answer from first principles: full scans of quotausage and
// nfsquota (and members, for LIST), no aggregates consulted.
StatusAnswer ScanAnswer(MoiraContext& mc, const std::string& kind,
                        const std::string& name) {
  StatusAnswer ans;
  std::set<int64_t> ids;
  if (kind == "USER") {
    RowRef user = mc.UserByLogin(name);
    ids.insert(MoiraContext::IntCell(mc.users(), user.row, "users_id"));
  } else if (kind == "LIST") {
    RowRef list = mc.ListByName(name);
    int64_t list_id = MoiraContext::IntCell(mc.list(), list.row, "list_id");
    Table* members = mc.members();
    for (size_t row : From(members).Rows()) {
      if (MoiraContext::IntCell(members, row, "list_id") == list_id &&
          MoiraContext::StrCell(members, row, "member_type") == "USER") {
        ids.insert(MoiraContext::IntCell(members, row, "member_id"));
      }
    }
  }
  const char* key = kind == "FILESYS" ? "filsys_id" : "users_id";
  if (kind == "FILESYS") {
    RowRef fs = mc.FilesysByLabel(name);
    ids.insert(MoiraContext::IntCell(mc.filesys(), fs.row, "filsys_id"));
  }
  Table* usage = mc.quotausage();
  for (size_t row : From(usage).Rows()) {
    if (ids.contains(MoiraContext::IntCell(usage, row, key))) {
      ans.usage += MoiraContext::IntCell(usage, row, "usage");
    }
  }
  Table* quota = mc.nfsquota();
  for (size_t row : From(quota).Rows()) {
    if (ids.contains(MoiraContext::IntCell(quota, row, key))) {
      ans.hard += MoiraContext::IntCell(quota, row, "quota");
      ans.entries += 1;
    }
  }
  return ans;
}

struct RollupSample {
  const char* config;  // "rollup" or "fullscan"
  int users = 0;
  int queries = 0;
  int64_t rows_examined = 0;
  double wall_ms = 0.0;
  int mismatches = 0;  // fullscan arm: answers disagreeing with the rollups
};

// The query mix both arms answer: mostly per-user status (the "am I over
// quota" shape), some per-filesystem, a few lists.
struct StatusQuery {
  std::string kind;
  std::string name;
};

std::vector<StatusQuery> BuildStatusMix(BenchSite& site, int count) {
  const std::vector<std::string>& logins = site.builder->active_logins();
  // Three bench lists of 10 quota holders each.
  std::vector<std::string> lists;
  for (int i = 0; i < 3; ++i) {
    std::string name = "quota-bench-" + std::to_string(i);
    QueryRegistry::Instance().Execute(
        *site.mc, "root", "bench", "add_list",
        {name, "1", "1", "0", "0", "0", "-1", "USER", logins[0], "quota bench list"},
        [](Tuple) {});
    for (int m = 0; m < 10; ++m) {
      QueryRegistry::Instance().Execute(
          *site.mc, "root", "bench", "add_member_to_list",
          {name, "USER", logins[(i * 10 + m) % logins.size()]}, [](Tuple) {});
    }
    lists.push_back(std::move(name));
  }
  std::vector<StatusQuery> mix;
  size_t stride = std::max<size_t>(1, logins.size() / static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string& login = logins[(static_cast<size_t>(i) * stride) % logins.size()];
    if (i % 20 == 19) {
      mix.push_back({"LIST", lists[static_cast<size_t>(i / 20) % lists.size()]});
    } else if (i % 5 == 4) {
      mix.push_back({"FILESYS", login});  // home lockers are labelled by login
    } else {
      mix.push_back({"USER", login});
    }
  }
  return mix;
}

std::pair<RollupSample, RollupSample> RunRollupArms(int users, int ingest_rounds,
                                                    int query_count) {
  SiteSpec spec;
  spec.total_users = users;
  BenchSite site{spec};
  auto servers = AttachServers(site);
  Journal journal;
  QuotaTelemetryDriver driver = MakeDriver(site, &journal, servers, 1988);
  for (int round = 0; round < ingest_rounds; ++round) {
    driver.RunRound({});
    site.clock.Advance(kSecondsPerHour);
  }
  std::vector<StatusQuery> mix = BuildStatusMix(site, query_count);

  RollupSample rollup{"rollup", users, query_count, 0, 0.0, 0};
  RollupSample fullscan{"fullscan", users, query_count, 0, 0.0, 0};
  std::vector<StatusAnswer> expected;
  expected.reserve(mix.size());
  {
    int64_t before = DbRows(*site.mc);
    auto t0 = std::chrono::steady_clock::now();
    for (const StatusQuery& q : mix) {
      expected.push_back(RollupAnswer(*site.mc, q.kind, q.name));
    }
    rollup.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    rollup.rows_examined = DbRows(*site.mc) - before;
  }
  {
    int64_t before = DbRows(*site.mc);
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < mix.size(); ++i) {
      if (!(ScanAnswer(*site.mc, mix[i].kind, mix[i].name) == expected[i])) {
        ++fullscan.mismatches;
      }
    }
    fullscan.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    fullscan.rows_examined = DbRows(*site.mc) - before;
  }
  return {rollup, fullscan};
}

// ---------------------------------------------------------------------------
// Sweep arm: seeded faults vs the independent notice oracle.

struct SweepArmSample {
  const char* config;  // "clean" or "faulted"
  int rounds = 0;
  int sweeps = 0;
  int skipped = 0;       // passes the dirty-bit skip elided
  int applied = 0;       // ingest reports applied
  int ingest_deduped = 0;  // duplicate deliveries absorbed by the seq check
  int64_t flagged = 0;   // grace expiries flagged
  int64_t fired = 0;     // Zephyr notices actually sent
  int64_t expected = 0;  // notices the oracle called for
  int missed = 0;        // oracle expected, engine silent
  int duplicates = 0;    // engine fired, oracle did not expect
};

SweepArmSample RunSweepArm(bool faulted) {
  BenchSite site{TestSiteSpec()};
  auto servers = AttachServers(site);
  Journal journal;
  const std::vector<std::string>& logins = site.builder->active_logins();
  // Every third user gets tight limits so the seeded churn produces real
  // soft/hard crossings within the run.
  for (size_t i = 0; i < logins.size(); i += 3) {
    ExecuteJournaled(*site.mc, &journal, "root", "bench", "set_quota_limits",
                     {logins[i], logins[i], "40", "80"});
  }
  QuotaTelemetryDriver driver = MakeDriver(site, &journal, servers, 2024);
  QuotaFaultPlan plan;
  if (faulted) {
    plan.duplicate_permille = 350;
    plan.defer_permille = 250;
  }
  SweepArmSample sample{faulted ? "faulted" : "clean"};

  // The oracle: per accounted usage row, whether a fresh hard crossing may
  // fire (armed).  Re-armed whenever the accounted usage is at or below the
  // effective soft limit, observed after every ingest round.
  MoiraContext& mc = *site.mc;
  Table* usage = mc.quotausage();
  Table* quota = mc.nfsquota();
  std::map<std::pair<int64_t, int64_t>, bool> armed;  // (users_id, phys_id)
  auto row_state = [&](size_t urow, int64_t* used, int64_t* hard, int64_t* soft,
                       std::pair<int64_t, int64_t>* key) {
    key->first = MoiraContext::IntCell(usage, urow, "users_id");
    key->second = MoiraContext::IntCell(usage, urow, "phys_id");
    *used = MoiraContext::IntCell(usage, urow, "usage");
    std::vector<size_t> qrows = From(quota)
                                    .WhereEq("users_id", Value(key->first))
                                    .WhereEq("phys_id", Value(key->second))
                                    .Rows();
    if (qrows.empty()) {
      return false;
    }
    *hard = MoiraContext::IntCell(quota, qrows[0], "quota");
    int64_t s = MoiraContext::IntCell(quota, qrows[0], "soft");
    *soft = s > 0 ? s : *hard;
    return true;
  };

  uint64_t marker = 0;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    QuotaIngestStats stats = driver.RunRound(plan);
    sample.applied += stats.applied;
    sample.ingest_deduped += stats.deduped;
    site.clock.Advance(kSecondsPerDay);
    // Observe arming on the accounted state this round left behind.
    for (size_t urow : From(usage).Rows()) {
      int64_t used = 0, hard = 0, soft = 0;
      std::pair<int64_t, int64_t> key;
      if (row_state(urow, &used, &hard, &soft, &key) && used <= soft) {
        armed[key] = true;
      }
    }
    if (round % 2 == 1) {
      // Who should a sweep notice right now?
      std::set<std::string> expect;
      for (size_t urow : From(usage).Rows()) {
        int64_t used = 0, hard = 0, soft = 0;
        std::pair<int64_t, int64_t> key;
        if (!row_state(urow, &used, &hard, &soft, &key)) {
          continue;
        }
        auto it = armed.find(key);
        bool is_armed = it == armed.end() ? true : it->second;
        if (used > hard && is_armed) {
          RowRef user = mc.ExactOne(mc.users(), "users_id", Value(key.first), MR_USER);
          expect.insert(MoiraContext::StrCell(mc.users(), user.row, "login"));
          armed[key] = false;
        }
      }
      size_t before = site.zephyr->Matching(kQuotaZephyrClass, kQuotaZephyrInstance).size();
      QuotaSweepSummary summary =
          RunQuotaSweep(mc, &journal, site.zephyr.get(), &marker);
      ++sample.sweeps;
      if (!summary.ran) {
        ++sample.skipped;
      }
      sample.flagged += summary.flagged;
      std::vector<ZephyrNotice> notices =
          site.zephyr->Matching(kQuotaZephyrClass, kQuotaZephyrInstance);
      std::set<std::string> fired;
      for (size_t i = before; i < notices.size(); ++i) {
        fired.insert(notices[i].message.substr(0, notices[i].message.find(' ')));
      }
      sample.expected += static_cast<int64_t>(expect.size());
      sample.fired += static_cast<int64_t>(fired.size());
      for (const std::string& login : expect) {
        if (!fired.contains(login)) {
          ++sample.missed;
        }
      }
      for (const std::string& login : fired) {
        if (!expect.contains(login)) {
          ++sample.duplicates;
        }
      }
    }
  }
  sample.rounds = kRounds;
  return sample;
}

// ---------------------------------------------------------------------------
// Report + gates.

bool RunQuotaReport(FILE* f) {
  int64_t max_users = 100000;
  if (const char* env = std::getenv("MOIRA_BENCH_QUOTA_MAX_USERS")) {
    max_users = std::atoll(env);
  }
  std::vector<RollupSample> rollup_samples;
  for (int users : {10000, 100000}) {
    if (users > max_users) {
      std::printf("quota rollup: skipping %d users (MOIRA_BENCH_QUOTA_MAX_USERS=%lld)\n",
                  users, static_cast<long long>(max_users));
      continue;
    }
    auto [rollup, fullscan] = RunRollupArms(users, /*ingest_rounds=*/2,
                                            /*query_count=*/120);
    rollup_samples.push_back(rollup);
    rollup_samples.push_back(fullscan);
  }

  std::vector<SweepArmSample> sweep_samples;
  sweep_samples.push_back(RunSweepArm(/*faulted=*/false));
  sweep_samples.push_back(RunSweepArm(/*faulted=*/true));

  std::fprintf(f, "  \"rollup\": [\n");
  for (size_t i = 0; i < rollup_samples.size(); ++i) {
    const RollupSample& s = rollup_samples[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"users\": %d, \"queries\": %d, "
                 "\"rows_examined\": %lld, \"wall_ms\": %.2f, \"mismatches\": %d}%s\n",
                 s.config, s.users, s.queries,
                 static_cast<long long>(s.rows_examined), s.wall_ms, s.mismatches,
                 i + 1 < rollup_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"sweep\": [\n");
  for (size_t i = 0; i < sweep_samples.size(); ++i) {
    const SweepArmSample& s = sweep_samples[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"rounds\": %d, \"sweeps\": %d, "
                 "\"skipped\": %d, \"applied\": %d, \"ingest_deduped\": %d, "
                 "\"flagged\": %lld, \"notices_expected\": %lld, "
                 "\"notices_fired\": %lld, \"missed\": %d, \"duplicates\": %d}%s\n",
                 s.config, s.rounds, s.sweeps, s.skipped, s.applied, s.ingest_deduped,
                 static_cast<long long>(s.flagged),
                 static_cast<long long>(s.expected), static_cast<long long>(s.fired),
                 s.missed, s.duplicates, i + 1 < sweep_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  bool ok = true;
  std::printf("quota rollup: indexed aggregates vs full-scan baseline\n");
  std::printf("  %8s %-10s %8s %14s %10s %10s\n", "users", "config", "queries",
              "rows_examined", "wall_ms", "mismatch");
  for (const RollupSample& s : rollup_samples) {
    std::printf("  %8d %-10s %8d %14lld %10.1f %10d\n", s.users, s.config, s.queries,
                static_cast<long long>(s.rows_examined), s.wall_ms, s.mismatches);
  }
  double rows_ratio = 0.0;
  int gated_users = 0;
  int mismatches = 0;
  if (rollup_samples.size() >= 2) {
    const RollupSample& rollup = rollup_samples[rollup_samples.size() - 2];
    const RollupSample& fullscan = rollup_samples[rollup_samples.size() - 1];
    gated_users = rollup.users;
    rows_ratio = rollup.rows_examined > 0
                     ? static_cast<double>(fullscan.rows_examined) /
                           static_cast<double>(rollup.rows_examined)
                     : 0.0;
    for (const RollupSample& s : rollup_samples) {
      mismatches += s.mismatches;
    }
    std::printf("  at %d users: %.1fx fewer rows examined, %d mismatched answers\n",
                gated_users, rows_ratio, mismatches);
    if (rows_ratio < 50.0 || mismatches != 0) {
      std::printf("  ^^ FAIL: rollups must examine >= 50x fewer rows and agree with "
                  "the full-scan baseline\n");
      ok = false;
    }
  } else {
    std::printf("  ^^ FAIL: no rollup samples ran\n");
    ok = false;
  }

  std::printf("quota sweep: seeded-fault notices vs oracle\n");
  std::printf("  %-8s %6s %6s %7s %8s %7s %8s %6s %6s %6s\n", "config", "rounds",
              "sweeps", "applied", "dedup", "flagged", "expected", "fired", "missed",
              "dup");
  int missed = 0;
  int duplicates = 0;
  int64_t fired_total = 0;
  for (const SweepArmSample& s : sweep_samples) {
    std::printf("  %-8s %6d %6d %7d %8d %7lld %8lld %6lld %6d %6d\n", s.config,
                s.rounds, s.sweeps, s.applied, s.ingest_deduped,
                static_cast<long long>(s.flagged), static_cast<long long>(s.expected),
                static_cast<long long>(s.fired), s.missed, s.duplicates);
    missed += s.missed;
    duplicates += s.duplicates;
    fired_total += s.fired;
  }
  if (missed != 0 || duplicates != 0 || fired_total <= 0) {
    std::printf("  ^^ FAIL: the sweep must fire every oracle-expected notice exactly "
                "once (and the workload must produce crossings)\n");
    ok = false;
  }

  std::fprintf(
      f,
      "  \"gates\": [\n"
      "    {\"name\": \"rollup_rows_reduction_x\", \"users\": %d, \"value\": %.2f, "
      "\"pass\": %s},\n"
      "    {\"name\": \"rollup_answers_match\", \"value\": %d, \"pass\": %s},\n"
      "    {\"name\": \"sweep_zero_missed_notices\", \"value\": %d, \"pass\": %s},\n"
      "    {\"name\": \"sweep_zero_duplicate_notices\", \"value\": %d, \"pass\": %s},\n"
      "    {\"name\": \"sweep_notices_fired\", \"value\": %lld, \"pass\": %s}\n"
      "  ]",
      gated_users, rows_ratio, rows_ratio >= 50.0 ? "true" : "false", mismatches,
      mismatches == 0 && gated_users > 0 ? "true" : "false", missed,
      missed == 0 ? "true" : "false", duplicates, duplicates == 0 ? "true" : "false",
      static_cast<long long>(fired_total), fired_total > 0 ? "true" : "false");
  std::printf("\n");
  return ok;
}

// ---------------------------------------------------------------------------
// Timing microbenchmarks (informational; the gates above are what check.sh
// enforces).

void BM_GetQuotaStatusUser(benchmark::State& state) {
  static BenchSite* site = new BenchSite(TestSiteSpec());
  static auto* servers = new std::map<std::string, std::unique_ptr<NfsServerSim>>(
      AttachServers(*site));
  static Journal* journal = new Journal();
  static QuotaTelemetryDriver* driver =
      new QuotaTelemetryDriver(MakeDriver(*site, journal, *servers, 11));
  if (driver->rounds() == 0) {
    driver->RunRound({});
  }
  const std::vector<std::string>& logins = site->builder->active_logins();
  size_t i = 0;
  for (auto _ : state) {
    StatusAnswer ans = RollupAnswer(*site->mc, "USER", logins[i++ % logins.size()]);
    benchmark::DoNotOptimize(ans.usage);
  }
}
BENCHMARK(BM_GetQuotaStatusUser);

void BM_ReportQuotaUsageIngest(benchmark::State& state) {
  static BenchSite* site = new BenchSite(TestSiteSpec());
  static auto* servers = new std::map<std::string, std::unique_ptr<NfsServerSim>>(
      AttachServers(*site));
  const std::string& machine = site->builder->nfs_server_names()[0];
  NfsServerSim& server = *servers->at(machine);
  server.ChurnUsage(5);
  std::vector<UsageReportLine> lines = server.DrainUsageReports();
  if (lines.empty()) {
    state.SkipWithError("server drained no reports");
    return;
  }
  int64_t seq = lines.back().seq;
  const UsageReportLine line = lines[0];
  for (auto _ : state) {
    ++seq;
    int32_t code = QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "report_quota_usage",
        {machine, line.partition, std::to_string(line.uid), "1", std::to_string(seq)},
        [](Tuple) {});
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_ReportQuotaUsageIngest);

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  const char* path = "BENCH_quota.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_quota\",\n");
  bool ok = moira::RunQuotaReport(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
