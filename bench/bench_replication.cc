// Journal-shipping read replication (DESIGN.md "Replication layer").
//
// The paper scales reads by pushing derived data out to consumers (Hesiod);
// this workload measures the complementary path: read replicas fed from the
// primary's journal, with client-side read routing.  It writes
// BENCH_replication.json and bakes the acceptance gates into the process exit
// code:
//   - with 4 replicas under the seeded fault plan, read throughput is at
//     least 3x the single-server baseline;
//   - every read-your-writes check passes;
//   - after the run every replica's full database dump is byte-identical to
//     the primary's.
//
// Throughput model: the host running this bench has a single core, so the
// scaling claim cannot come from real threads.  Instead reads are costed with
// a capacity model: every served read occupies exactly one server (the
// replica that answered, or the primary on redirect), so the wall-clock to
// drain N reads is proportional to the *busiest* server's share.  Read
// speedup = total reads / busiest server's reads.  The counts are measured,
// not assumed: a crashed or behind replica really does push its share onto
// the others (the router skips it), so broken replication genuinely fails the
// 3x gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/backup.h"
#include "src/client/client.h"
#include "src/comerr/moira_errors.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/repl/repl_fault.h"
#include "src/repl/replica.h"
#include "src/repl/router.h"
#include "src/server/server.h"

namespace moira {
namespace {

std::string Upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

// A primary deployment plus `nreplicas` read replicas and a routing client.
struct ReplSite {
  SimulatedClock clock{568000000};
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;
  std::unique_ptr<KerberosRealm> realm;
  std::unique_ptr<MoiraServer> primary;
  std::vector<std::unique_ptr<ReplicaServer>> replicas;
  std::vector<ReplicaServer*> raw;
  std::unique_ptr<ReplicatedClient> router;

  explicit ReplSite(int nreplicas) {
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get());
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
    realm = std::make_unique<KerberosRealm>(&clock);
    realm->AddPrincipal("root", "rootpw");
    primary = std::make_unique<MoiraServer>(mc.get(), realm.get());

    auto admin = std::make_unique<MrClient>(
        [this] { return std::make_unique<LoopbackChannel>(primary.get()); });
    admin->SetKerberosIdentity(realm.get(), "root", "rootpw");
    admin->Connect();
    admin->Auth("repl-bench");
    router = std::make_unique<ReplicatedClient>(std::move(admin));
    // Seeded through the wire so the change is journalled: replicas replay
    // history from seq 1, so out-of-band mutations would never reach them.
    router->Query("add_user",
                  {"rbench", "200", "/bin/csh", "Bench", "Repl", "Q", "1", "hashr", "G"},
                  [](Tuple) {});

    for (int i = 0; i < nreplicas; ++i) {
      ReplicaOptions options;
      options.name = "r" + std::to_string(i);
      auto rep = std::make_unique<ReplicaServer>(realm.get(), options);
      rep->SetPrimaryLink(
          [this] { return std::make_unique<LoopbackChannel>(primary.get()); }, "root",
          "rootpw");
      rep->CatchUp();
      // Unauthenticated read client.  The retry policy matters: after a
      // replica crash the loopback channel dies, and without a reconnect
      // attempt the router would write the replica off forever.
      auto reader = std::make_unique<MrClient>(
          [r = rep.get()] { return std::make_unique<LoopbackChannel>(r); });
      RetryPolicy policy;
      policy.max_attempts = 2;
      policy.initial_backoff = 1;
      reader->SetRetryPolicy(policy, &clock);
      reader->set_sleep_fn([this](UnixTime s) { clock.Advance(s); });
      reader->Connect();
      router->AddReplica(std::move(reader));
      raw.push_back(rep.get());
      replicas.push_back(std::move(rep));
    }
  }
};

struct RunResult {
  int replicas = 0;
  int rounds = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t write_failures = 0;
  uint64_t busiest_reads = 0;
  double speedup = 0.0;
  uint64_t max_lag = 0;  // worst post-catch-up lag seen in any round
  uint64_t ryw_checks = 0;
  uint64_t ryw_failures = 0;
  uint64_t redirects = 0;
  uint64_t snapshot_loads = 0;
  uint64_t apply_failures = 0;
  bool converged = false;
};

// Runs `rounds` rounds of mixed traffic through the router; every write is
// immediately followed by a read-your-writes check of the row it created.
RunResult RunWorkload(int nreplicas, const ReplFaultSpec& fault_spec, int rounds,
                      int writes_per_round, int extra_reads_per_round) {
  ReplSite site(nreplicas);
  ReplFaultPlan plan(fault_spec);
  RunResult result;
  result.replicas = nreplicas;
  result.rounds = rounds;
  std::vector<std::string> machines;
  SplitMix64 pick(0xb3ac4);

  for (int round = 0; round < rounds; ++round) {
    plan.ArmRound(site.raw, site.realm.get(), round);
    site.clock.Advance(30);
    for (int w = 0; w < writes_per_round; ++w) {
      std::string name =
          "bm" + std::to_string(round) + "x" + std::to_string(w) + ".mit.edu";
      ++result.writes;
      if (site.router->Query("add_machine", {name, "VAX"}, [](Tuple) {}) != MR_SUCCESS) {
        ++result.write_failures;
      }
      machines.push_back(Upper(name));
      // Read-your-writes: the row just written must be visible to the very
      // next read, wherever the router sends it.
      ++result.ryw_checks;
      ++result.reads;
      bool found = false;
      int32_t code = site.router->Query("get_machine", {machines.back()},
                                        [&](Tuple) { found = true; });
      if (code != MR_SUCCESS || !found) {
        ++result.ryw_failures;
      }
    }
    for (int r = 0; r < extra_reads_per_round; ++r) {
      ++result.reads;
      const std::string& name = machines[pick.Below(machines.size())];
      site.router->Query("get_machine", {name}, [](Tuple) {});
    }
    // End-of-round catch-up sweep (the replicas' pull daemons).
    for (ReplicaServer* rep : site.raw) {
      rep->CatchUp();
    }
    const uint64_t primary_seq = site.primary->journal().last_seq();
    for (ReplicaServer* rep : site.raw) {
      if (primary_seq > rep->applied_seq()) {
        result.max_lag = std::max(result.max_lag, primary_seq - rep->applied_seq());
      }
    }
  }

  // Heal everything and drain: replication must converge once faults stop.
  site.realm->SetDown(false);
  for (ReplicaServer* rep : site.raw) {
    if (rep->crashed()) {
      rep->Restart();
    }
    rep->set_apply_limit(0);
    rep->CatchUp();
  }
  const std::string golden = BackupManager::DumpToString(*site.db);
  result.converged = true;
  for (ReplicaServer* rep : site.raw) {
    if (BackupManager::DumpToString(rep->db()) != golden) {
      result.converged = false;
    }
    result.snapshot_loads += rep->stats().snapshot_loads;
    result.apply_failures += rep->stats().apply_failures;
  }

  // Capacity model: the busiest server bounds wall-clock read throughput.
  result.busiest_reads = site.router->stats().primary_reads;
  for (ReplicaServer* rep : site.raw) {
    result.busiest_reads = std::max(result.busiest_reads, rep->stats().reads_served);
  }
  result.speedup = result.busiest_reads == 0
                       ? 0.0
                       : static_cast<double>(result.reads) /
                             static_cast<double>(result.busiest_reads);
  result.redirects = site.router->stats().redirects;
  return result;
}

constexpr int kRounds = 16;
constexpr int kWritesPerRound = 5;
constexpr int kExtraReadsPerRound = 55;

ReplFaultSpec SeededFaults() {
  ReplFaultSpec spec;
  spec.seed = 1988;
  spec.crash_permille = 120;
  spec.flap_permille = 250;
  spec.slow_permille = 250;
  spec.slow_apply_limit = 4;
  spec.kdc_down_permille = 150;
  return spec;
}

void PrintRun(const char* tag, const RunResult& r) {
  std::printf("  %-28s replicas=%d reads=%llu busiest=%llu speedup=%.2fx "
              "max_lag=%llu ryw=%llu/%llu redirects=%llu snapshots=%llu %s\n",
              tag, r.replicas, static_cast<unsigned long long>(r.reads),
              static_cast<unsigned long long>(r.busiest_reads), r.speedup,
              static_cast<unsigned long long>(r.max_lag),
              static_cast<unsigned long long>(r.ryw_checks - r.ryw_failures),
              static_cast<unsigned long long>(r.ryw_checks),
              static_cast<unsigned long long>(r.redirects),
              static_cast<unsigned long long>(r.snapshot_loads),
              r.converged ? "converged" : "DIVERGED");
}

void WriteRunJson(std::FILE* f, const RunResult& r, uint64_t seed, bool faulted) {
  std::fprintf(f,
               "    {\"replicas\": %d, \"rounds\": %d, \"seed\": %llu, "
               "\"faulted\": %s, \"reads\": %llu, \"writes\": %llu, "
               "\"write_failures\": %llu, \"busiest_server_reads\": %llu, "
               "\"read_speedup_x\": %.3f, \"max_lag\": %llu, "
               "\"ryw_checks\": %llu, \"ryw_failures\": %llu, "
               "\"redirects\": %llu, \"snapshot_loads\": %llu, "
               "\"apply_failures\": %llu, \"converged\": %s}",
               r.replicas, r.rounds, static_cast<unsigned long long>(seed),
               faulted ? "true" : "false", static_cast<unsigned long long>(r.reads),
               static_cast<unsigned long long>(r.writes),
               static_cast<unsigned long long>(r.write_failures),
               static_cast<unsigned long long>(r.busiest_reads), r.speedup,
               static_cast<unsigned long long>(r.max_lag),
               static_cast<unsigned long long>(r.ryw_checks),
               static_cast<unsigned long long>(r.ryw_failures),
               static_cast<unsigned long long>(r.redirects),
               static_cast<unsigned long long>(r.snapshot_loads),
               static_cast<unsigned long long>(r.apply_failures),
               r.converged ? "true" : "false");
}

// Runs the scaling sweep and the seeded faulty run, writes
// BENCH_replication.json, and returns whether the acceptance gates hold.
bool RunReplicationReport(const char* path) {
  std::printf("Journal-shipping read replication:\n");

  // Fault-free scaling sweep: how read throughput grows with replica count.
  ReplFaultSpec clean;  // all permille at 0
  std::vector<RunResult> scaling;
  for (int n : {0, 1, 2, 4}) {
    scaling.push_back(RunWorkload(n, clean, kRounds, kWritesPerRound,
                                  kExtraReadsPerRound));
    PrintRun(n == 0 ? "baseline (no replicas)" : "fault-free", scaling.back());
  }

  // The acceptance run: 4 replicas under the seeded fault plan.
  const ReplFaultSpec faults = SeededFaults();
  RunResult faulted = RunWorkload(4, faults, kRounds, kWritesPerRound,
                                  kExtraReadsPerRound);
  PrintRun("seeded faults", faulted);

  const bool speedup_ok = faulted.speedup >= 3.0;
  const bool ryw_ok = faulted.ryw_failures == 0 && faulted.write_failures == 0;
  const bool converged_ok = faulted.converged && faulted.apply_failures == 0;
  if (!speedup_ok) {
    std::printf("FAIL: read speedup %.2fx under faults is below the 3x gate\n",
                faulted.speedup);
  }
  if (!ryw_ok) {
    std::printf("FAIL: %llu read-your-writes checks failed\n",
                static_cast<unsigned long long>(faulted.ryw_failures +
                                                faulted.write_failures));
  }
  if (!converged_ok) {
    std::printf("FAIL: replica dumps diverged from the primary after the run\n");
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("FAIL: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_replication\",\n");
  std::fprintf(f, "  \"scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    WriteRunJson(f, scaling[i], clean.seed, false);
    std::fprintf(f, "%s\n", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"faulted\": [\n");
  WriteRunJson(f, faulted, faults.seed, true);
  std::fprintf(f, "\n  ],\n  \"gates\": [\n");
  std::fprintf(f,
               "    {\"name\": \"read_speedup_with_4_replicas_ge_3x\", "
               "\"value\": %.3f, \"pass\": %s},\n",
               faulted.speedup, speedup_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"read_your_writes_all_pass\", \"value\": %llu, "
               "\"pass\": %s},\n",
               static_cast<unsigned long long>(faulted.ryw_failures),
               ryw_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"replica_dumps_byte_identical\", \"value\": %d, "
               "\"pass\": %s}\n",
               faulted.replicas, converged_ok ? "true" : "false");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n\n", path);
  return speedup_ok && ryw_ok && converged_ok;
}

// --- microbenchmarks ---

// A read served by a replica, token already satisfied (the steady state).
void BM_ReplicaRead(benchmark::State& state) {
  static ReplSite* site = [] {
    auto* s = new ReplSite(1);
    s->router->Query("add_machine", {"bmread.mit.edu", "VAX"}, [](Tuple) {});
    s->raw[0]->CatchUp();
    return s;
  }();
  for (auto _ : state) {
    int32_t code =
        site->router->Query("get_machine", {"BMREAD.MIT.EDU"}, [](Tuple) {});
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_ReplicaRead);

// Shipping and applying one journal entry over the wire.
void BM_CatchUpPerEntry(benchmark::State& state) {
  static ReplSite* site = new ReplSite(1);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    site->router->Query("update_user_shell",
                        {"rbench", "/bin/b" + std::to_string(i++ % 7)}, [](Tuple) {});
    state.ResumeTiming();
    int32_t code = site->raw[0]->CatchUp();
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_CatchUpPerEntry);

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  // The report (and its acceptance gates) runs even under an unmatchable
  // --benchmark_filter, which is how scripts/check.sh smoke-tests it.
  bool ok = moira::RunReplicationReport("BENCH_replication.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
