// Journal-shipping read replication (DESIGN.md "Replication layer").
//
// The paper scales reads by pushing derived data out to consumers (Hesiod);
// this workload measures the complementary path: read replicas fed from the
// primary's journal, with client-side read routing.  It writes
// BENCH_replication.json and bakes the acceptance gates into the process exit
// code:
//   - with 4 replicas under the seeded fault plan, read throughput is at
//     least 3x the single-server baseline;
//   - every read-your-writes check passes;
//   - after the run every replica's full database dump is byte-identical to
//     the primary's.
//
// Throughput model: the host running this bench has a single core, so the
// scaling claim cannot come from real threads.  Instead reads are costed with
// a capacity model: every served read occupies exactly one server (the
// replica that answered, or the primary on redirect), so the wall-clock to
// drain N reads is proportional to the *busiest* server's share.  Read
// speedup = total reads / busiest server's reads.  The counts are measured,
// not assumed: a crashed or behind replica really does push its share onto
// the others (the router skips it), so broken replication genuinely fails the
// 3x gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/backup.h"
#include "src/client/client.h"
#include "src/comerr/moira_errors.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/krb/kerberos.h"
#include "src/net/channel.h"
#include "src/repl/cluster.h"
#include "src/repl/repl_fault.h"
#include "src/repl/replica.h"
#include "src/repl/router.h"
#include "src/server/server.h"

namespace moira {
namespace {

std::string Upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

// A primary deployment plus `nreplicas` read replicas and a routing client.
struct ReplSite {
  SimulatedClock clock{568000000};
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;
  std::unique_ptr<KerberosRealm> realm;
  std::unique_ptr<MoiraServer> primary;
  std::vector<std::unique_ptr<ReplicaServer>> replicas;
  std::vector<ReplicaServer*> raw;
  std::unique_ptr<ReplicatedClient> router;

  explicit ReplSite(int nreplicas) {
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get());
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
    realm = std::make_unique<KerberosRealm>(&clock);
    realm->AddPrincipal("root", "rootpw");
    primary = std::make_unique<MoiraServer>(mc.get(), realm.get());

    auto admin = std::make_unique<MrClient>(
        [this] { return std::make_unique<LoopbackChannel>(primary.get()); });
    admin->SetKerberosIdentity(realm.get(), "root", "rootpw");
    admin->Connect();
    admin->Auth("repl-bench");
    router = std::make_unique<ReplicatedClient>(std::move(admin));
    // Seeded through the wire so the change is journalled: replicas replay
    // history from seq 1, so out-of-band mutations would never reach them.
    router->Query("add_user",
                  {"rbench", "200", "/bin/csh", "Bench", "Repl", "Q", "1", "hashr", "G"},
                  [](Tuple) {});

    for (int i = 0; i < nreplicas; ++i) {
      ReplicaOptions options;
      options.name = "r" + std::to_string(i);
      auto rep = std::make_unique<ReplicaServer>(realm.get(), options);
      rep->SetPrimaryLink(
          [this] { return std::make_unique<LoopbackChannel>(primary.get()); }, "root",
          "rootpw");
      rep->CatchUp();
      // Unauthenticated read client.  The retry policy matters: after a
      // replica crash the loopback channel dies, and without a reconnect
      // attempt the router would write the replica off forever.
      auto reader = std::make_unique<MrClient>(
          [r = rep.get()] { return std::make_unique<LoopbackChannel>(r); });
      RetryPolicy policy;
      policy.max_attempts = 2;
      policy.initial_backoff = 1;
      reader->SetRetryPolicy(policy, &clock);
      reader->set_sleep_fn([this](UnixTime s) { clock.Advance(s); });
      reader->Connect();
      router->AddReplica(std::move(reader));
      raw.push_back(rep.get());
      replicas.push_back(std::move(rep));
    }
  }
};

struct RunResult {
  int replicas = 0;
  int rounds = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t write_failures = 0;
  uint64_t busiest_reads = 0;
  double speedup = 0.0;
  uint64_t max_lag = 0;  // worst post-catch-up lag seen in any round
  uint64_t ryw_checks = 0;
  uint64_t ryw_failures = 0;
  uint64_t redirects = 0;
  uint64_t snapshot_loads = 0;
  uint64_t apply_failures = 0;
  bool converged = false;
};

// Runs `rounds` rounds of mixed traffic through the router; every write is
// immediately followed by a read-your-writes check of the row it created.
RunResult RunWorkload(int nreplicas, const ReplFaultSpec& fault_spec, int rounds,
                      int writes_per_round, int extra_reads_per_round) {
  ReplSite site(nreplicas);
  ReplFaultPlan plan(fault_spec);
  RunResult result;
  result.replicas = nreplicas;
  result.rounds = rounds;
  std::vector<std::string> machines;
  SplitMix64 pick(0xb3ac4);

  for (int round = 0; round < rounds; ++round) {
    plan.ArmRound(site.raw, site.realm.get(), round);
    site.clock.Advance(30);
    for (int w = 0; w < writes_per_round; ++w) {
      std::string name =
          "bm" + std::to_string(round) + "x" + std::to_string(w) + ".mit.edu";
      ++result.writes;
      if (site.router->Query("add_machine", {name, "VAX"}, [](Tuple) {}) != MR_SUCCESS) {
        ++result.write_failures;
      }
      machines.push_back(Upper(name));
      // Read-your-writes: the row just written must be visible to the very
      // next read, wherever the router sends it.
      ++result.ryw_checks;
      ++result.reads;
      bool found = false;
      int32_t code = site.router->Query("get_machine", {machines.back()},
                                        [&](Tuple) { found = true; });
      if (code != MR_SUCCESS || !found) {
        ++result.ryw_failures;
      }
    }
    for (int r = 0; r < extra_reads_per_round; ++r) {
      ++result.reads;
      const std::string& name = machines[pick.Below(machines.size())];
      site.router->Query("get_machine", {name}, [](Tuple) {});
    }
    // End-of-round catch-up sweep (the replicas' pull daemons).
    for (ReplicaServer* rep : site.raw) {
      rep->CatchUp();
    }
    const uint64_t primary_seq = site.primary->journal().last_seq();
    for (ReplicaServer* rep : site.raw) {
      if (primary_seq > rep->applied_seq()) {
        result.max_lag = std::max(result.max_lag, primary_seq - rep->applied_seq());
      }
    }
  }

  // Heal everything and drain: replication must converge once faults stop.
  site.realm->SetDown(false);
  for (ReplicaServer* rep : site.raw) {
    if (rep->crashed()) {
      rep->Restart();
    }
    rep->set_apply_limit(0);
    rep->CatchUp();
  }
  const std::string golden = BackupManager::DumpToString(*site.db);
  result.converged = true;
  for (ReplicaServer* rep : site.raw) {
    if (BackupManager::DumpToString(rep->db()) != golden) {
      result.converged = false;
    }
    result.snapshot_loads += rep->stats().snapshot_loads;
    result.apply_failures += rep->stats().apply_failures;
  }

  // Capacity model: the busiest server bounds wall-clock read throughput.
  result.busiest_reads = site.router->stats().primary_reads;
  for (ReplicaServer* rep : site.raw) {
    result.busiest_reads = std::max(result.busiest_reads, rep->stats().reads_served);
  }
  result.speedup = result.busiest_reads == 0
                       ? 0.0
                       : static_cast<double>(result.reads) /
                             static_cast<double>(result.busiest_reads);
  result.redirects = site.router->stats().redirects;
  return result;
}

constexpr int kRounds = 16;
constexpr int kWritesPerRound = 5;
constexpr int kExtraReadsPerRound = 55;

ReplFaultSpec SeededFaults() {
  ReplFaultSpec spec;
  spec.seed = 1988;
  spec.crash_permille = 120;
  spec.flap_permille = 250;
  spec.slow_permille = 250;
  spec.slow_apply_limit = 4;
  spec.kdc_down_permille = 150;
  return spec;
}

// --- Failover sweep: quorum writes + automatic failover under faults ---

struct FailoverResult {
  int rounds = 0;
  uint64_t seed = 0;
  uint64_t write_attempts = 0;
  uint64_t acked_writes = 0;        // writes the router acked to the caller
  uint64_t lost_acked_writes = 0;   // acked but missing from the final dump
  uint64_t elections_started = 0;
  uint64_t promotions = 0;          // every one is election-driven, not operator
  uint64_t step_downs = 0;
  uint64_t epochs_observed = 0;
  uint64_t split_brain_epochs = 0;  // an epoch seen writable on two nodes
  bool unique_final_primary = false;
  bool converged = false;
};

// A 3-node live-wire cluster under the seeded fault plan (crashes, link
// flaps, slow applies, KDC outages, torn quorum pushes, symmetric and
// asymmetric partitions).  Mirrors FailoverSweepTest: the oracle is the list
// of writes the router ACKED — every one must appear in the final primary's
// dump — plus a per-tick one-writable-primary-per-epoch scan.
FailoverResult RunFailoverSweep(uint64_t seed, int rounds) {
  ReplClusterOptions options;
  options.missed_heartbeats = 2;
  ReplCluster cluster(options);

  auto factory = [&cluster](const ReplEndpoint& endpoint) {
    auto client = std::make_unique<MrClient>(endpoint.connector);
    client->SetKerberosIdentity(&cluster.realm(), "root", "rootpw");
    return client;
  };
  std::vector<ReplEndpoint> endpoints;
  for (int i = 0; i < cluster.size(); ++i) {
    endpoints.push_back({cluster.node_name(i), cluster.ClientConnector(i)});
  }
  auto first = factory(endpoints[0]);
  first->Connect();
  first->Auth("bench-failover");
  auto router = std::make_unique<ReplicatedClient>(std::move(first));
  router->SetEndpoints(std::move(endpoints), factory, "bench-failover");
  router->EnableTaggedWrites("fb");

  ReplFaultSpec spec;
  spec.seed = seed;
  spec.crash_permille = 150;
  spec.flap_permille = 200;
  spec.slow_permille = 150;
  spec.slow_apply_limit = 2;
  spec.kdc_down_permille = 100;
  spec.torn_push_permille = 200;
  spec.partition_permille = 300;
  spec.asym_partition_permille = 300;
  ReplFaultPlan plan(spec);

  std::vector<ReplicaServer*> raw;
  std::vector<std::string> names;
  for (int i = 0; i < cluster.size(); ++i) {
    raw.push_back(cluster.node(i));
    names.push_back(cluster.node_name(i));
  }

  FailoverResult result;
  result.rounds = rounds;
  result.seed = seed;
  std::vector<std::string> acked;  // canonical uppercase, grepped verbatim
  std::map<uint64_t, std::string> epoch_owner;
  auto observe_primaries = [&] {
    for (ReplicaServer* p : cluster.WritablePrimaries()) {
      auto [it, inserted] = epoch_owner.emplace(p->epoch(), p->name());
      if (!inserted && it->second != p->name()) {
        ++result.split_brain_epochs;
      }
    }
  };

  for (int round = 0; round < rounds; ++round) {
    plan.ArmRound(raw, &cluster.realm(), round, &cluster.net(), names);
    for (int tick = 0; tick < 3; ++tick) {
      cluster.Tick();
      observe_primaries();
    }
    for (int w = 0; w < 2; ++w) {
      std::string name =
          "FB" + std::to_string(round) + "X" + std::to_string(w) + ".MIT.EDU";
      ++result.write_attempts;
      if (router->Query("add_machine", {name, "VAX"}, [](Tuple) {}) ==
          MR_SUCCESS) {
        acked.push_back(name);
      }
    }
    observe_primaries();
  }

  // Heal everything; the cluster must converge on its own heartbeats — no
  // operator Promote() anywhere in this sweep.
  cluster.net().HealAll();
  cluster.realm().SetDown(false);
  for (ReplicaServer* node : raw) {
    if (node->crashed()) {
      node->Restart();
    }
    node->set_apply_limit(0);
  }
  ReplicaServer* final_primary = nullptr;
  for (int i = 0; i < 40 && final_primary == nullptr; ++i) {
    cluster.Tick();
    final_primary = cluster.primary();
  }
  result.acked_writes = acked.size();
  result.epochs_observed = epoch_owner.size();
  for (ReplicaServer* node : raw) {
    result.elections_started += node->stats().elections_started;
    result.promotions += node->stats().promotions;
    result.step_downs += node->stats().step_downs;
  }
  result.unique_final_primary = final_primary != nullptr;
  if (final_primary == nullptr) {
    // No dump to check against: every acked write is unverifiable, so the
    // lost-write gate fails closed.
    result.lost_acked_writes = result.acked_writes;
    return result;
  }

  // One more write flushes the router's pending replay queue, then drain.
  bool drained = router->Query("add_machine", {"fbdrain.mit.edu", "VAX"},
                               [](Tuple) {}) == MR_SUCCESS &&
                 router->pending_writes() == 0;
  for (int i = 0; i < 60; ++i) {
    cluster.Tick();
    bool all = true;
    for (ReplicaServer* node : raw) {
      if (!node->crashed() && node != final_primary &&
          node->applied_seq() < final_primary->server().journal().last_seq()) {
        all = false;
      }
    }
    if (all) {
      break;
    }
  }
  observe_primaries();
  result.epochs_observed = epoch_owner.size();

  const std::string golden = BackupManager::DumpToString(final_primary->db());
  for (const std::string& name : acked) {
    if (golden.find(name) == std::string::npos) {
      ++result.lost_acked_writes;
    }
  }
  result.converged = drained;
  for (ReplicaServer* node : raw) {
    if (node->crashed() || node == final_primary) {
      continue;
    }
    if (BackupManager::DumpToString(node->db()) != golden ||
        node->stats().apply_failures != 0) {
      result.converged = false;
    }
  }
  return result;
}

void PrintFailover(const FailoverResult& r) {
  std::printf("  failover sweep               rounds=%d acked=%llu/%llu lost=%llu "
              "elections=%llu promotions=%llu epochs=%llu split_brain=%llu %s\n",
              r.rounds, static_cast<unsigned long long>(r.acked_writes),
              static_cast<unsigned long long>(r.write_attempts),
              static_cast<unsigned long long>(r.lost_acked_writes),
              static_cast<unsigned long long>(r.elections_started),
              static_cast<unsigned long long>(r.promotions),
              static_cast<unsigned long long>(r.epochs_observed),
              static_cast<unsigned long long>(r.split_brain_epochs),
              r.converged ? "converged" : "DIVERGED");
}

void WriteFailoverJson(std::FILE* f, const FailoverResult& r) {
  std::fprintf(f,
               "    {\"rounds\": %d, \"seed\": %llu, \"write_attempts\": %llu, "
               "\"acked_writes\": %llu, \"lost_acked_writes\": %llu, "
               "\"elections_started\": %llu, \"promotions\": %llu, "
               "\"step_downs\": %llu, \"epochs_observed\": %llu, "
               "\"split_brain_epochs\": %llu, \"unique_final_primary\": %s, "
               "\"converged\": %s}",
               r.rounds, static_cast<unsigned long long>(r.seed),
               static_cast<unsigned long long>(r.write_attempts),
               static_cast<unsigned long long>(r.acked_writes),
               static_cast<unsigned long long>(r.lost_acked_writes),
               static_cast<unsigned long long>(r.elections_started),
               static_cast<unsigned long long>(r.promotions),
               static_cast<unsigned long long>(r.step_downs),
               static_cast<unsigned long long>(r.epochs_observed),
               static_cast<unsigned long long>(r.split_brain_epochs),
               r.unique_final_primary ? "true" : "false",
               r.converged ? "true" : "false");
}

void PrintRun(const char* tag, const RunResult& r) {
  std::printf("  %-28s replicas=%d reads=%llu busiest=%llu speedup=%.2fx "
              "max_lag=%llu ryw=%llu/%llu redirects=%llu snapshots=%llu %s\n",
              tag, r.replicas, static_cast<unsigned long long>(r.reads),
              static_cast<unsigned long long>(r.busiest_reads), r.speedup,
              static_cast<unsigned long long>(r.max_lag),
              static_cast<unsigned long long>(r.ryw_checks - r.ryw_failures),
              static_cast<unsigned long long>(r.ryw_checks),
              static_cast<unsigned long long>(r.redirects),
              static_cast<unsigned long long>(r.snapshot_loads),
              r.converged ? "converged" : "DIVERGED");
}

void WriteRunJson(std::FILE* f, const RunResult& r, uint64_t seed, bool faulted) {
  std::fprintf(f,
               "    {\"replicas\": %d, \"rounds\": %d, \"seed\": %llu, "
               "\"faulted\": %s, \"reads\": %llu, \"writes\": %llu, "
               "\"write_failures\": %llu, \"busiest_server_reads\": %llu, "
               "\"read_speedup_x\": %.3f, \"max_lag\": %llu, "
               "\"ryw_checks\": %llu, \"ryw_failures\": %llu, "
               "\"redirects\": %llu, \"snapshot_loads\": %llu, "
               "\"apply_failures\": %llu, \"converged\": %s}",
               r.replicas, r.rounds, static_cast<unsigned long long>(seed),
               faulted ? "true" : "false", static_cast<unsigned long long>(r.reads),
               static_cast<unsigned long long>(r.writes),
               static_cast<unsigned long long>(r.write_failures),
               static_cast<unsigned long long>(r.busiest_reads), r.speedup,
               static_cast<unsigned long long>(r.max_lag),
               static_cast<unsigned long long>(r.ryw_checks),
               static_cast<unsigned long long>(r.ryw_failures),
               static_cast<unsigned long long>(r.redirects),
               static_cast<unsigned long long>(r.snapshot_loads),
               static_cast<unsigned long long>(r.apply_failures),
               r.converged ? "true" : "false");
}

// Runs the scaling sweep and the seeded faulty run, writes
// BENCH_replication.json, and returns whether the acceptance gates hold.
bool RunReplicationReport(const char* path) {
  std::printf("Journal-shipping read replication:\n");

  // Fault-free scaling sweep: how read throughput grows with replica count.
  ReplFaultSpec clean;  // all permille at 0
  std::vector<RunResult> scaling;
  for (int n : {0, 1, 2, 4}) {
    scaling.push_back(RunWorkload(n, clean, kRounds, kWritesPerRound,
                                  kExtraReadsPerRound));
    PrintRun(n == 0 ? "baseline (no replicas)" : "fault-free", scaling.back());
  }

  // The acceptance run: 4 replicas under the seeded fault plan.
  const ReplFaultSpec faults = SeededFaults();
  RunResult faulted = RunWorkload(4, faults, kRounds, kWritesPerRound,
                                  kExtraReadsPerRound);
  PrintRun("seeded faults", faulted);

  // The failover acceptance run: quorum writes + heartbeat elections on a
  // 3-node cluster under randomized partitions, flaps, and crashes.
  FailoverResult failover = RunFailoverSweep(1988, 25);
  PrintFailover(failover);

  const bool speedup_ok = faulted.speedup >= 3.0;
  const bool ryw_ok = faulted.ryw_failures == 0 && faulted.write_failures == 0;
  const bool converged_ok = faulted.converged && faulted.apply_failures == 0;
  // The sweep must actually exercise failover (acked writes and elections
  // both happened) for a zero-loss result to prove anything.
  const bool no_lost_ok =
      failover.lost_acked_writes == 0 && failover.acked_writes >= 10;
  const bool auto_failover_ok = failover.unique_final_primary &&
                                failover.converged && failover.promotions >= 1;
  const bool one_primary_ok = failover.split_brain_epochs == 0;
  if (!speedup_ok) {
    std::printf("FAIL: read speedup %.2fx under faults is below the 3x gate\n",
                faulted.speedup);
  }
  if (!ryw_ok) {
    std::printf("FAIL: %llu read-your-writes checks failed\n",
                static_cast<unsigned long long>(faulted.ryw_failures +
                                                faulted.write_failures));
  }
  if (!converged_ok) {
    std::printf("FAIL: replica dumps diverged from the primary after the run\n");
  }
  if (!no_lost_ok) {
    std::printf("FAIL: %llu acked write(s) lost in the failover sweep "
                "(%llu acked)\n",
                static_cast<unsigned long long>(failover.lost_acked_writes),
                static_cast<unsigned long long>(failover.acked_writes));
  }
  if (!auto_failover_ok) {
    std::printf("FAIL: failover sweep did not converge automatically\n");
  }
  if (!one_primary_ok) {
    std::printf("FAIL: split brain — %llu epoch(s) writable on two nodes\n",
                static_cast<unsigned long long>(failover.split_brain_epochs));
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("FAIL: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_replication\",\n");
  std::fprintf(f, "  \"scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    WriteRunJson(f, scaling[i], clean.seed, false);
    std::fprintf(f, "%s\n", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"faulted\": [\n");
  WriteRunJson(f, faulted, faults.seed, true);
  std::fprintf(f, "\n  ],\n  \"failover\": [\n");
  WriteFailoverJson(f, failover);
  std::fprintf(f, "\n  ],\n  \"gates\": [\n");
  std::fprintf(f,
               "    {\"name\": \"read_speedup_with_4_replicas_ge_3x\", "
               "\"value\": %.3f, \"pass\": %s},\n",
               faulted.speedup, speedup_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"read_your_writes_all_pass\", \"value\": %llu, "
               "\"pass\": %s},\n",
               static_cast<unsigned long long>(faulted.ryw_failures),
               ryw_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"replica_dumps_byte_identical\", \"value\": %d, "
               "\"pass\": %s},\n",
               faulted.replicas, converged_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"failover_zero_acked_writes_lost\", "
               "\"value\": %llu, \"pass\": %s},\n",
               static_cast<unsigned long long>(failover.lost_acked_writes),
               no_lost_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"failover_converges_automatically\", "
               "\"value\": %llu, \"pass\": %s},\n",
               static_cast<unsigned long long>(failover.promotions),
               auto_failover_ok ? "true" : "false");
  std::fprintf(f,
               "    {\"name\": \"one_primary_per_epoch\", \"value\": %llu, "
               "\"pass\": %s}\n",
               static_cast<unsigned long long>(failover.split_brain_epochs),
               one_primary_ok ? "true" : "false");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n\n", path);
  return speedup_ok && ryw_ok && converged_ok && no_lost_ok &&
         auto_failover_ok && one_primary_ok;
}

// --- microbenchmarks ---

// A read served by a replica, token already satisfied (the steady state).
void BM_ReplicaRead(benchmark::State& state) {
  static ReplSite* site = [] {
    auto* s = new ReplSite(1);
    s->router->Query("add_machine", {"bmread.mit.edu", "VAX"}, [](Tuple) {});
    s->raw[0]->CatchUp();
    return s;
  }();
  for (auto _ : state) {
    int32_t code =
        site->router->Query("get_machine", {"BMREAD.MIT.EDU"}, [](Tuple) {});
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_ReplicaRead);

// Shipping and applying one journal entry over the wire.
void BM_CatchUpPerEntry(benchmark::State& state) {
  static ReplSite* site = new ReplSite(1);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    site->router->Query("update_user_shell",
                        {"rbench", "/bin/b" + std::to_string(i++ % 7)}, [](Tuple) {});
    state.ResumeTiming();
    int32_t code = site->raw[0]->CatchUp();
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_CatchUpPerEntry);

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  // The report (and its acceptance gates) runs even under an unmatchable
  // --benchmark_filter, which is how scripts/check.sh smoke-tests it.
  bool ok = moira::RunReplicationReport("BENCH_replication.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
