// E9 — Figure 1's system structure, measured: the cost of the same operation
// at each layer boundary — direct query execution, the glue library, loopback
// RPC through the full server, and real TCP RPC — plus the raw protocol noop.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "src/client/client.h"
#include "src/net/tcp.h"
#include "src/server/server.h"

namespace moira {
namespace {

MoiraServer& SharedServer() {
  static MoiraServer* server = new MoiraServer(SmallSite().mc.get(),
                                               SmallSite().realm.get());
  return *server;
}

// Layer 0: query registry called directly (inside the server process).
void BM_Layer0_DirectRegistry(benchmark::State& state) {
  BenchSite& site = SmallSite();
  for (auto _ : state) {
    int count = 0;
    int32_t code = QueryRegistry::Instance().Execute(
        *site.mc, "root", "bench", "get_machine", {"SUOMI.MIT.EDU"},
        [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(code + count);
  }
}
BENCHMARK(BM_Layer0_DirectRegistry);

// Layer 1: the glue library (DirectClient), as the DCM uses.
void BM_Layer1_GlueLibrary(benchmark::State& state) {
  DirectClient client(SmallSite().mc.get(), "bench");
  for (auto _ : state) {
    int count = 0;
    int32_t code = client.Query("get_machine", {"SUOMI.MIT.EDU"},
                                [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(code + count);
  }
}
BENCHMARK(BM_Layer1_GlueLibrary);

// Layer 2: full RPC path (encode, server dispatch, decode) over loopback.
void BM_Layer2_LoopbackRpc(benchmark::State& state) {
  MrClient client([] { return std::make_unique<LoopbackChannel>(&SharedServer()); });
  client.Connect();
  for (auto _ : state) {
    int count = 0;
    int32_t code = client.Query("get_machine", {"SUOMI.MIT.EDU"},
                                [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(code + count);
  }
}
BENCHMARK(BM_Layer2_LoopbackRpc);

// The protocol noop at the same layer (paper: "useful for testing and
// profiling of the RPC layer and the server in general").
void BM_Layer2_LoopbackNoop(benchmark::State& state) {
  MrClient client([] { return std::make_unique<LoopbackChannel>(&SharedServer()); });
  client.Connect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Noop());
  }
}
BENCHMARK(BM_Layer2_LoopbackNoop);

// Layer 3: real TCP sockets through the poll(2)-multiplexed server.
class TcpFixture {
 public:
  TcpFixture() : tcp_server_(&SharedServer()) {
    ok_ = tcp_server_.Listen(0) == MR_SUCCESS;
    if (ok_) {
      pump_ = std::thread([this] {
        while (!stop_.load()) {
          tcp_server_.Poll(5);
        }
      });
    }
  }
  ~TcpFixture() {
    if (pump_.joinable()) {
      stop_.store(true);
      pump_.join();
    }
  }

  bool ok() const { return ok_; }
  uint16_t port() { return tcp_server_.port(); }

 private:
  TcpServer tcp_server_;
  std::thread pump_;
  std::atomic<bool> stop_{false};
  bool ok_ = false;
};

TcpFixture& Tcp() {
  static TcpFixture* fixture = new TcpFixture;
  return *fixture;
}

void BM_Layer3_TcpRpc(benchmark::State& state) {
  if (!Tcp().ok()) {
    state.SkipWithError("cannot listen on localhost");
    return;
  }
  MrClient client([]() -> std::unique_ptr<ClientChannel> {
    auto channel = std::make_unique<TcpChannel>();
    if (channel->Connect(Tcp().port()) != MR_SUCCESS) {
      return nullptr;
    }
    return channel;
  });
  if (client.Connect() != MR_SUCCESS) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    int count = 0;
    int32_t code = client.Query("get_machine", {"SUOMI.MIT.EDU"},
                                [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(code + count);
  }
}
BENCHMARK(BM_Layer3_TcpRpc);

void BM_Layer3_TcpNoop(benchmark::State& state) {
  if (!Tcp().ok()) {
    state.SkipWithError("cannot listen on localhost");
    return;
  }
  MrClient client([]() -> std::unique_ptr<ClientChannel> {
    auto channel = std::make_unique<TcpChannel>();
    if (channel->Connect(Tcp().port()) != MR_SUCCESS) {
      return nullptr;
    }
    return channel;
  });
  if (client.Connect() != MR_SUCCESS) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Noop());
  }
}
BENCHMARK(BM_Layer3_TcpNoop);

// Bulk retrieval across layers: where the streaming protocol pays off.
void BM_BulkRetrieval_Glue(benchmark::State& state) {
  DirectClient client(SmallSite().mc.get(), "bench");
  for (auto _ : state) {
    int count = 0;
    client.Query("get_all_active_logins", {}, [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BulkRetrieval_Glue);

void BM_BulkRetrieval_LoopbackRpc(benchmark::State& state) {
  MrClient client([] { return std::make_unique<LoopbackChannel>(&SharedServer()); });
  client.Connect();
  for (auto _ : state) {
    int count = 0;
    client.Query("get_all_active_logins", {}, [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BulkRetrieval_LoopbackRpc);

}  // namespace
}  // namespace moira

BENCHMARK_MAIN();
