// E2 — The incremental-generation claim of paper section 5.1.E: "the above
// files will only be generated and propagated if the data has changed during
// the time interval... there is no effect on system resources unless the
// information relevant to hesiod has changed".
//
// Measures a full DCM pass with (a) no change since the last pass, (b) one
// relevant change, (c) one irrelevant change, (d) the incremental check
// disabled (every pass regenerates), at paper scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace moira {
namespace {

// Each scenario uses its own site so the states don't interfere.
BenchSite& SiteFor(const std::string& name) {
  static std::map<std::string, std::unique_ptr<BenchSite>>* sites =
      new std::map<std::string, std::unique_ptr<BenchSite>>;
  auto it = sites->find(name);
  if (it == sites->end()) {
    it = sites->emplace(name, std::make_unique<BenchSite>(SiteSpec{})).first;
    it->second->dcm->RunOnce();  // prime: everything generated and propagated
  }
  return *it->second;
}

void BM_DcmPassNoChange(benchmark::State& state) {
  BenchSite& site = SiteFor("nochange");
  for (auto _ : state) {
    site.clock.Advance(25 * kSecondsPerHour);  // everything due, nothing changed
    DcmRunSummary summary = site.dcm->RunOnce();
    benchmark::DoNotOptimize(summary.services_no_change);
  }
}
BENCHMARK(BM_DcmPassNoChange)->Unit(benchmark::kMillisecond);

void BM_DcmPassOneRelevantChange(benchmark::State& state) {
  BenchSite& site = SiteFor("relevant");
  const std::string& login = site.builder->active_logins()[0];
  int flip = 0;
  for (auto _ : state) {
    site.clock.Advance(25 * kSecondsPerHour);
    // One user's shell changes: every service that extracts users rebuilds.
    QueryRegistry::Instance().Execute(
        *site.mc, "root", "bench", "update_user_shell",
        {login, flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}, [](Tuple) {});
    DcmRunSummary summary = site.dcm->RunOnce();
    benchmark::DoNotOptimize(summary.services_generated);
  }
}
BENCHMARK(BM_DcmPassOneRelevantChange)->Unit(benchmark::kMillisecond);

void BM_DcmPassIrrelevantChange(benchmark::State& state) {
  BenchSite& site = SiteFor("irrelevant");
  int counter = 0;
  for (auto _ : state) {
    site.clock.Advance(7 * kSecondsPerHour);  // only HESIOD due
    // Zephyr ACL changes are irrelevant to the hesiod extract.
    QueryRegistry::Instance().Execute(
        *site.mc, "root", "bench", "update_zephyr_class",
        {"zclass-1", "zclass-1", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
         "NONE"},
        [](Tuple) {});
    ++counter;
    DcmRunSummary summary = site.dcm->RunOnce();
    benchmark::DoNotOptimize(summary.services_no_change);
  }
}
BENCHMARK(BM_DcmPassIrrelevantChange)->Unit(benchmark::kMillisecond);

// Ablation: what every pass would cost without the dfgen/modtime comparison.
void BM_DcmPassAlwaysRegenerate(benchmark::State& state) {
  BenchSite& site = SiteFor("always");
  const std::string& login = site.builder->active_logins()[1];
  int flip = 0;
  for (auto _ : state) {
    site.clock.Advance(25 * kSecondsPerHour);
    // Touch users AND zephyr so all four services rebuild and repropagate.
    QueryRegistry::Instance().Execute(
        *site.mc, "root", "bench", "update_user_shell",
        {login, flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}, [](Tuple) {});
    QueryRegistry::Instance().Execute(
        *site.mc, "root", "bench", "update_zephyr_class",
        {"zclass-2", "zclass-2", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
         "NONE"},
        [](Tuple) {});
    DcmRunSummary summary = site.dcm->RunOnce();
    benchmark::DoNotOptimize(summary.bytes_propagated);
  }
}
BENCHMARK(BM_DcmPassAlwaysRegenerate)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  BenchSite site{SiteSpec{}};
  DcmRunSummary first = site.dcm->RunOnce();
  site.clock.Advance(25 * kSecondsPerHour);
  DcmRunSummary clean = site.dcm->RunOnce();
  std::printf(
      "E2 incremental DCM (paper 5.1.E):\n"
      "  first pass:   %d generated, %d files, %d propagations, %lld bytes\n"
      "  clean pass:   %d generated, %d no-change, %d propagations, %lld bytes\n\n",
      first.services_generated, first.files_generated, first.propagations,
      static_cast<long long>(first.bytes_propagated), clean.services_generated,
      clean.services_no_change, clean.propagations,
      static_cast<long long>(clean.bytes_propagated));
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
