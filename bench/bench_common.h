// Shared fixture for the Moira benchmark harness: a paper-scale synthetic
// site (DESIGN.md experiment index) built once per process.
#ifndef MOIRA_BENCH_BENCH_COMMON_H_
#define MOIRA_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/dcm/dcm.h"
#include "src/krb/kerberos.h"
#include "src/sim/population.h"
#include "src/update/sim_host.h"
#include "src/zephyrd/zephyr_bus.h"

namespace moira {

// One fully-provisioned site: database, KDC, hosts, DCM.
struct BenchSite {
  explicit BenchSite(const SiteSpec& spec) : clock(568000000) {
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get());
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
    realm = std::make_unique<KerberosRealm>(&clock);
    builder = std::make_unique<SiteBuilder>(mc.get(), realm.get());
    builder->Build(spec);
    zephyr = std::make_unique<ZephyrBus>(&clock);
    hosts = CreateSimHosts(*mc, realm.get(), &directory);
    dcm = std::make_unique<Dcm>(mc.get(), realm.get(), zephyr.get(), &directory);
    ConfigureStandardServices(dcm.get());
    clock.Advance(kSecondsPerDay);
  }

  SimulatedClock clock;
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;
  std::unique_ptr<KerberosRealm> realm;
  std::unique_ptr<SiteBuilder> builder;
  std::unique_ptr<ZephyrBus> zephyr;
  HostDirectory directory;
  std::vector<std::unique_ptr<SimHost>> hosts;
  std::unique_ptr<Dcm> dcm;
};

// The paper-scale site (10,000 users, 20 NFS servers), built lazily once.
inline BenchSite& PaperSite() {
  static BenchSite* site = new BenchSite(SiteSpec{});
  return *site;
}

// A small site for latency microbenchmarks.
inline BenchSite& SmallSite() {
  static BenchSite* site = new BenchSite(TestSiteSpec());
  return *site;
}

}  // namespace moira

#endif  // MOIRA_BENCH_BENCH_COMMON_H_
