// E5 — The backup system (paper section 5.2.2): "mrbackup copies each
// relation of the current Moira database into an ASCII file ... the ascii
// files take up about 3.2 MB of space."
//
// Reports the full-database ASCII dump size at paper scale against the
// paper's 3.2 MB, and benchmarks dump, restore, and the nightly rotation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/backup/backup.h"

namespace moira {
namespace {

namespace fs = std::filesystem;

fs::path BenchDir(const char* leaf) {
  fs::path dir = fs::temp_directory_path() / "moira-bench-backup" / leaf;
  fs::create_directories(dir);
  return dir;
}

void PrintDumpSize() {
  BenchSite& site = PaperSite();
  int64_t bytes = BackupManager::Dump(*site.db, BenchDir("report"));
  std::printf("E5 mrbackup at paper scale (%zu users):\n", site.mc->users()->LiveCount());
  std::printf("  paper:    ~3.2 MB of ASCII files\n");
  std::printf("  measured: %.2f MB (%lld bytes)\n\n", static_cast<double>(bytes) / 1e6,
              static_cast<long long>(bytes));
}

void BM_MrBackupDump(benchmark::State& state) {
  BenchSite& site = PaperSite();
  fs::path dir = BenchDir("dump");
  int64_t bytes = 0;
  for (auto _ : state) {
    bytes = BackupManager::Dump(*site.db, dir);
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["MB"] = static_cast<double>(bytes) / 1e6;
}
BENCHMARK(BM_MrBackupDump)->Unit(benchmark::kMillisecond);

void BM_MrRestore(benchmark::State& state) {
  BenchSite& site = PaperSite();
  fs::path dir = BenchDir("restore");
  BackupManager::Dump(*site.db, dir);
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedClock clock(0);
    Database fresh(&clock);
    CreateMoiraSchema(&fresh);
    state.ResumeTiming();
    int32_t code = BackupManager::Restore(&fresh, dir);
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_MrRestore)->Unit(benchmark::kMillisecond);

void BM_NightlyRotation(benchmark::State& state) {
  BenchSite& site = PaperSite();
  fs::path root = BenchDir("nightly");
  for (auto _ : state) {
    int64_t bytes = BackupManager::RotateAndDump(*site.db, root);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_NightlyRotation)->Unit(benchmark::kMillisecond);

void BM_JournalReplay(benchmark::State& state) {
  // Replaying a day of changes (~1000 journalled updates) into a restored
  // database.
  BenchSite site{TestSiteSpec()};
  std::vector<JournalEntry> entries;
  for (int i = 0; i < 1000; ++i) {
    const std::string& login =
        site.builder->active_logins()[i % site.builder->active_logins().size()];
    entries.push_back(JournalEntry{0, site.clock.Now(), "root", "bench",
                                   "update_user_shell",
                                   {login, "/bin/replay" + std::to_string(i % 7)}});
  }
  for (auto _ : state) {
    int replayed = BackupManager::ReplayJournal(site.mc.get(), entries);
    benchmark::DoNotOptimize(replayed);
  }
}
BENCHMARK(BM_JournalReplay)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintDumpSize();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
