// E1 — Reproduces the paper's File Organization table (section 5.1.G): per
// service, the generated files, their sizes, file counts, propagation counts,
// and update intervals, with the paper's 1988 numbers alongside.  Also
// benchmarks each generator at paper scale.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "src/dcm/generators.h"

namespace moira {
namespace {

struct PaperRow {
  const char* service;
  const char* file;
  long paper_size;
  int paper_number;
  int paper_propagations;
  const char* interval;
};

// The table exactly as printed in section 5.1.G.
constexpr PaperRow kPaperRows[] = {
    {"Hesiod", "cluster.db", 53656, 1, 1, "6 hours"},
    {"Hesiod", "filsys.db", 541482, 1, 1, "6 hours"},
    {"Hesiod", "gid.db", 341012, 1, 1, "6 hours"},
    {"Hesiod", "group.db", 453636, 1, 1, "6 hours"},
    {"Hesiod", "grplist.db", 357662, 1, 1, "6 hours"},
    {"Hesiod", "passwd.db", 712446, 1, 1, "6 hours"},
    {"Hesiod", "pobox.db", 415688, 1, 1, "6 hours"},
    {"Hesiod", "printcap.db", 4318, 1, 1, "6 hours"},
    {"Hesiod", "service.db", 9052, 1, 1, "6 hours"},
    {"Hesiod", "sloc.db", 3734, 1, 1, "6 hours"},
    {"Hesiod", "uid.db", 256381, 1, 1, "6 hours"},
    {"NFS", "<partition>.dirs", 2784, 20, 20, "12 hours"},
    {"NFS", "<partition>.quotas", 1205, 20, 20, "12 hours"},
    {"NFS", "credentials", 152648, 1, 20, "12 hours"},
    {"Mail", "/usr/lib/aliases", 445000, 1, 1, "24 hours"},
    {"Zephyr", "class.acl", 100, 6, 18, "24 hours"},
};

struct MeasuredRow {
  long size = 0;  // representative (average for per-host) size in bytes
  int number = 0;
  int propagations = 0;
};

void PrintTable() {
  BenchSite& site = PaperSite();
  std::printf("building paper-scale site: %zu users (%zu active)...\n",
              site.mc->users()->LiveCount(), site.builder->active_logins().size());
  DcmRunSummary summary = site.dcm->RunOnce();
  std::printf("DCM full cycle: %d services, %d distinct files, %d propagations, "
              "%lld bytes shipped\n\n",
              summary.services_generated, summary.files_generated, summary.propagations,
              static_cast<long long>(summary.bytes_propagated));

  const int nfs_hosts = static_cast<int>(site.builder->nfs_server_names().size());
  const int zephyr_hosts = static_cast<int>(site.builder->zephyr_server_names().size());

  std::map<std::string, MeasuredRow> measured;
  const GeneratorResult* hesiod = site.dcm->StagedPayload("HESIOD");
  for (const auto& [name, contents] : hesiod->common.members()) {
    measured[name] = {static_cast<long>(contents.size()), 1, 1};
  }
  const GeneratorResult* nfs = site.dcm->StagedPayload("NFS");
  long dirs_total = 0;
  long quotas_total = 0;
  long credentials_size = 0;
  for (const auto& [host, archive] : nfs->per_host) {
    for (const auto& [name, contents] : archive.members()) {
      if (name.ends_with(".dirs")) {
        dirs_total += static_cast<long>(contents.size());
      } else if (name.ends_with(".quotas")) {
        quotas_total += static_cast<long>(contents.size());
      } else if (name == "credentials") {
        credentials_size = static_cast<long>(contents.size());
      }
    }
  }
  measured["<partition>.dirs"] = {dirs_total / nfs_hosts, nfs_hosts, nfs_hosts};
  measured["<partition>.quotas"] = {quotas_total / nfs_hosts, nfs_hosts, nfs_hosts};
  measured["credentials"] = {credentials_size, 1, nfs_hosts};
  const GeneratorResult* mail = site.dcm->StagedPayload("SMTP");
  measured["/usr/lib/aliases"] = {
      static_cast<long>(mail->common.Find("aliases")->size()), 1, 1};
  const GeneratorResult* zephyr = site.dcm->StagedPayload("ZEPHYR");
  long acl_total = 0;
  int acl_count = 0;
  for (const auto& [name, contents] : zephyr->common.members()) {
    acl_total += static_cast<long>(contents.size());
    ++acl_count;
  }
  measured["class.acl"] = {acl_count > 0 ? acl_total / acl_count : 0, acl_count,
                           acl_count * zephyr_hosts};

  std::printf("%-8s %-20s %12s %12s %8s %8s %8s %8s %10s\n", "Service", "File",
              "paper-size", "ours-size", "paper-N", "ours-N", "paper-P", "ours-P",
              "Interval");
  int paper_files = 0;
  int paper_props = 0;
  int our_files = 0;
  int our_props = 0;
  for (const PaperRow& row : kPaperRows) {
    std::string key = row.file;
    if (key == "filsys.db") {
      key = "filsys.db";
    }
    const MeasuredRow& m = measured[key];
    std::printf("%-8s %-20s %12ld %12ld %8d %8d %8d %8d %10s\n", row.service, row.file,
                row.paper_size, m.size, row.paper_number, m.number,
                row.paper_propagations, m.propagations, row.interval);
    paper_files += row.paper_number;
    paper_props += row.paper_propagations;
    our_files += m.number;
    our_props += m.propagations;
  }
  // The mailhub /etc/passwd of section 5.8.2 is generated too but the paper's
  // table omits it; report it separately.
  std::printf("%-8s %-20s %12s %12ld %8s %8d %8s %8d %10s\n", "Mail", "/etc/passwd (5.8.2)",
              "-", static_cast<long>(mail->common.Find("passwd")->size()), "-", 1, "-", 1,
              "24 hours");
  std::printf("%-8s %-20s %12s %12s %8d %8d %8d %8d\n\n", "TOTAL", "", "", "",
              paper_files, our_files, paper_props, our_props);
  std::printf("paper TOTAL: 59 files, 90 propagations\n\n");
}

void BM_GenerateHesiod(benchmark::State& state) {
  BenchSite& site = PaperSite();
  for (auto _ : state) {
    GeneratorResult result;
    GenerateHesiod(*site.mc, &result);
    benchmark::DoNotOptimize(result.common.ContentBytes());
  }
}
BENCHMARK(BM_GenerateHesiod)->Unit(benchmark::kMillisecond);

void BM_GenerateNfs(benchmark::State& state) {
  BenchSite& site = PaperSite();
  for (auto _ : state) {
    GeneratorResult result;
    GenerateNfs(*site.mc, &result);
    benchmark::DoNotOptimize(result.per_host.size());
  }
}
BENCHMARK(BM_GenerateNfs)->Unit(benchmark::kMillisecond);

void BM_GenerateMail(benchmark::State& state) {
  BenchSite& site = PaperSite();
  for (auto _ : state) {
    GeneratorResult result;
    GenerateMail(*site.mc, &result);
    benchmark::DoNotOptimize(result.common.ContentBytes());
  }
}
BENCHMARK(BM_GenerateMail)->Unit(benchmark::kMillisecond);

void BM_GenerateZephyr(benchmark::State& state) {
  BenchSite& site = PaperSite();
  for (auto _ : state) {
    GeneratorResult result;
    GenerateZephyrAcls(*site.mc, &result);
    benchmark::DoNotOptimize(result.common.ContentBytes());
  }
}
BENCHMARK(BM_GenerateZephyr)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
