// E3 — Persistent backend vs athenareg's per-connection DBMS startup (paper
// section 5.4): "One of the limiting factors for Athenareg ... is the time it
// takes to start up the Ingres back end subprocess ... for every client
// connection.  The Moira server will do this only once."
//
// Measures connect + one query + disconnect with the Moira design (no
// per-connection cost) against the athenareg model (simulated backend spawn
// on every connection) across a sweep of spawn costs.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/client/client.h"
#include "src/server/server.h"

namespace moira {
namespace {

// One synthetic-work unit approximating the cost scale of forking and
// initializing a 1988 Ingres backend relative to a query.
constexpr int kSpawnCostUnits = 200000;

void RunSession(MoiraServer* server) {
  MrClient client([server] { return std::make_unique<LoopbackChannel>(server); });
  client.Connect();
  int count = 0;
  client.Query("get_machine", {"SUOMI.MIT.EDU"}, [&](Tuple) { ++count; });
  client.Disconnect();
  benchmark::DoNotOptimize(count);
}

void BM_MoiraPersistentBackend(benchmark::State& state) {
  BenchSite& site = SmallSite();
  MoiraServer server(site.mc.get(), site.realm.get());
  for (auto _ : state) {
    RunSession(&server);
  }
}
BENCHMARK(BM_MoiraPersistentBackend);

void BM_AthenaregSpawnPerConnection(benchmark::State& state) {
  BenchSite& site = SmallSite();
  ServerOptions options;
  options.simulated_backend_spawn_cost = static_cast<int>(state.range(0));
  MoiraServer server(site.mc.get(), site.realm.get(), options);
  for (auto _ : state) {
    RunSession(&server);
  }
}
BENCHMARK(BM_AthenaregSpawnPerConnection)
    ->Arg(kSpawnCostUnits / 10)
    ->Arg(kSpawnCostUnits)
    ->Arg(kSpawnCostUnits * 10);

// The steady-state contrast: one connection issuing many queries is identical
// under both designs — the saving is purely per-connection.
void BM_QueriesOnWarmConnection(benchmark::State& state) {
  BenchSite& site = SmallSite();
  MoiraServer server(site.mc.get(), site.realm.get());
  MrClient client([&server] { return std::make_unique<LoopbackChannel>(&server); });
  client.Connect();
  for (auto _ : state) {
    int count = 0;
    client.Query("get_machine", {"SUOMI.MIT.EDU"}, [&](Tuple) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_QueriesOnWarmConnection);

}  // namespace
}  // namespace moira

BENCHMARK_MAIN();
