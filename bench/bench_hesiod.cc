// E8 — Hesiod service (paper section 5.8.2): the server loads the Moira-
// generated .db files into memory at startup and answers lookups from them.
// Benchmarks the load (the restart cost the install script pays) and steady-
// state lookups, including CNAME chases, at paper scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/dcm/generators.h"
#include "src/hesiod/hesiod.h"

namespace moira {
namespace {

std::vector<std::string>& PaperDbTexts() {
  static std::vector<std::string>* texts = [] {
    auto* out = new std::vector<std::string>;
    GeneratorResult result;
    GenerateHesiod(*PaperSite().mc, &result);
    for (const auto& [name, contents] : result.common.members()) {
      out->push_back(contents);
    }
    return out;
  }();
  return *texts;
}

HesiodServer& LoadedServer() {
  static HesiodServer* server = [] {
    auto* s = new HesiodServer;
    s->Reload(PaperDbTexts());
    return s;
  }();
  return *server;
}

void BM_HesiodReload(benchmark::State& state) {
  std::vector<std::string>& texts = PaperDbTexts();
  HesiodServer server;
  for (auto _ : state) {
    int loaded = server.Reload(texts);
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["records"] = static_cast<double>(server.record_count());
}
BENCHMARK(BM_HesiodReload)->Unit(benchmark::kMillisecond);

void BM_HesiodPasswdLookup(benchmark::State& state) {
  HesiodServer& server = LoadedServer();
  const std::vector<std::string>& logins = PaperSite().builder->active_logins();
  SplitMix64 rng(7);
  for (auto _ : state) {
    const std::string& login = logins[rng.Below(logins.size())];
    benchmark::DoNotOptimize(server.Resolve(login, "passwd"));
  }
}
BENCHMARK(BM_HesiodPasswdLookup);

void BM_HesiodUidCnameChase(benchmark::State& state) {
  // uid lookups resolve through a CNAME to the passwd record.
  HesiodServer& server = LoadedServer();
  SplitMix64 rng(11);
  for (auto _ : state) {
    std::string uid = std::to_string(6500 + rng.Below(7000));
    benchmark::DoNotOptimize(server.Resolve(uid, "uid"));
  }
}
BENCHMARK(BM_HesiodUidCnameChase);

void BM_HesiodMissLookup(benchmark::State& state) {
  HesiodServer& server = LoadedServer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Resolve("no-such-user", "passwd"));
  }
}
BENCHMARK(BM_HesiodMissLookup);

void BM_HesiodClusterLookup(benchmark::State& state) {
  HesiodServer& server = LoadedServer();
  SplitMix64 rng(13);
  for (auto _ : state) {
    std::string machine = "W" + std::to_string(1 + rng.Below(120)) + ".MIT.EDU";
    benchmark::DoNotOptimize(server.Resolve(machine, "cluster"));
  }
}
BENCHMARK(BM_HesiodClusterLookup);

void PrintReport() {
  HesiodServer& server = LoadedServer();
  std::printf("E8 hesiod at paper scale: %zu records loaded from 11 .db files\n\n",
              server.record_count());
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
