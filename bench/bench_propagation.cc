// E6 — The Moira-to-server update protocol under load and failure (paper
// section 5.9): a full propagation cycle of 59 files / 90 propagations, the
// per-host update cost, retry behaviour under a crash-rate sweep, and the
// resilience-layer report (flaky-fleet convergence with the retry/breaker
// layer on vs off, and quarantine economics for a dead host), which lands in
// BENCH_propagation.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/update/update_client.h"

namespace moira {
namespace {

// Full cycle: regenerate everything and push to all 27 server hosts.
void BM_FullPropagationCycle(benchmark::State& state) {
  static BenchSite* site = new BenchSite(SiteSpec{});
  const std::string& login = site->builder->active_logins()[0];
  int flip = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    site->clock.Advance(25 * kSecondsPerHour);
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "update_user_shell",
        {login, flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}, [](Tuple) {});
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "update_zephyr_class",
        {"zclass-2", "zclass-2", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
         "NONE"},
        [](Tuple) {});
    DcmRunSummary summary = site->dcm->RunOnce();
    bytes = summary.bytes_propagated;
    benchmark::DoNotOptimize(summary.hosts_updated);
  }
  state.counters["bytes/cycle"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FullPropagationCycle)->Unit(benchmark::kMillisecond);

// Single-host update: the three-phase protocol against one simulated server.
void BM_SingleHostUpdate(benchmark::State& state) {
  BenchSite& site = PaperSite();
  SimHost* host = site.directory.Find(site.builder->nfs_server_names()[0]);
  UpdateClient client(site.realm.get(), kDcmPrincipal, "dcm-service-password");
  Archive archive;
  archive.Add("credentials", std::string(static_cast<size_t>(state.range(0)), 'x'));
  std::string payload = archive.Serialize();
  for (auto _ : state) {
    UpdateOutcome outcome =
        client.Update(host, "/tmp/bench.out", payload, "syncdir /site/bench\n");
    benchmark::DoNotOptimize(outcome.code);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_SingleHostUpdate)->Arg(1024)->Arg(150 * 1024)->Arg(1024 * 1024);

// Crash-rate sweep: fraction of hosts failing softly per mille; the DCM
// keeps retrying until everyone is caught up.  Reports passes needed.
void BM_PropagationWithFailures(benchmark::State& state) {
  int per_mille = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchSite site{TestSiteSpec()};
    SplitMix64 rng(42);
    state.ResumeTiming();
    int passes = 0;
    int total_soft = 0;
    while (true) {
      for (auto& host : site.hosts) {
        if (rng.Below(1000) < static_cast<uint64_t>(per_mille)) {
          host->SetFailMode(HostFailMode::kRefuseConnection);
        }
      }
      DcmRunSummary summary = site.dcm->RunOnce();
      ++passes;
      total_soft += summary.host_soft_failures;
      if (summary.host_soft_failures == 0 && summary.hosts_updated >= 0 && passes > 0 &&
          summary.host_soft_failures + summary.host_hard_failures == 0) {
        break;
      }
      site.clock.Advance(15 * kSecondsPerMinute);  // the paper's retry interval
      if (passes > 50) {
        break;
      }
    }
    state.counters["passes"] = passes;
    state.counters["soft_failures"] = total_soft;
  }
}
BENCHMARK(BM_PropagationWithFailures)
    ->Arg(0)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Resilience report: deterministic flaky-fleet convergence and quarantine
// economics, written to BENCH_propagation.json.

struct ConvergenceSample {
  const char* config;   // "retry+breaker" or "baseline"
  int flaky_permille;
  uint64_t seed;
  int hosts;
  int passes;           // DCM passes until a fully clean pass (capped at 60)
  bool converged;
  int soft_failures;    // total across the run
  int host_retries;     // in-pass retries beyond the first attempt
};

struct QuarantineSample {
  const char* config;
  int passes;
  int attempts_on_down_host;  // connection attempts the dead host received
  int breaker_opens;
  int breaker_skips;          // attempts saved by the open breaker
  int probe_failures;
};

// A ~20-host fleet: 1 hesiod + 15 NFS + mail hub + 3 zephyr + 2 POP servers.
SiteSpec FleetSpec() {
  SiteSpec spec = TestSiteSpec();
  spec.nfs_servers = 15;
  return spec;
}

ConvergenceSample RunConvergence(bool resilient, int flaky_permille, uint64_t seed) {
  BenchSite site{FleetSpec()};
  DcmResilienceConfig config;
  if (resilient) {
    config.retry.max_attempts = 3;  // outlasts the plan's 2 flaky refusals
    config.retry.initial_backoff = 30;
    config.retry.jitter_permille = 200;
    config.retry.seed = seed;
  } else {
    config.enabled = false;  // the paper's one-attempt-per-pass behaviour
  }
  site.dcm->set_resilience(config);
  site.dcm->update_client().set_sleep_fn(
      [&site](UnixTime s) { site.clock.Advance(s); });
  FaultPlanSpec fault;
  fault.seed = seed;
  fault.flaky_permille = flaky_permille;
  fault.flaky_fail_count = 2;
  FaultPlan plan(fault);
  ConvergenceSample sample{resilient ? "retry+breaker" : "baseline",
                           flaky_permille,
                           seed,
                           static_cast<int>(site.hosts.size()),
                           0,
                           false,
                           0,
                           0};
  while (sample.passes < 60) {
    // The draw depends only on (seed, pass, host index): both configs replay
    // the identical fault schedule no matter how many passes each needs.
    plan.ArmPass(site.hosts, sample.passes);
    DcmRunSummary summary = site.dcm->RunOnce();
    ++sample.passes;
    sample.soft_failures += summary.host_soft_failures;
    sample.host_retries += summary.host_retries;
    if (summary.host_soft_failures == 0 && summary.host_hard_failures == 0 &&
        summary.breaker_skips == 0) {
      sample.converged = true;
      break;
    }
    site.clock.Advance(15 * kSecondsPerMinute);  // the paper's retry interval
  }
  return sample;
}

QuarantineSample RunQuarantine(bool breaker_on, int passes) {
  BenchSite site{FleetSpec()};
  DcmResilienceConfig config;
  config.enabled = breaker_on;
  config.breaker_threshold = 3;
  config.breaker_cooldown = 45 * kSecondsPerMinute;
  site.dcm->set_resilience(config);
  SimHost* down = site.directory.Find(site.builder->nfs_server_names()[0]);
  down->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);  // dead for good
  QuarantineSample sample{breaker_on ? "retry+breaker" : "baseline", passes, 0, 0, 0, 0};
  for (int pass = 0; pass < passes; ++pass) {
    DcmRunSummary summary = site.dcm->RunOnce();
    sample.breaker_opens += summary.breaker_opens;
    sample.breaker_skips += summary.breaker_skips;
    sample.probe_failures += summary.probe_failures;
    site.clock.Advance(15 * kSecondsPerMinute);
  }
  sample.attempts_on_down_host = down->connect_attempts();
  return sample;
}

// Runs the sweep, writes BENCH_propagation.json, prints a summary.  Returns
// false if the resilient configuration fails its acceptance bar (convergence,
// strictly fewer passes than baseline, quarantine saving attempts), which
// scripts/check.sh --fault-smoke turns into a build failure.
bool RunResilienceReport(const char* path) {
  constexpr uint64_t kSeed = 1988;
  std::vector<ConvergenceSample> convergence;
  for (int flaky_permille : {100, 300, 500}) {
    convergence.push_back(RunConvergence(/*resilient=*/false, flaky_permille, kSeed));
    convergence.push_back(RunConvergence(/*resilient=*/true, flaky_permille, kSeed));
  }
  std::vector<QuarantineSample> quarantine;
  quarantine.push_back(RunQuarantine(/*breaker_on=*/false, 12));
  quarantine.push_back(RunQuarantine(/*breaker_on=*/true, 12));

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_propagation_resilience\",\n"
                  "  \"convergence\": [\n");
  for (size_t i = 0; i < convergence.size(); ++i) {
    const ConvergenceSample& s = convergence[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"flaky_permille\": %d, \"seed\": %llu, "
                 "\"hosts\": %d, \"passes\": %d, \"converged\": %s, "
                 "\"soft_failures\": %d, \"host_retries\": %d}%s\n",
                 s.config, s.flaky_permille, static_cast<unsigned long long>(s.seed),
                 s.hosts, s.passes, s.converged ? "true" : "false", s.soft_failures,
                 s.host_retries, i + 1 < convergence.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"quarantine\": [\n");
  for (size_t i = 0; i < quarantine.size(); ++i) {
    const QuarantineSample& s = quarantine[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"passes\": %d, "
                 "\"attempts_on_down_host\": %d, \"breaker_opens\": %d, "
                 "\"breaker_skips\": %d, \"probe_failures\": %d}%s\n",
                 s.config, s.passes, s.attempts_on_down_host, s.breaker_opens,
                 s.breaker_skips, s.probe_failures,
                 i + 1 < quarantine.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  bool ok = true;
  std::printf("E6 resilience: flaky-fleet convergence (%d hosts, seed %llu)\n",
              convergence[0].hosts, static_cast<unsigned long long>(kSeed));
  std::printf("  %-8s %-14s %7s %10s %6s %8s\n", "flaky", "config", "passes",
              "converged", "soft", "retries");
  for (size_t i = 0; i + 1 < convergence.size(); i += 2) {
    const ConvergenceSample& base = convergence[i];
    const ConvergenceSample& res = convergence[i + 1];
    for (const ConvergenceSample* s : {&base, &res}) {
      std::printf("  %3d/1000 %-14s %7d %10s %6d %8d\n", s->flaky_permille, s->config,
                  s->passes, s->converged ? "yes" : "NO", s->soft_failures,
                  s->host_retries);
    }
    if (!res.converged || !base.converged || res.passes >= base.passes) {
      std::printf("  ^^ FAIL: resilient config must converge in strictly fewer "
                  "passes\n");
      ok = false;
    }
  }
  const QuarantineSample& qbase = quarantine[0];
  const QuarantineSample& qres = quarantine[1];
  std::printf("  quarantine (dead host, %d passes): baseline %d attempts, "
              "breaker %d attempts (%d skipped, %d opens, %d failed probes)\n",
              qbase.passes, qbase.attempts_on_down_host, qres.attempts_on_down_host,
              qres.breaker_skips, qres.breaker_opens, qres.probe_failures);
  if (qres.breaker_skips <= 0 ||
      qres.attempts_on_down_host >= qbase.attempts_on_down_host) {
    std::printf("  ^^ FAIL: an open breaker must stop consuming update attempts\n");
    ok = false;
  }
  std::printf("wrote %s\n\n", path);
  return ok;
}

void PrintCycleReport() {
  BenchSite site{SiteSpec{}};
  DcmRunSummary summary = site.dcm->RunOnce();
  std::printf(
      "E6 full first propagation at paper scale:\n"
      "  %d hosts updated, %d propagations, %lld bytes, %d soft / %d hard failures\n\n",
      summary.hosts_updated, summary.propagations,
      static_cast<long long>(summary.bytes_propagated), summary.host_soft_failures,
      summary.host_hard_failures);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintCycleReport();
  bool resilience_ok = moira::RunResilienceReport("BENCH_propagation.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return resilience_ok ? 0 : 1;
}
