// E6 — The Moira-to-server update protocol under load and failure (paper
// section 5.9): a full propagation cycle of 59 files / 90 propagations, the
// per-host update cost, and retry behaviour under a crash-rate sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/update/update_client.h"

namespace moira {
namespace {

// Full cycle: regenerate everything and push to all 27 server hosts.
void BM_FullPropagationCycle(benchmark::State& state) {
  static BenchSite* site = new BenchSite(SiteSpec{});
  const std::string& login = site->builder->active_logins()[0];
  int flip = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    site->clock.Advance(25 * kSecondsPerHour);
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "update_user_shell",
        {login, flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}, [](Tuple) {});
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "update_zephyr_class",
        {"zclass-2", "zclass-2", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
         "NONE"},
        [](Tuple) {});
    DcmRunSummary summary = site->dcm->RunOnce();
    bytes = summary.bytes_propagated;
    benchmark::DoNotOptimize(summary.hosts_updated);
  }
  state.counters["bytes/cycle"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FullPropagationCycle)->Unit(benchmark::kMillisecond);

// Single-host update: the three-phase protocol against one simulated server.
void BM_SingleHostUpdate(benchmark::State& state) {
  BenchSite& site = PaperSite();
  SimHost* host = site.directory.Find(site.builder->nfs_server_names()[0]);
  UpdateClient client(site.realm.get(), kDcmPrincipal, "dcm-service-password");
  Archive archive;
  archive.Add("credentials", std::string(static_cast<size_t>(state.range(0)), 'x'));
  std::string payload = archive.Serialize();
  for (auto _ : state) {
    UpdateOutcome outcome =
        client.Update(host, "/tmp/bench.out", payload, "syncdir /site/bench\n");
    benchmark::DoNotOptimize(outcome.code);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_SingleHostUpdate)->Arg(1024)->Arg(150 * 1024)->Arg(1024 * 1024);

// Crash-rate sweep: fraction of hosts failing softly per mille; the DCM
// keeps retrying until everyone is caught up.  Reports passes needed.
void BM_PropagationWithFailures(benchmark::State& state) {
  int per_mille = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchSite site{TestSiteSpec()};
    SplitMix64 rng(42);
    state.ResumeTiming();
    int passes = 0;
    int total_soft = 0;
    while (true) {
      for (auto& host : site.hosts) {
        if (rng.Below(1000) < static_cast<uint64_t>(per_mille)) {
          host->SetFailMode(HostFailMode::kRefuseConnection);
        }
      }
      DcmRunSummary summary = site.dcm->RunOnce();
      ++passes;
      total_soft += summary.host_soft_failures;
      if (summary.host_soft_failures == 0 && summary.hosts_updated >= 0 && passes > 0 &&
          summary.host_soft_failures + summary.host_hard_failures == 0) {
        break;
      }
      site.clock.Advance(15 * kSecondsPerMinute);  // the paper's retry interval
      if (passes > 50) {
        break;
      }
    }
    state.counters["passes"] = passes;
    state.counters["soft_failures"] = total_soft;
  }
}
BENCHMARK(BM_PropagationWithFailures)
    ->Arg(0)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

void PrintCycleReport() {
  BenchSite site{SiteSpec{}};
  DcmRunSummary summary = site.dcm->RunOnce();
  std::printf(
      "E6 full first propagation at paper scale:\n"
      "  %d hosts updated, %d propagations, %lld bytes, %d soft / %d hard failures\n\n",
      summary.hosts_updated, summary.propagations,
      static_cast<long long>(summary.bytes_propagated), summary.host_soft_failures,
      summary.host_hard_failures);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintCycleReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
