// E6 — The Moira-to-server update protocol under load and failure (paper
// section 5.9): a full propagation cycle of 59 files / 90 propagations, the
// per-host update cost, retry behaviour under a crash-rate sweep, and the
// resilience-layer report (flaky-fleet convergence with the retry/breaker
// layer on vs off, and quarantine economics for a dead host), which lands in
// BENCH_propagation.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/db/exec.h"
#include "src/dcm/delta.h"
#include "src/dcm/generators.h"
#include "src/update/update_client.h"

namespace moira {
namespace {

// Full cycle: regenerate everything and push to all 27 server hosts.
void BM_FullPropagationCycle(benchmark::State& state) {
  static BenchSite* site = new BenchSite(SiteSpec{});
  const std::string& login = site->builder->active_logins()[0];
  int flip = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    site->clock.Advance(25 * kSecondsPerHour);
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "update_user_shell",
        {login, flip++ % 2 == 0 ? "/bin/a" : "/bin/b"}, [](Tuple) {});
    QueryRegistry::Instance().Execute(
        *site->mc, "root", "bench", "update_zephyr_class",
        {"zclass-2", "zclass-2", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
         "NONE"},
        [](Tuple) {});
    DcmRunSummary summary = site->dcm->RunOnce();
    bytes = summary.bytes_propagated;
    benchmark::DoNotOptimize(summary.hosts_updated);
  }
  state.counters["bytes/cycle"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FullPropagationCycle)->Unit(benchmark::kMillisecond);

// Single-host update: the three-phase protocol against one simulated server.
void BM_SingleHostUpdate(benchmark::State& state) {
  BenchSite& site = PaperSite();
  SimHost* host = site.directory.Find(site.builder->nfs_server_names()[0]);
  UpdateClient client(site.realm.get(), kDcmPrincipal, "dcm-service-password");
  Archive archive;
  archive.Add("credentials", std::string(static_cast<size_t>(state.range(0)), 'x'));
  std::string payload = archive.Serialize();
  for (auto _ : state) {
    UpdateOutcome outcome =
        client.Update(host, "/tmp/bench.out", payload, "syncdir /site/bench\n");
    benchmark::DoNotOptimize(outcome.code);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_SingleHostUpdate)->Arg(1024)->Arg(150 * 1024)->Arg(1024 * 1024);

// Crash-rate sweep: fraction of hosts failing softly per mille; the DCM
// keeps retrying until everyone is caught up.  Reports passes needed.
void BM_PropagationWithFailures(benchmark::State& state) {
  int per_mille = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchSite site{TestSiteSpec()};
    SplitMix64 rng(42);
    state.ResumeTiming();
    int passes = 0;
    int total_soft = 0;
    while (true) {
      for (auto& host : site.hosts) {
        if (rng.Below(1000) < static_cast<uint64_t>(per_mille)) {
          host->SetFailMode(HostFailMode::kRefuseConnection);
        }
      }
      DcmRunSummary summary = site.dcm->RunOnce();
      ++passes;
      total_soft += summary.host_soft_failures;
      if (summary.host_soft_failures == 0 && summary.hosts_updated >= 0 && passes > 0 &&
          summary.host_soft_failures + summary.host_hard_failures == 0) {
        break;
      }
      site.clock.Advance(15 * kSecondsPerMinute);  // the paper's retry interval
      if (passes > 50) {
        break;
      }
    }
    state.counters["passes"] = passes;
    state.counters["soft_failures"] = total_soft;
  }
}
BENCHMARK(BM_PropagationWithFailures)
    ->Arg(0)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Resilience report: deterministic flaky-fleet convergence and quarantine
// economics, written to BENCH_propagation.json.

struct ConvergenceSample {
  const char* config;   // "retry+breaker" or "baseline"
  int flaky_permille;
  uint64_t seed;
  int hosts;
  int passes;           // DCM passes until a fully clean pass (capped at 60)
  bool converged;
  int soft_failures;    // total across the run
  int host_retries;     // in-pass retries beyond the first attempt
};

struct QuarantineSample {
  const char* config;
  int passes;
  int attempts_on_down_host;  // connection attempts the dead host received
  int breaker_opens;
  int breaker_skips;          // attempts saved by the open breaker
  int probe_failures;
};

// A ~20-host fleet: 1 hesiod + 15 NFS + mail hub + 3 zephyr + 2 POP servers.
SiteSpec FleetSpec() {
  SiteSpec spec = TestSiteSpec();
  spec.nfs_servers = 15;
  return spec;
}

ConvergenceSample RunConvergence(bool resilient, int flaky_permille, uint64_t seed) {
  BenchSite site{FleetSpec()};
  DcmResilienceConfig config;
  if (resilient) {
    config.retry.max_attempts = 3;  // outlasts the plan's 2 flaky refusals
    config.retry.initial_backoff = 30;
    config.retry.jitter_permille = 200;
    config.retry.seed = seed;
  } else {
    config.enabled = false;  // the paper's one-attempt-per-pass behaviour
  }
  site.dcm->set_resilience(config);
  site.dcm->update_client().set_sleep_fn(
      [&site](UnixTime s) { site.clock.Advance(s); });
  FaultPlanSpec fault;
  fault.seed = seed;
  fault.flaky_permille = flaky_permille;
  fault.flaky_fail_count = 2;
  FaultPlan plan(fault);
  ConvergenceSample sample{resilient ? "retry+breaker" : "baseline",
                           flaky_permille,
                           seed,
                           static_cast<int>(site.hosts.size()),
                           0,
                           false,
                           0,
                           0};
  while (sample.passes < 60) {
    // The draw depends only on (seed, pass, host index): both configs replay
    // the identical fault schedule no matter how many passes each needs.
    plan.ArmPass(site.hosts, sample.passes);
    DcmRunSummary summary = site.dcm->RunOnce();
    ++sample.passes;
    sample.soft_failures += summary.host_soft_failures;
    sample.host_retries += summary.host_retries;
    if (summary.host_soft_failures == 0 && summary.host_hard_failures == 0 &&
        summary.breaker_skips == 0) {
      sample.converged = true;
      break;
    }
    site.clock.Advance(15 * kSecondsPerMinute);  // the paper's retry interval
  }
  return sample;
}

QuarantineSample RunQuarantine(bool breaker_on, int passes) {
  BenchSite site{FleetSpec()};
  DcmResilienceConfig config;
  config.enabled = breaker_on;
  config.breaker_threshold = 3;
  config.breaker_cooldown = 45 * kSecondsPerMinute;
  site.dcm->set_resilience(config);
  SimHost* down = site.directory.Find(site.builder->nfs_server_names()[0]);
  down->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);  // dead for good
  QuarantineSample sample{breaker_on ? "retry+breaker" : "baseline", passes, 0, 0, 0, 0};
  for (int pass = 0; pass < passes; ++pass) {
    DcmRunSummary summary = site.dcm->RunOnce();
    sample.breaker_opens += summary.breaker_opens;
    sample.breaker_skips += summary.breaker_skips;
    sample.probe_failures += summary.probe_failures;
    site.clock.Advance(15 * kSecondsPerMinute);
  }
  sample.attempts_on_down_host = down->connect_attempts();
  return sample;
}

// Runs the sweep, writes the "convergence" and "quarantine" arrays into the
// already-open report, prints a summary.  Returns false if the resilient
// configuration fails its acceptance bar (convergence, strictly fewer passes
// than baseline, quarantine saving attempts), which scripts/check.sh
// --fault-smoke turns into a build failure.
bool RunResilienceReport(FILE* f) {
  constexpr uint64_t kSeed = 1988;
  std::vector<ConvergenceSample> convergence;
  for (int flaky_permille : {100, 300, 500}) {
    convergence.push_back(RunConvergence(/*resilient=*/false, flaky_permille, kSeed));
    convergence.push_back(RunConvergence(/*resilient=*/true, flaky_permille, kSeed));
  }
  std::vector<QuarantineSample> quarantine;
  quarantine.push_back(RunQuarantine(/*breaker_on=*/false, 12));
  quarantine.push_back(RunQuarantine(/*breaker_on=*/true, 12));

  std::fprintf(f, "  \"convergence\": [\n");
  for (size_t i = 0; i < convergence.size(); ++i) {
    const ConvergenceSample& s = convergence[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"flaky_permille\": %d, \"seed\": %llu, "
                 "\"hosts\": %d, \"passes\": %d, \"converged\": %s, "
                 "\"soft_failures\": %d, \"host_retries\": %d}%s\n",
                 s.config, s.flaky_permille, static_cast<unsigned long long>(s.seed),
                 s.hosts, s.passes, s.converged ? "true" : "false", s.soft_failures,
                 s.host_retries, i + 1 < convergence.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"quarantine\": [\n");
  for (size_t i = 0; i < quarantine.size(); ++i) {
    const QuarantineSample& s = quarantine[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"passes\": %d, "
                 "\"attempts_on_down_host\": %d, \"breaker_opens\": %d, "
                 "\"breaker_skips\": %d, \"probe_failures\": %d}%s\n",
                 s.config, s.passes, s.attempts_on_down_host, s.breaker_opens,
                 s.breaker_skips, s.probe_failures,
                 i + 1 < quarantine.size() ? "," : "");
  }
  std::fprintf(f, "  ]");

  bool ok = true;
  std::printf("E6 resilience: flaky-fleet convergence (%d hosts, seed %llu)\n",
              convergence[0].hosts, static_cast<unsigned long long>(kSeed));
  std::printf("  %-8s %-14s %7s %10s %6s %8s\n", "flaky", "config", "passes",
              "converged", "soft", "retries");
  for (size_t i = 0; i + 1 < convergence.size(); i += 2) {
    const ConvergenceSample& base = convergence[i];
    const ConvergenceSample& res = convergence[i + 1];
    for (const ConvergenceSample* s : {&base, &res}) {
      std::printf("  %3d/1000 %-14s %7d %10s %6d %8d\n", s->flaky_permille, s->config,
                  s->passes, s->converged ? "yes" : "NO", s->soft_failures,
                  s->host_retries);
    }
    if (!res.converged || !base.converged || res.passes >= base.passes) {
      std::printf("  ^^ FAIL: resilient config must converge in strictly fewer "
                  "passes\n");
      ok = false;
    }
  }
  const QuarantineSample& qbase = quarantine[0];
  const QuarantineSample& qres = quarantine[1];
  std::printf("  quarantine (dead host, %d passes): baseline %d attempts, "
              "breaker %d attempts (%d skipped, %d opens, %d failed probes)\n",
              qbase.passes, qbase.attempts_on_down_host, qres.attempts_on_down_host,
              qres.breaker_skips, qres.breaker_opens, qres.probe_failures);
  if (qres.breaker_skips <= 0 ||
      qres.attempts_on_down_host >= qbase.attempts_on_down_host) {
    std::printf("  ^^ FAIL: an open breaker must stop consuming update attempts\n");
    ok = false;
  }
  std::printf("\n");
  return ok;
}

// ---------------------------------------------------------------------------
// Incremental-propagation sweep: full regeneration vs journal-delta patch
// shipping at 0.1% churn per pass, with a seeded fault plan and a
// byte-identity oracle, written to BENCH_propagation.json.

struct IncrementalSample {
  const char* config;        // "full" or "incremental"
  int users;
  int churn_per_pass;        // update_user_shell ops per measured pass
  int passes;                // measured churn passes (prime pass excluded)
  int64_t rows_examined;     // db-wide rows examined across the measured passes
  int64_t bytes_shipped;     // update payload bytes across the measured passes
  int64_t journal_entries;   // journal entries consumed by delta extraction
  int patch_ships;           // host updates delivered as keyed patches
  int patch_fallbacks;       // base-CRC refusals -> same-pass full reship
  int full_regens;           // journal-mode passes escalated to full regen
  int services_patched;
  double wall_ms;            // informational, not gated
  int oracle_files;          // installed files compared against fresh regen
  bool oracle_ok;
};

// Where each service's install script puts archive members on a host.
struct ServiceInstall {
  const char* service;
  GeneratorFn generate;
  const char* dir;
};
const ServiceInstall kInstalls[] = {
    {"HESIOD", GenerateHesiod, "/etc/athena/hesiod/"},
    {"NFS", GenerateNfs, "/site/moira/"},
    {"SMTP", GenerateMail, "/usr/lib/moira.staged/"},
    {"ZEPHYR", GenerateZephyrAcls, "/etc/athena/zephyr/acl/"},
};

int64_t DbRows(MoiraContext& mc) {
  int64_t total = 0;
  for (const std::string& name : mc.db().TableNames()) {
    total += mc.db().GetTable(name)->stats().rows_examined;
  }
  return total;
}

// The byte-identity oracle: regenerates every service from scratch and
// compares the installed files of every up-to-date host against the fresh
// output.  Hosts the fault plan left stale or quarantined (lts < dfgen,
// hosterror set) are excluded — the DCM itself knows they need a reship.
int VerifyInstalledAgainstFreshRegen(BenchSite& site, bool* ok) {
  int compared = 0;
  *ok = true;
  for (const ServiceInstall& svc : kInstalls) {
    GeneratorResult fresh;
    if (svc.generate(*site.mc, &fresh) != MR_SUCCESS) {
      std::printf("  oracle: %s regeneration failed\n", svc.service);
      *ok = false;
      continue;
    }
    Table* servers = site.mc->servers();
    std::vector<size_t> srows =
        From(servers).WhereEq("name", Value(std::string(svc.service))).Rows();
    if (srows.empty()) {
      continue;
    }
    const UnixTime dfgen = MoiraContext::IntCell(servers, srows[0], "dfgen");
    Table* sh = site.mc->serverhosts();
    for (size_t row :
         From(sh).WhereEq("service", Value(std::string(svc.service))).Rows()) {
      if (MoiraContext::IntCell(sh, row, "enable") < 1 ||
          MoiraContext::IntCell(sh, row, "hosterror") != 0 ||
          MoiraContext::IntCell(sh, row, "lts") < dfgen) {
        continue;
      }
      RowRef mach = site.mc->ExactOne(site.mc->machine(), "mach_id",
                                      Value(MoiraContext::IntCell(sh, row, "mach_id")),
                                      MR_MACHINE);
      if (mach.code != MR_SUCCESS) {
        continue;
      }
      const std::string& name =
          MoiraContext::StrCell(site.mc->machine(), mach.row, "name");
      SimHost* host = site.directory.Find(name);
      if (host == nullptr) {
        continue;
      }
      for (const auto& [member, contents] : fresh.ForHost(name).members()) {
        const std::string* got = host->ReadFile(std::string(svc.dir) + member);
        ++compared;
        if (got == nullptr || *got != contents) {
          std::printf("  oracle MISMATCH: %s %s%s on %s (%s)\n", svc.service, svc.dir,
                      member.c_str(), name.c_str(),
                      got == nullptr ? "missing" : "differs");
          *ok = false;
        }
      }
    }
  }
  return compared;
}

// One arm of the sweep: a fresh site primed with a first full pass, then
// kChurnPasses passes of 0.1% user-shell churn — the first kFaultedPasses
// under the seeded fault plan, the tail clean so torn hosts self-heal before
// the oracle runs.  Both arms replay the identical churn and fault schedule;
// only the journal attachment differs.
IncrementalSample RunIncrementalArm(bool incremental, int users) {
  constexpr int kChurnPasses = 5;
  constexpr int kFaultedPasses = 3;
  SiteSpec spec;
  spec.total_users = users;
  BenchSite site{spec};
  Journal journal;
  if (incremental) {
    site.dcm->AttachJournal(&journal);
  }
  // Identical resilience in both arms: one in-pass retry outlasts the plan's
  // single flaky refusal, so no host misses a pass and forces a catch-up
  // full ship that the fault draw, not the propagation mode, caused.
  DcmResilienceConfig config;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff = 30;
  site.dcm->set_resilience(config);
  site.dcm->update_client().set_sleep_fn(
      [&site](UnixTime s) { site.clock.Advance(s); });
  site.dcm->RunOnce();  // prime pass: both arms generate and ship everything

  const int churn = std::max(1, users / 1000);  // the paper's 0.1%/pass churn
  const std::vector<std::string>& logins = site.builder->active_logins();
  SplitMix64 rng(4242);
  FaultPlanSpec fault;
  fault.seed = 1988;
  fault.flaky_permille = 80;
  fault.flaky_fail_count = 1;
  fault.torn_permille = 25;
  FaultPlan plan(fault);

  IncrementalSample s{incremental ? "incremental" : "full",
                      users,
                      churn,
                      kChurnPasses,
                      0,
                      0,
                      0,
                      0,
                      0,
                      0,
                      0,
                      0.0,
                      0,
                      true};
  for (int pass = 0; pass < kChurnPasses; ++pass) {
    // Advance before mutating: the legacy arm detects churn by table modtime
    // strictly newer than dfgen.
    site.clock.Advance(25 * kSecondsPerHour);
    for (int i = 0; i < churn; ++i) {
      const std::string& login = logins[rng.Below(logins.size())];
      ExecuteJournaled(*site.mc, &journal, "root", "bench", "update_user_shell",
                       {login, "/bin/p" + std::to_string(pass)});
    }
    if (pass < kFaultedPasses) {
      plan.ArmPass(site.hosts, pass);
    }
    const int64_t rows_before = DbRows(*site.mc);
    auto t0 = std::chrono::steady_clock::now();
    DcmRunSummary sum = site.dcm->RunOnce();
    s.wall_ms += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    s.rows_examined += DbRows(*site.mc) - rows_before;
    s.bytes_shipped += sum.bytes_propagated;
    s.journal_entries += sum.journal_entries_examined;
    s.patch_ships += sum.patch_ships;
    s.patch_fallbacks += sum.patch_fallbacks;
    s.full_regens += sum.full_regens;
    s.services_patched += sum.services_patched;
  }
  s.oracle_files = VerifyInstalledAgainstFreshRegen(site, &s.oracle_ok);
  return s;
}

// Runs full vs incremental at each population size, writes the "incremental"
// and "gates" arrays, prints a table.  Returns false if the largest size run
// misses the reduction bars (>= 50x fewer rows examined AND >= 50x fewer
// bytes shipped) or any incremental arm fails the byte-identity oracle.
bool RunIncrementalReport(FILE* f) {
  int64_t max_users = 100000;
  if (const char* env = std::getenv("MOIRA_BENCH_INCREMENTAL_MAX_USERS")) {
    max_users = std::atoll(env);
  }
  std::vector<IncrementalSample> samples;
  for (int users : {10000, 100000, 1000000}) {
    if (users > max_users) {
      std::printf("E8 incremental: skipping %d users "
                  "(MOIRA_BENCH_INCREMENTAL_MAX_USERS=%lld)\n",
                  users, static_cast<long long>(max_users));
      continue;
    }
    samples.push_back(RunIncrementalArm(/*incremental=*/false, users));
    samples.push_back(RunIncrementalArm(/*incremental=*/true, users));
  }

  std::fprintf(f, "  \"incremental\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const IncrementalSample& s = samples[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"users\": %d, \"churn_per_pass\": %d, "
        "\"passes\": %d, \"rows_examined\": %lld, \"bytes_shipped\": %lld, "
        "\"journal_entries\": %lld, \"patch_ships\": %d, "
        "\"patch_fallbacks\": %d, \"full_regens\": %d, "
        "\"services_patched\": %d, \"wall_ms\": %.2f, \"oracle_files\": %d, "
        "\"oracle_ok\": %s}%s\n",
        s.config, s.users, s.churn_per_pass, s.passes,
        static_cast<long long>(s.rows_examined),
        static_cast<long long>(s.bytes_shipped),
        static_cast<long long>(s.journal_entries), s.patch_ships,
        s.patch_fallbacks, s.full_regens, s.services_patched, s.wall_ms,
        s.oracle_files, s.oracle_ok ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  bool ok = true;
  std::printf("E8 incremental propagation (full vs journal-delta, 0.1%% churn "
              "per pass, seeded faults):\n");
  std::printf("  %8s %-12s %14s %14s %9s %7s %6s %10s %9s\n", "users", "config",
              "rows_examined", "bytes_shipped", "jrnl", "patch", "fallb",
              "wall_ms", "oracle");
  for (const IncrementalSample& s : samples) {
    std::printf("  %8d %-12s %14lld %14lld %9lld %7d %6d %10.1f %9s\n", s.users,
                s.config, static_cast<long long>(s.rows_examined),
                static_cast<long long>(s.bytes_shipped),
                static_cast<long long>(s.journal_entries), s.patch_ships,
                s.patch_fallbacks, s.wall_ms, s.oracle_ok ? "ok" : "FAIL");
    if (std::string(s.config) == "incremental" &&
        (!s.oracle_ok || s.oracle_files <= 0)) {
      std::printf("  ^^ FAIL: patched fleet must match a fresh full "
                  "regeneration byte for byte\n");
      ok = false;
    }
  }

  double rows_ratio = 0.0;
  double bytes_ratio = 0.0;
  int gated_users = 0;
  if (samples.size() >= 2) {
    // Gate on the largest size that ran (>= 100k users unless capped lower).
    const IncrementalSample& full = samples[samples.size() - 2];
    const IncrementalSample& incr = samples[samples.size() - 1];
    gated_users = full.users;
    rows_ratio = incr.rows_examined > 0
                     ? static_cast<double>(full.rows_examined) /
                           static_cast<double>(incr.rows_examined)
                     : 0.0;
    bytes_ratio = incr.bytes_shipped > 0
                      ? static_cast<double>(full.bytes_shipped) /
                            static_cast<double>(incr.bytes_shipped)
                      : 0.0;
    std::printf("  at %d users: %.1fx fewer rows examined, %.1fx fewer bytes "
                "shipped\n",
                gated_users, rows_ratio, bytes_ratio);
    if (rows_ratio < 50.0 || bytes_ratio < 50.0) {
      std::printf("  ^^ FAIL: incremental mode must examine >= 50x fewer rows "
                  "and ship >= 50x fewer bytes\n");
      ok = false;
    }
  } else {
    std::printf("  ^^ FAIL: no incremental samples ran\n");
    ok = false;
  }

  bool oracle_all = !samples.empty();
  int oracle_files = 0;
  for (const IncrementalSample& s : samples) {
    if (std::string(s.config) == "incremental") {
      oracle_all = oracle_all && s.oracle_ok && s.oracle_files > 0;
      oracle_files += s.oracle_files;
    }
  }
  std::fprintf(
      f,
      "  \"gates\": [\n"
      "    {\"name\": \"incremental_rows_reduction_x\", \"users\": %d, "
      "\"value\": %.2f, \"pass\": %s},\n"
      "    {\"name\": \"incremental_bytes_reduction_x\", \"users\": %d, "
      "\"value\": %.2f, \"pass\": %s},\n"
      "    {\"name\": \"patched_outputs_byte_identical\", \"value\": %d, "
      "\"pass\": %s}\n"
      "  ]",
      gated_users, rows_ratio, rows_ratio >= 50.0 ? "true" : "false",
      gated_users, bytes_ratio, bytes_ratio >= 50.0 ? "true" : "false",
      oracle_files, oracle_all ? "true" : "false");
  std::printf("\n");
  return ok;
}

void PrintCycleReport() {
  BenchSite site{SiteSpec{}};
  DcmRunSummary summary = site.dcm->RunOnce();
  std::printf(
      "E6 full first propagation at paper scale:\n"
      "  %d hosts updated, %d propagations, %lld bytes, %d soft / %d hard failures\n\n",
      summary.hosts_updated, summary.propagations,
      static_cast<long long>(summary.bytes_propagated), summary.host_soft_failures,
      summary.host_hard_failures);
}

}  // namespace
}  // namespace moira

int main(int argc, char** argv) {
  moira::PrintCycleReport();
  const char* path = "BENCH_propagation.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_propagation\",\n");
  bool resilience_ok = moira::RunResilienceReport(f);
  std::fprintf(f, ",\n");
  bool incremental_ok = moira::RunIncrementalReport(f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return (resilience_ok && incremental_ok) ? 0 : 1;
}
