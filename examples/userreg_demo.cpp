// userreg_demo: the new-student registration flow of paper section 5.10.
//
// Simulates registration day: the registrar's tape is imported, students walk
// up to the "register"/"athena" login, type their name and MIT ID, choose a
// login and password, and leave with a pobox, group, home filesystem, and
// quota — with no intervention from the accounts staff.
//
// Build and run:   ./build/examples/userreg_demo
#include <cstdio>

#include "src/client/client.h"
#include "src/comerr/error_table.h"
#include "src/core/registry.h"
#include "src/krb/crypt.h"
#include "src/reg/regserver.h"
#include "src/sim/population.h"

using namespace moira;

namespace {

struct Student {
  const char* first;
  const char* mi;
  const char* last;
  const char* id;
};

}  // namespace

int main() {
  SimulatedClock clock(568000000);
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);
  realm.RegisterService(kMoiraServiceName);
  // Minimal infrastructure: post offices and fileservers for allocation.
  SiteSpec spec = TestSiteSpec();
  spec.total_users = 0;  // no pre-existing population
  SiteBuilder builder(&mc, &realm);
  builder.Build(spec);

  // Shortly before registration day, the registrar's list arrives; each
  // student is added with an encrypted ID and no login name.
  const Student tape[] = {
      {"Harmon", "C", "Fowler", "123-45-6789"},
      {"Angela", "B", "Barba", "222-33-4444"},
      {"Gerhard", "M", "Messmer", "333-44-5555"},
      {"Martin", "Z", "Zimmermann", "444-55-6666"},
  };
  DirectClient registrar(&mc, "registrar-tape");
  for (const Student& s : tape) {
    int32_t code = registrar.Query(
        "add_user",
        {kUniqueLogin, "-1", "/bin/csh", s.last, s.first, s.mi, "0",
         HashMitId(s.id, s.first, s.last), "1992"},
        [](Tuple) {});
    std::printf("tape import %s %s -> %s\n", s.first, s.last,
                ErrorMessage(code).c_str());
  }

  RegistrationServer reg(&mc, &realm);
  UserregClient userreg(&reg, &realm);

  // Students register themselves.
  const char* logins[] = {"hfowler", "abarba", "gmessmer", "mzimmer"};
  for (size_t i = 0; i < std::size(tape); ++i) {
    int32_t code = userreg.Register(tape[i].first, tape[i].mi, tape[i].last, tape[i].id,
                                    logins[i], "initial-pw");
    std::printf("userreg %s -> %s\n", logins[i], ErrorMessage(code).c_str());
  }

  // Failure cases the server must reject.
  int32_t wrong_id = userreg.Register("Harmon", "C", "Fowler", "999-99-9999",
                                      "hfowler9", "pw");
  std::printf("wrong ID number -> %s\n", ErrorMessage(wrong_id).c_str());
  int32_t again =
      userreg.Register("Angela", "B", "Barba", "222-33-4444", "abarba2", "pw");
  std::printf("double registration -> %s\n", ErrorMessage(again).c_str());

  // Show what each student ended up with.
  for (const char* login : logins) {
    std::printf("--- %s ---\n", login);
    registrar.Query("get_pobox", {login}, [](Tuple t) {
      std::printf("  pobox: %s on %s\n", t[1].c_str(), t[2].c_str());
    });
    registrar.Query("get_filesys_by_label", {login}, [](Tuple t) {
      std::printf("  home: %s on %s (%s)\n", t[4].c_str(), t[2].c_str(), t[10].c_str());
    });
    registrar.Query("get_nfs_quota", {login, login}, [](Tuple t) {
      std::printf("  quota: %s units on %s\n", t[2].c_str(), t[4].c_str());
    });
    Ticket ticket;
    int32_t krb = realm.GetInitialTickets(login, "initial-pw", kMoiraServiceName, &ticket);
    std::printf("  kerberos login works: %s\n", krb == MR_SUCCESS ? "yes" : "no");
  }
  std::printf("userreg_demo done\n");
  return 0;
}
