// admin_tool: a command-line administrative client in the style of the
// twelve interface programs the paper mentions (moira, chfn, chsh, chpobox,
// mailmaint...).  It speaks only the application library — never the
// database — and demonstrates mr_access gating before mutation.
//
// Usage:
//   ./build/examples/admin_tool              # scripted demo session
//   ./build/examples/admin_tool query <name> [args...]   # one-off query
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/client/client.h"
#include "src/comerr/com_err.h"
#include "src/comerr/error_table.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/server/server.h"
#include "src/sim/population.h"

using namespace moira;

namespace {

void PrintTuple(const Tuple& tuple) {
  std::printf("  ");
  for (size_t i = 0; i < tuple.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : " | ", tuple[i].c_str());
  }
  std::printf("\n");
}

int RunQuery(MrClient& client, const std::string& name,
             const std::vector<std::string>& args) {
  std::printf("> %s", name.c_str());
  for (const std::string& arg : args) {
    std::printf(" %s", arg.c_str());
  }
  std::printf("\n");
  int32_t code = client.Query(name, args, PrintTuple);
  std::printf("  => %s\n", ErrorMessage(code).c_str());
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // In-process site: the admin tool normally talks TCP to the Moira machine;
  // the loopback channel keeps this example self-contained.
  SimulatedClock clock(568000000);
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);
  SiteSpec spec = TestSiteSpec();
  SiteBuilder builder(&mc, &realm);
  builder.Build(spec);
  MoiraServer server(&mc, &realm);

  MrClient client([&server] { return std::make_unique<LoopbackChannel>(&server); });
  client.SetKerberosIdentity(&realm, builder.admin_login(), "pw:opsmgr");
  if (client.Connect() != MR_SUCCESS || client.Auth("admin_tool") != MR_SUCCESS) {
    ComErr("admin_tool", MR_ABORTED, "cannot reach Moira");
    return 1;
  }

  if (argc >= 3 && std::strcmp(argv[1], "query") == 0) {
    std::vector<std::string> args(argv + 3, argv + argc);
    return RunQuery(client, argv[2], args) == MR_SUCCESS ? 0 : 1;
  }

  const std::string user = builder.active_logins()[0];
  std::printf("=== admin session as %s ===\n", builder.admin_login().c_str());

  // chsh: check access first (the "hint" pattern of section 5.6.2), then do.
  if (client.Access("update_user_shell", {user, "/bin/athena/tcsh"}) == MR_SUCCESS) {
    RunQuery(client, "update_user_shell", {user, "/bin/athena/tcsh"});
  }
  // chfn.
  RunQuery(client, "update_finger_by_login",
           {user, "Updated Fullname", "nick", "12 Maple St", "555-0100", "E40-001",
            "555-0200", "EECS", "undergraduate"});
  RunQuery(client, "get_finger_by_login", {user});
  // chpobox.
  RunQuery(client, "get_pobox", {user});
  // mailmaint: create a list and add members.
  RunQuery(client, "add_list",
           {"demo-staff", "1", "0", "0", "1", "0", "-1", "USER", builder.admin_login(),
            "demo staff list"});
  RunQuery(client, "add_member_to_list", {"demo-staff", "USER", user});
  RunQuery(client, "get_members_of_list", {"demo-staff"});
  RunQuery(client, "count_members_of_list", {"demo-staff"});
  // Machine management.
  RunQuery(client, "add_machine", {"new-ws-1.mit.edu", "RT"});
  RunQuery(client, "get_machine", {"NEW-WS-*"});
  // Introspection built-ins.
  RunQuery(client, "_help", {"update_user_shell"});
  RunQuery(client, "_list_users", {});
  // Show what happens without privileges: a fresh unauthenticated client.
  MrClient anon([&server] { return std::make_unique<LoopbackChannel>(&server); });
  anon.Connect();
  std::printf("> delete_user (unauthenticated)\n  => %s\n",
              ErrorMessage(anon.Query("delete_user", {user}, PrintTuple)).c_str());
  std::printf("=== session complete ===\n");
  return 0;
}
