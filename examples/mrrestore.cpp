// mrrestore: offline point-in-time recovery (paper section 5.2.2, grown to
// the checkpoint/changelog lifecycle of DESIGN.md).  Rebuilds the database
// from a server data directory — the newest checkpoint at or before the
// target sequence number plus the changelog segments up to it — and prints a
// recovery summary or the full dump.
//
// Usage: ./build/examples/mrrestore <data-root> [--to-seq N] [--dump]
//                                   [--start-time T]
//   --to-seq N       replay through sequence number N (default: everything)
//   --dump           print the recovered database as backup-format lines
//   --start-time T   seed time of the original primary (default 568000000);
//                    must match or replayed stamps diverge
//
// Exits 0 on success, 1 on a gapped/unreadable directory or bad arguments.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/backup/checkpoint.h"
#include "src/core/registry.h"
#include "src/core/schema.h"

using namespace moira;

int main(int argc, char** argv) {
  const char* root = nullptr;
  uint64_t to_seq = UINT64_MAX;
  bool dump = false;
  UnixTime start_time = 568000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--to-seq") == 0 && i + 1 < argc) {
      to_seq = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--start-time") == 0 && i + 1 < argc) {
      start_time = std::strtoll(argv[++i], nullptr, 10);
    } else if (argv[i][0] != '-' && root == nullptr) {
      root = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: mrrestore <data-root> [--to-seq N] [--dump] [--start-time T]\n");
      return 1;
    }
  }
  if (root == nullptr) {
    std::fprintf(stderr,
                 "usage: mrrestore <data-root> [--to-seq N] [--dump] [--start-time T]\n");
    return 1;
  }

  SimulatedClock clock(start_time);
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  RegisterMoiraErrorTable();

  std::optional<RecoveryResult> result = RestoreToSeq(&mc, &clock, root, to_seq);
  if (!result.has_value()) {
    std::fprintf(stderr,
                 "mrrestore: cannot recover from %s: unreadable directory, bad "
                 "checkpoint, or a gap between the checkpoint and the changelog tail\n",
                 root);
    return 1;
  }
  std::fprintf(stderr,
               "mrrestore: checkpoint seq %llu + %d changelog entries "
               "(%d replayed) -> state as of seq %llu\n",
               static_cast<unsigned long long>(result->checkpoint_seq),
               result->entries_loaded, result->entries_replayed,
               static_cast<unsigned long long>(result->last_seq));
  if (result->entries_replayed != result->entries_loaded) {
    std::fprintf(stderr, "mrrestore: warning: %d entries failed to replay\n",
                 result->entries_loaded - result->entries_replayed);
  }
  if (dump) {
    std::fputs(BackupManager::DumpToString(db).c_str(), stdout);
  } else {
    std::printf("%zu users, %zu list members as of seq %llu\n",
                mc.users()->LiveCount(), mc.members()->LiveCount(),
                static_cast<unsigned long long>(result->last_seq));
  }
  return 0;
}
