// Quickstart: stand up a complete in-process Moira — database, Kerberos,
// server — then connect with the application library, authenticate, and run
// a few queries, exactly as an Athena administrative application would.
//
// Build and run:   ./build/examples/quickstart
#include <cstdio>

#include "src/client/client.h"
#include "src/comerr/com_err.h"
#include "src/comerr/error_table.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/server/server.h"

using namespace moira;

int main() {
  // --- The Moira database machine: clock, database, schema, KDC, server ---
  SystemClock clock;
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);
  MoiraServer server(&mc, &realm);

  // A site needs at least one administrator.  "root" is the glue identity
  // used here only for bootstrap, as the DCM does.
  DirectClient bootstrap(&mc, "quickstart-setup");
  bootstrap.Query("add_user",
                  {"jrandom", "6530", "/bin/csh", "Random", "J", "Q", "1", "hash", "G"},
                  [](Tuple) {});
  bootstrap.Query("add_machine", {"e40-po.mit.edu", "VAX"}, [](Tuple) {});
  realm.AddPrincipal("jrandom", "hunter2");

  // --- A workstation application: connect, authenticate, query ---
  MrClient client([&server] { return std::make_unique<LoopbackChannel>(&server); });
  client.SetKerberosIdentity(&realm, "jrandom", "hunter2");

  if (int32_t code = client.Connect(); code != MR_SUCCESS) {
    ComErr("quickstart", code, "while connecting to Moira");
    return 1;
  }
  std::printf("connected; noop -> %s\n", ErrorMessage(client.Noop()).c_str());

  if (int32_t code = client.Auth("quickstart"); code != MR_SUCCESS) {
    ComErr("quickstart", code, "while authenticating");
    return 1;
  }
  std::printf("authenticated as jrandom\n");

  // Check access before prompting, as real clients do (mr_access).
  int32_t access = client.Access("update_user_shell", {"jrandom", "/bin/sh"});
  std::printf("may change own shell? %s\n", access == MR_SUCCESS ? "yes" : "no");

  // Change the shell, then read the account back.
  client.Query("update_user_shell", {"jrandom", "/bin/sh"}, [](Tuple) {});
  client.Query("get_user_by_login", {"jrandom"}, [](Tuple tuple) {
    std::printf("account: login=%s uid=%s shell=%s name=%s %s\n", tuple[0].c_str(),
                tuple[1].c_str(), tuple[2].c_str(), tuple[4].c_str(), tuple[3].c_str());
  });

  // Denied operations produce clean com_err codes.
  int32_t denied = client.Query("delete_user", {"jrandom"}, [](Tuple) {});
  std::printf("delete_user as non-admin -> %s\n", ErrorMessage(denied).c_str());

  // The server journals every successful change.
  std::printf("journal entries: %zu\n", server.journal().entries().size());
  client.Disconnect();
  std::printf("quickstart done\n");
  return 0;
}
