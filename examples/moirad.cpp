// moirad: the Moira server daemon as a standalone process (paper section
// 5.4) — one UNIX process, a persistent database backend opened once at
// startup, listening for TCP connections on a well-known port and
// multiplexing them with poll(2).
//
// Usage: ./build/examples/moirad [port] [duration-seconds] [data-dir]
//   port 0 (default) picks an ephemeral port and prints it.
//   duration 0 runs until killed; the default 5 seconds suits demos.
//   data-dir enables the checkpoint/changelog lifecycle: startup recovers
//   the latest checkpoint + changelog tail from the directory, mutations are
//   journalled into rotated segments, a cron job checkpoints periodically,
//   and replica bootstrap streams the on-disk checkpoint.  Restarting with
//   the same directory resumes where the previous run stopped.
//
// Pair with mrtest:  ./build/examples/moirad 4750 30 &
//                    ./build/examples/mrtest 4750 get_machine 'NFS-*'
// Inspect a data dir offline with mrrestore.
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "src/backup/checkpoint.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/dcm/cron.h"
#include "src/net/tcp.h"
#include "src/server/server.h"
#include "src/sim/population.h"

using namespace moira;

int main(int argc, char** argv) {
  uint16_t port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;
  int duration = argc > 2 ? std::atoi(argv[2]) : 5;
  const char* data_dir = argc > 3 ? argv[3] : nullptr;

  SystemClock clock;
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);
  // A demo site so clients have something to query.  Built before recovery so
  // the base state is the same on every start; a checkpoint load replaces it
  // wholesale, and journal replay runs on top of it.
  SiteBuilder builder(&mc, &realm);
  builder.Build(TestSiteSpec());

  ServerOptions options;
  if (data_dir != nullptr) {
    options.data_dir = data_dir;
  }
  MoiraServer server(&mc, &realm, options);
  CronScheduler cron(&clock);
  if (data_dir != nullptr) {
    std::optional<RecoveryResult> recovered =
        RecoverServerState(&mc, nullptr, &server.journal(), data_dir);
    if (!recovered.has_value()) {
      std::fprintf(stderr,
                   "moirad: cannot recover from %s (gapped or unreadable); "
                   "refusing to serve a diverged state\n",
                   data_dir);
      return 1;
    }
    server.InvalidateAccessCaches();
    server.journal().set_rotate_threshold(512);
    CheckpointPolicy policy;
    policy.keep = 2;
    policy.grace_entries = 256;  // lagging replicas catch up over the wire
    ScheduleCheckpoints(&cron, &db, &server.journal(), 5 * kSecondsPerMinute, policy);
    std::printf("moirad: recovered checkpoint seq %llu + %d entries from %s\n",
                static_cast<unsigned long long>(recovered->checkpoint_seq),
                recovered->entries_loaded, data_dir);
  }

  TcpServer tcp(&server);
  if (int32_t code = tcp.Listen(port); code != MR_SUCCESS) {
    std::fprintf(stderr, "moirad: cannot listen on port %u (error %d)\n", port, code);
    return 1;
  }
  std::printf("moirad: serving on 127.0.0.1:%u (%zu users loaded)\n", tcp.port(),
              mc.users()->LiveCount());
  std::printf("moirad: unauthenticated clients may run world queries; Kerberos\n"
              "moirad: identities live in this process's simulated realm\n");
  std::fflush(stdout);

  std::time_t deadline = std::time(nullptr) + duration;
  while (duration == 0 || std::time(nullptr) < deadline) {
    tcp.Poll(200);
    cron.RunDue();
  }
  std::printf("moirad: served %llu requests across %llu queries; shutting down\n",
              static_cast<unsigned long long>(server.stats().requests),
              static_cast<unsigned long long>(server.stats().queries));
  return 0;
}
