// moirad: the Moira server daemon as a standalone process (paper section
// 5.4) — one UNIX process, a persistent database backend opened once at
// startup, listening for TCP connections on a well-known port and
// multiplexing them with poll(2).
//
// Usage: ./build/examples/moirad [port] [duration-seconds]
//   port 0 (default) picks an ephemeral port and prints it.
//   duration 0 runs until killed; the default 5 seconds suits demos.
//
// Pair with mrtest:  ./build/examples/moirad 4750 30 &
//                    ./build/examples/mrtest 4750 get_machine 'NFS-*'
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/net/tcp.h"
#include "src/server/server.h"
#include "src/sim/population.h"

using namespace moira;

int main(int argc, char** argv) {
  uint16_t port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;
  int duration = argc > 2 ? std::atoi(argv[2]) : 5;

  SystemClock clock;
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);
  // A demo site so clients have something to query.
  SiteBuilder builder(&mc, &realm);
  builder.Build(TestSiteSpec());

  MoiraServer server(&mc, &realm);
  TcpServer tcp(&server);
  if (int32_t code = tcp.Listen(port); code != MR_SUCCESS) {
    std::fprintf(stderr, "moirad: cannot listen on port %u (error %d)\n", port, code);
    return 1;
  }
  std::printf("moirad: serving on 127.0.0.1:%u (%zu users loaded)\n", tcp.port(),
              mc.users()->LiveCount());
  std::printf("moirad: unauthenticated clients may run world queries; Kerberos\n"
              "moirad: identities live in this process's simulated realm\n");
  std::fflush(stdout);

  std::time_t deadline = std::time(nullptr) + duration;
  while (duration == 0 || std::time(nullptr) < deadline) {
    tcp.Poll(200);
  }
  std::printf("moirad: served %llu requests across %llu queries; shutting down\n",
              static_cast<unsigned long long>(server.stats().requests),
              static_cast<unsigned long long>(server.stats().queries));
  return 0;
}
