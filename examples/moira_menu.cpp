// moira_menu: the full-screen "moira" administrative client, built on the
// library's menu package (paper section 5.6.3).  Menus mirror the historical
// client's layout (users / lists / machines / dcm) and every action goes
// through the RPC application library.
//
// Run interactively:          ./build/examples/moira_menu -i
// Or let it replay a session: ./build/examples/moira_menu
#include <cstring>
#include <iostream>
#include <sstream>

#include "src/client/client.h"
#include "src/client/menu.h"
#include "src/comerr/error_table.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/server/server.h"
#include "src/sim/population.h"

using namespace moira;

namespace {

// Formats a query result (tuples plus final status) for the menu.
std::string RunToText(MrClient& client, const std::string& query,
                      const std::vector<std::string>& args) {
  std::ostringstream out;
  int32_t code = client.Query(query, args, [&out](Tuple tuple) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      out << (i == 0 ? "  " : " | ") << tuple[i];
    }
    out << "\n";
  });
  out << "  => " << ErrorMessage(code);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  SimulatedClock clock(568000000);
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);
  SiteBuilder builder(&mc, &realm);
  builder.Build(TestSiteSpec());
  MoiraServer server(&mc, &realm);

  MrClient client([&server] { return std::make_unique<LoopbackChannel>(&server); });
  client.SetKerberosIdentity(&realm, builder.admin_login(), "pw:opsmgr");
  client.Connect();
  client.Auth("moira_menu");

  Menu root("moira");
  Menu* users = root.AddSubmenu("users", "user menu");
  users->AddCommand(MenuCommand{"show", "show a user account", {"login"},
                                [&](const std::vector<std::string>& args) {
                                  return RunToText(client, "get_user_by_login", args);
                                }});
  users->AddCommand(MenuCommand{"chsh", "change a login shell", {"login", "shell"},
                                [&](const std::vector<std::string>& args) {
                                  return RunToText(client, "update_user_shell", args);
                                }});
  users->AddCommand(MenuCommand{"pobox", "show a post office box", {"login"},
                                [&](const std::vector<std::string>& args) {
                                  return RunToText(client, "get_pobox", args);
                                }});
  Menu* lists = root.AddSubmenu("lists", "list menu");
  lists->AddCommand(MenuCommand{"members", "show list membership", {"list"},
                                [&](const std::vector<std::string>& args) {
                                  return RunToText(client, "get_members_of_list", args);
                                }});
  lists->AddCommand(MenuCommand{"addm", "add a member", {"list", "type", "member"},
                                [&](const std::vector<std::string>& args) {
                                  return RunToText(client, "add_member_to_list", args);
                                }});
  Menu* machines = root.AddSubmenu("machines", "machine menu");
  machines->AddCommand(MenuCommand{"show", "look up machines (wildcards ok)", {"name"},
                                   [&](const std::vector<std::string>& args) {
                                     return RunToText(client, "get_machine", args);
                                   }});
  Menu* dcm = root.AddSubmenu("dcm", "DCM control menu");
  dcm->AddCommand(MenuCommand{"status", "show service update state", {"service"},
                              [&](const std::vector<std::string>& args) {
                                return RunToText(client, "get_server_info", args);
                              }});
  dcm->AddCommand(MenuCommand{"hosts", "show serverhost state", {"service"},
                              [&](const std::vector<std::string>& args) {
                                return RunToText(client, "get_server_host_info",
                                                 {args[0], "*"});
                              }});

  if (argc > 1 && std::strcmp(argv[1], "-i") == 0) {
    return root.Run(std::cin, std::cout) > 0 ? 0 : 1;
  }

  // Scripted demo session.
  std::string script;
  script += "users\n";
  script += "show\n" + builder.active_logins()[0] + "\n";
  script += "chsh\n" + builder.active_logins()[0] + "\n/bin/athena/tcsh\n";
  script += "pobox\n" + builder.active_logins()[0] + "\n";
  script += "r\n";
  script += "lists\nmembers\ndbadmin\nr\n";
  script += "machines\nshow\nNFS-*\nr\n";
  script += "dcm\nstatus\nHESIOD\nhosts\nNFS\nr\n";
  script += "q\n";
  std::istringstream in(script);
  int executed = root.Run(in, std::cout);
  std::cout << "(scripted session executed " << executed << " commands)\n";
  return 0;
}
