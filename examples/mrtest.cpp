// mrtest: a command-line Moira query tool in the spirit of the historical
// test client.  Connects to a running moirad over TCP and executes one query
// per invocation, unauthenticated — exactly the cheap read-only path the
// paper's mr_connect supports ("for simple read-only queries which may not
// need authentication, the overhead of authentication can be comparable to
// that of the query", section 5.6.2).
//
// Usage: ./build/examples/mrtest <port> <query> [args...]
//        ./build/examples/mrtest <port> _list_queries
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/client/client.h"
#include "src/comerr/error_table.h"
#include "src/net/tcp.h"

using namespace moira;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <port> <query> [args...]\n", argv[0]);
    return 2;
  }
  auto port = static_cast<uint16_t>(std::atoi(argv[1]));
  std::string query = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);

  MrClient client([port]() -> std::unique_ptr<ClientChannel> {
    auto channel = std::make_unique<TcpChannel>();
    if (channel->Connect(port) != MR_SUCCESS) {
      return nullptr;
    }
    return channel;
  });
  if (int32_t code = client.Connect(); code != MR_SUCCESS) {
    std::fprintf(stderr, "mrtest: cannot connect to 127.0.0.1:%u: %s\n", port,
                 ErrorMessage(code).c_str());
    return 1;
  }
  int rows = 0;
  int32_t code = client.Query(query, args, [&rows](Tuple tuple) {
    ++rows;
    for (size_t i = 0; i < tuple.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ":", tuple[i].c_str());
    }
    std::printf("\n");
  });
  std::fprintf(stderr, "mrtest: %d tuple(s), status: %s\n", rows,
               ErrorMessage(code).c_str());
  return code == MR_SUCCESS ? 0 : 1;
}
