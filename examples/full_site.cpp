// Full-site walkthrough: builds a synthetic Athena site at reduced scale,
// runs the DCM over several simulated days, and shows the complete pipeline
// the paper describes — registration, propagation to Hesiod/NFS/mail/Zephyr
// hosts, failure recovery, and nightly backups.
//
// Build and run:   ./build/examples/full_site
#include <cstdio>
#include <filesystem>

#include "src/backup/backup.h"
#include "src/backup/dbck.h"
#include "src/client/attach.h"
#include "src/client/client.h"
#include "src/dcm/cron.h"
#include "src/hesiod/resolver.h"
#include "src/mailhub/mailhub.h"
#include "src/dcm/dcm.h"
#include "src/hesiod/hesiod.h"
#include "src/krb/crypt.h"
#include "src/nfsd/nfs_server.h"
#include "src/reg/regserver.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "src/zephyrd/zephyr_server.h"

using namespace moira;

int main() {
  SimulatedClock clock(568000000);
  Database db(&clock);
  CreateMoiraSchema(&db);
  SeedMoiraDefaults(&db);
  MoiraContext mc(&db);
  KerberosRealm realm(&clock);

  // A mid-sized site: 800 users, 5 NFS servers.
  SiteSpec spec = TestSiteSpec();
  spec.total_users = 800;
  spec.nfs_servers = 5;
  spec.maillists = 40;
  SiteBuilder builder(&mc, &realm);
  builder.Build(spec);
  std::printf("site built: %zu users, %zu machines, %zu lists\n",
              mc.users()->LiveCount(), mc.machine()->LiveCount(),
              mc.list()->LiveCount());

  // Server hosts and the DCM.
  ZephyrBus zephyr(&clock);
  zephyr.Subscribe("MOIRA", "DCM", [](const ZephyrNotice& notice) {
    std::printf("  [zephyr MOIRA/DCM] %s\n", notice.message.c_str());
  });
  HostDirectory directory;
  auto hosts = CreateSimHosts(mc, &realm, &directory);
  Dcm dcm(&mc, &realm, &zephyr, &directory);
  ConfigureStandardServices(&dcm);

  // A live hesiod server wired to the install script's restart command.
  HesiodServer hesiod;
  directory.Find(builder.hesiod_server_name())
      ->RegisterCommand("restart_hesiod", [&hesiod](SimHost& host) {
        std::vector<std::string> texts;
        for (const std::string& path : host.ListFiles()) {
          if (path.starts_with("/etc/athena/hesiod/") && path.ends_with(".db")) {
            texts.push_back(*host.ReadFile(path));
          }
        }
        return hesiod.Reload(texts) >= 0 ? 0 : 1;
      });

  // NFS and Zephyr consumers wired to the install scripts' exec commands.
  std::vector<std::unique_ptr<NfsServerSim>> nfs_servers;
  for (const std::string& name : builder.nfs_server_names()) {
    nfs_servers.push_back(std::make_unique<NfsServerSim>(directory.Find(name)));
    InstallNfsUpdateCommand(directory.Find(name), nfs_servers.back().get());
  }
  std::vector<std::unique_ptr<ZephyrServerSim>> zephyr_servers;
  for (const std::string& name : builder.zephyr_server_names()) {
    zephyr_servers.push_back(std::make_unique<ZephyrServerSim>(directory.Find(name)));
    InstallZephyrReloadCommand(directory.Find(name), zephyr_servers.back().get());
  }

  clock.Advance(kSecondsPerDay);
  DcmRunSummary summary = dcm.RunOnce();
  std::printf("day 1 DCM: %d services generated, %d files, %d hosts updated, "
              "%d propagations, %lld bytes\n",
              summary.services_generated, summary.files_generated,
              summary.hosts_updated, summary.propagations,
              static_cast<long long>(summary.bytes_propagated));
  std::printf("hesiod now serves %zu records\n", hesiod.record_count());

  // A student registers (userreg); six hours later hesiod knows them.
  clock.Advance(kSecondsPerHour);
  RegistrationServer reg(&mc, &realm);
  UserregClient userreg(&reg, &realm);
  DirectClient direct(&mc, "registrar-tape");
  direct.Query("add_user",
               {kUniqueLogin, "-1", "/bin/csh", "Newman", "Alice", "Q", "0",
                HashMitId("321-00-1234", "Alice", "Newman"), "1992"},
               [](Tuple) {});
  int32_t reg_code =
      userreg.Register("Alice", "Q", "Newman", "321-00-1234", "anewman", "secret");
  std::printf("registration of anewman -> %s\n", ErrorMessage(reg_code).c_str());
  std::printf("hesiod knows anewman yet? %s\n",
              hesiod.Resolve("anewman", "passwd").empty() ? "no" : "yes");
  clock.Advance(6 * kSecondsPerHour);
  summary = dcm.RunOnce();
  std::printf("after 6h interval: %d services regenerated; hesiod knows anewman? %s\n",
              summary.services_generated,
              hesiod.Resolve("anewman", "passwd").empty() ? "no" : "yes");

  // A fileserver crashes during its next update; the DCM retries after
  // reboot and catches it up.
  clock.Advance(7 * kSecondsPerHour);
  SimHost* nfs1 = directory.Find(builder.nfs_server_names()[0]);
  nfs1->SetFailMode(HostFailMode::kCrashDuringTransfer);
  direct.Query("update_nfs_quota", {"anewman", "anewman", "999"}, [](Tuple) {});
  summary = dcm.RunOnce();
  std::printf("crash drill: %d soft failures, host down: %s\n",
              summary.host_soft_failures, nfs1->crashed() ? "yes" : "no");
  nfs1->Reboot();
  clock.Advance(kSecondsPerHour);
  summary = dcm.RunOnce();
  std::printf("after reboot: %d hosts caught up\n", summary.hosts_updated);

  // Locker creation happened on the fileservers as a side effect of the
  // install scripts.
  int lockers = 0;
  for (const auto& server : nfs_servers) {
    lockers += server->lockers_created();
  }
  std::printf("fileservers created %d lockers with quotas and init files\n", lockers);
  std::printf("zephyr servers enforce %zu controlled classes\n",
              zephyr_servers[0]->class_count());

  // Two more simulated days under cron: the DCM fires every 15 minutes (the
  // paper's minimum interval) and nightly.sh dumps backups at 24h.
  std::filesystem::path cron_backups =
      std::filesystem::temp_directory_path() / "moira-example-cron-backups";
  CronScheduler cron(&clock);
  int dcm_runs = 0;
  int regen_runs = 0;
  cron.Schedule("dcm", 15 * kSecondsPerMinute, [&] {
    DcmRunSummary s = dcm.RunOnce();
    ++dcm_runs;
    if (s.services_generated > 0) {
      ++regen_runs;
    }
  });
  int backups = 0;
  cron.Schedule("nightly.sh", kSecondsPerDay, [&] {
    BackupManager::RotateAndDump(db, cron_backups);
    ++backups;
  });
  for (int tick = 0; tick < 2 * 24 * 4; ++tick) {
    clock.Advance(15 * kSecondsPerMinute);
    cron.RunDue();
  }
  std::printf("2 days under cron: %d DCM invocations, %d regenerated files, %d nightly "
              "backups\n",
              dcm_runs, regen_runs, backups);

  // The mail hub switchover: the staged aliases file goes live and mail to a
  // user routes to their post office box.
  MailhubSim mailhub(directory.Find("ATHENA.MIT.EDU"));
  int alias_count = mailhub.InstallStagedAliases();
  std::printf("mailhub switchover: %d aliases live; mail to anewman reaches %zu box(es)\n",
              alias_count, mailhub.Route("anewman").size());

  // A workstation attaches the new user's locker via hes_resolve.
  HesiodProtocolServer hesiod_protocol(&hesiod);
  HesiodResolver hes_resolve(
      [&hesiod_protocol](std::string_view packet) {
        return hesiod_protocol.HandleQuery(packet);
      });
  AttachClient attach(&hes_resolve);
  FilsysEntry locker;
  if (attach.Attach("anewman", &locker) == MR_SUCCESS) {
    std::printf("workstation attached %s from %s at %s\n", locker.remote.c_str(),
                locker.server.c_str(), locker.mount.c_str());
  }

  // Recovery tooling: dbck verifies consistency, and repairs synthetic
  // damage of the kind a partial restore leaves behind.
  DbConsistencyChecker dbck(&mc);
  std::printf("dbck on the live database: %zu issues\n", dbck.Check().size());
  mc.members()->Append({Value(int64_t{999999}), Value("USER"), Value(int64_t{888888})});
  size_t damaged = dbck.Check().size();
  int repaired = dbck.Repair();
  std::printf("after injected corruption: %zu issue(s); repaired %d\n", damaged, repaired);

  // Nightly backup with three-generation rotation.
  std::filesystem::path backup_root =
      std::filesystem::temp_directory_path() / "moira-example-backups";
  int64_t bytes = BackupManager::RotateAndDump(db, backup_root);
  std::printf("nightly.sh: dumped %lld bytes of ASCII backup to %s\n",
              static_cast<long long>(bytes), backup_root.c_str());

  std::printf("full_site done\n");
  return 0;
}
