file(REMOVE_RECURSE
  "libmoira_db.a"
)
