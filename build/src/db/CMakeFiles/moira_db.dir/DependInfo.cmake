
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/moira_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/moira_db.dir/database.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/moira_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/moira_db.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
