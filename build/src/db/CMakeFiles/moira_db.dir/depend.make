# Empty dependencies file for moira_db.
# This may be replaced when dependencies are built.
