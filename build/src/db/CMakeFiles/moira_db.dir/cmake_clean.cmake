file(REMOVE_RECURSE
  "CMakeFiles/moira_db.dir/database.cc.o"
  "CMakeFiles/moira_db.dir/database.cc.o.d"
  "CMakeFiles/moira_db.dir/table.cc.o"
  "CMakeFiles/moira_db.dir/table.cc.o.d"
  "libmoira_db.a"
  "libmoira_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
