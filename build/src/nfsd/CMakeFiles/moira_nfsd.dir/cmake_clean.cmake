file(REMOVE_RECURSE
  "CMakeFiles/moira_nfsd.dir/nfs_server.cc.o"
  "CMakeFiles/moira_nfsd.dir/nfs_server.cc.o.d"
  "libmoira_nfsd.a"
  "libmoira_nfsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_nfsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
