file(REMOVE_RECURSE
  "libmoira_nfsd.a"
)
