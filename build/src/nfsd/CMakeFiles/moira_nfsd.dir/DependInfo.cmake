
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfsd/nfs_server.cc" "src/nfsd/CMakeFiles/moira_nfsd.dir/nfs_server.cc.o" "gcc" "src/nfsd/CMakeFiles/moira_nfsd.dir/nfs_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/update/CMakeFiles/moira_update.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/krb/CMakeFiles/moira_krb.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
