# Empty dependencies file for moira_nfsd.
# This may be replaced when dependencies are built.
