
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comerr/com_err.cc" "src/comerr/CMakeFiles/moira_comerr.dir/com_err.cc.o" "gcc" "src/comerr/CMakeFiles/moira_comerr.dir/com_err.cc.o.d"
  "/root/repo/src/comerr/error_table.cc" "src/comerr/CMakeFiles/moira_comerr.dir/error_table.cc.o" "gcc" "src/comerr/CMakeFiles/moira_comerr.dir/error_table.cc.o.d"
  "/root/repo/src/comerr/moira_errors.cc" "src/comerr/CMakeFiles/moira_comerr.dir/moira_errors.cc.o" "gcc" "src/comerr/CMakeFiles/moira_comerr.dir/moira_errors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
