file(REMOVE_RECURSE
  "CMakeFiles/moira_comerr.dir/com_err.cc.o"
  "CMakeFiles/moira_comerr.dir/com_err.cc.o.d"
  "CMakeFiles/moira_comerr.dir/error_table.cc.o"
  "CMakeFiles/moira_comerr.dir/error_table.cc.o.d"
  "CMakeFiles/moira_comerr.dir/moira_errors.cc.o"
  "CMakeFiles/moira_comerr.dir/moira_errors.cc.o.d"
  "libmoira_comerr.a"
  "libmoira_comerr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_comerr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
