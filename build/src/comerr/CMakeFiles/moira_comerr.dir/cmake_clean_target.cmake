file(REMOVE_RECURSE
  "libmoira_comerr.a"
)
