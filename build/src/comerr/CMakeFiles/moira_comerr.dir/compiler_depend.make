# Empty compiler generated dependencies file for moira_comerr.
# This may be replaced when dependencies are built.
