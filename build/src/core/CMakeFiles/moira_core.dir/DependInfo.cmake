
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acl.cc" "src/core/CMakeFiles/moira_core.dir/acl.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/acl.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/moira_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/context.cc.o.d"
  "/root/repo/src/core/queries_common.cc" "src/core/CMakeFiles/moira_core.dir/queries_common.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_common.cc.o.d"
  "/root/repo/src/core/queries_filesys.cc" "src/core/CMakeFiles/moira_core.dir/queries_filesys.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_filesys.cc.o.d"
  "/root/repo/src/core/queries_lists.cc" "src/core/CMakeFiles/moira_core.dir/queries_lists.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_lists.cc.o.d"
  "/root/repo/src/core/queries_machines.cc" "src/core/CMakeFiles/moira_core.dir/queries_machines.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_machines.cc.o.d"
  "/root/repo/src/core/queries_misc.cc" "src/core/CMakeFiles/moira_core.dir/queries_misc.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_misc.cc.o.d"
  "/root/repo/src/core/queries_servers.cc" "src/core/CMakeFiles/moira_core.dir/queries_servers.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_servers.cc.o.d"
  "/root/repo/src/core/queries_users.cc" "src/core/CMakeFiles/moira_core.dir/queries_users.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/queries_users.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/moira_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/registry.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/moira_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/moira_core.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/moira_db.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
