# Empty dependencies file for moira_core.
# This may be replaced when dependencies are built.
