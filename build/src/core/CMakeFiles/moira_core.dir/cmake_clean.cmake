file(REMOVE_RECURSE
  "CMakeFiles/moira_core.dir/acl.cc.o"
  "CMakeFiles/moira_core.dir/acl.cc.o.d"
  "CMakeFiles/moira_core.dir/context.cc.o"
  "CMakeFiles/moira_core.dir/context.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_common.cc.o"
  "CMakeFiles/moira_core.dir/queries_common.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_filesys.cc.o"
  "CMakeFiles/moira_core.dir/queries_filesys.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_lists.cc.o"
  "CMakeFiles/moira_core.dir/queries_lists.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_machines.cc.o"
  "CMakeFiles/moira_core.dir/queries_machines.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_misc.cc.o"
  "CMakeFiles/moira_core.dir/queries_misc.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_servers.cc.o"
  "CMakeFiles/moira_core.dir/queries_servers.cc.o.d"
  "CMakeFiles/moira_core.dir/queries_users.cc.o"
  "CMakeFiles/moira_core.dir/queries_users.cc.o.d"
  "CMakeFiles/moira_core.dir/registry.cc.o"
  "CMakeFiles/moira_core.dir/registry.cc.o.d"
  "CMakeFiles/moira_core.dir/schema.cc.o"
  "CMakeFiles/moira_core.dir/schema.cc.o.d"
  "libmoira_core.a"
  "libmoira_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
