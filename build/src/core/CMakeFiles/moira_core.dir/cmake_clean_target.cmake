file(REMOVE_RECURSE
  "libmoira_core.a"
)
