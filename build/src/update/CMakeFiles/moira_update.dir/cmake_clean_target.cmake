file(REMOVE_RECURSE
  "libmoira_update.a"
)
