# Empty dependencies file for moira_update.
# This may be replaced when dependencies are built.
