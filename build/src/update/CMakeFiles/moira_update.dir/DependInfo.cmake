
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/update/archive.cc" "src/update/CMakeFiles/moira_update.dir/archive.cc.o" "gcc" "src/update/CMakeFiles/moira_update.dir/archive.cc.o.d"
  "/root/repo/src/update/sim_host.cc" "src/update/CMakeFiles/moira_update.dir/sim_host.cc.o" "gcc" "src/update/CMakeFiles/moira_update.dir/sim_host.cc.o.d"
  "/root/repo/src/update/update_client.cc" "src/update/CMakeFiles/moira_update.dir/update_client.cc.o" "gcc" "src/update/CMakeFiles/moira_update.dir/update_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/krb/CMakeFiles/moira_krb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
