file(REMOVE_RECURSE
  "CMakeFiles/moira_update.dir/archive.cc.o"
  "CMakeFiles/moira_update.dir/archive.cc.o.d"
  "CMakeFiles/moira_update.dir/sim_host.cc.o"
  "CMakeFiles/moira_update.dir/sim_host.cc.o.d"
  "CMakeFiles/moira_update.dir/update_client.cc.o"
  "CMakeFiles/moira_update.dir/update_client.cc.o.d"
  "libmoira_update.a"
  "libmoira_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
