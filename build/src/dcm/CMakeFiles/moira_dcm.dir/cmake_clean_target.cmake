file(REMOVE_RECURSE
  "libmoira_dcm.a"
)
