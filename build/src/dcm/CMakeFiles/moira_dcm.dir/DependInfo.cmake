
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcm/cron.cc" "src/dcm/CMakeFiles/moira_dcm.dir/cron.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/cron.cc.o.d"
  "/root/repo/src/dcm/dcm.cc" "src/dcm/CMakeFiles/moira_dcm.dir/dcm.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/dcm.cc.o.d"
  "/root/repo/src/dcm/gen_common.cc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_common.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_common.cc.o.d"
  "/root/repo/src/dcm/gen_hesiod.cc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_hesiod.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_hesiod.cc.o.d"
  "/root/repo/src/dcm/gen_mail.cc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_mail.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_mail.cc.o.d"
  "/root/repo/src/dcm/gen_nfs.cc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_nfs.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_nfs.cc.o.d"
  "/root/repo/src/dcm/gen_zephyr.cc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_zephyr.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/gen_zephyr.cc.o.d"
  "/root/repo/src/dcm/locks.cc" "src/dcm/CMakeFiles/moira_dcm.dir/locks.cc.o" "gcc" "src/dcm/CMakeFiles/moira_dcm.dir/locks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/moira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/moira_update.dir/DependInfo.cmake"
  "/root/repo/build/src/zephyrd/CMakeFiles/moira_zephyrd.dir/DependInfo.cmake"
  "/root/repo/build/src/krb/CMakeFiles/moira_krb.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/moira_db.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
