# Empty compiler generated dependencies file for moira_dcm.
# This may be replaced when dependencies are built.
