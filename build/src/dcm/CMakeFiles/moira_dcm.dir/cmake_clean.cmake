file(REMOVE_RECURSE
  "CMakeFiles/moira_dcm.dir/cron.cc.o"
  "CMakeFiles/moira_dcm.dir/cron.cc.o.d"
  "CMakeFiles/moira_dcm.dir/dcm.cc.o"
  "CMakeFiles/moira_dcm.dir/dcm.cc.o.d"
  "CMakeFiles/moira_dcm.dir/gen_common.cc.o"
  "CMakeFiles/moira_dcm.dir/gen_common.cc.o.d"
  "CMakeFiles/moira_dcm.dir/gen_hesiod.cc.o"
  "CMakeFiles/moira_dcm.dir/gen_hesiod.cc.o.d"
  "CMakeFiles/moira_dcm.dir/gen_mail.cc.o"
  "CMakeFiles/moira_dcm.dir/gen_mail.cc.o.d"
  "CMakeFiles/moira_dcm.dir/gen_nfs.cc.o"
  "CMakeFiles/moira_dcm.dir/gen_nfs.cc.o.d"
  "CMakeFiles/moira_dcm.dir/gen_zephyr.cc.o"
  "CMakeFiles/moira_dcm.dir/gen_zephyr.cc.o.d"
  "CMakeFiles/moira_dcm.dir/locks.cc.o"
  "CMakeFiles/moira_dcm.dir/locks.cc.o.d"
  "libmoira_dcm.a"
  "libmoira_dcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_dcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
