file(REMOVE_RECURSE
  "CMakeFiles/moira_mailhub.dir/mailhub.cc.o"
  "CMakeFiles/moira_mailhub.dir/mailhub.cc.o.d"
  "CMakeFiles/moira_mailhub.dir/pop_server.cc.o"
  "CMakeFiles/moira_mailhub.dir/pop_server.cc.o.d"
  "libmoira_mailhub.a"
  "libmoira_mailhub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_mailhub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
