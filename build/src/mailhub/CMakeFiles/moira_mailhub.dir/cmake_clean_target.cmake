file(REMOVE_RECURSE
  "libmoira_mailhub.a"
)
