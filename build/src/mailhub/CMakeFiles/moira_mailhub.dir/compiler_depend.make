# Empty compiler generated dependencies file for moira_mailhub.
# This may be replaced when dependencies are built.
