# Empty compiler generated dependencies file for moira_backup.
# This may be replaced when dependencies are built.
