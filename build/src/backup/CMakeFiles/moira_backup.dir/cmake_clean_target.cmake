file(REMOVE_RECURSE
  "libmoira_backup.a"
)
