file(REMOVE_RECURSE
  "CMakeFiles/moira_backup.dir/backup.cc.o"
  "CMakeFiles/moira_backup.dir/backup.cc.o.d"
  "CMakeFiles/moira_backup.dir/dbck.cc.o"
  "CMakeFiles/moira_backup.dir/dbck.cc.o.d"
  "libmoira_backup.a"
  "libmoira_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
