file(REMOVE_RECURSE
  "libmoira_krb.a"
)
