
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/krb/block_cipher.cc" "src/krb/CMakeFiles/moira_krb.dir/block_cipher.cc.o" "gcc" "src/krb/CMakeFiles/moira_krb.dir/block_cipher.cc.o.d"
  "/root/repo/src/krb/crypt.cc" "src/krb/CMakeFiles/moira_krb.dir/crypt.cc.o" "gcc" "src/krb/CMakeFiles/moira_krb.dir/crypt.cc.o.d"
  "/root/repo/src/krb/kerberos.cc" "src/krb/CMakeFiles/moira_krb.dir/kerberos.cc.o" "gcc" "src/krb/CMakeFiles/moira_krb.dir/kerberos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
