# Empty compiler generated dependencies file for moira_krb.
# This may be replaced when dependencies are built.
