file(REMOVE_RECURSE
  "CMakeFiles/moira_krb.dir/block_cipher.cc.o"
  "CMakeFiles/moira_krb.dir/block_cipher.cc.o.d"
  "CMakeFiles/moira_krb.dir/crypt.cc.o"
  "CMakeFiles/moira_krb.dir/crypt.cc.o.d"
  "CMakeFiles/moira_krb.dir/kerberos.cc.o"
  "CMakeFiles/moira_krb.dir/kerberos.cc.o.d"
  "libmoira_krb.a"
  "libmoira_krb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_krb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
