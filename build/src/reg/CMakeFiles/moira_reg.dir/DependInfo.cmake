
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reg/regserver.cc" "src/reg/CMakeFiles/moira_reg.dir/regserver.cc.o" "gcc" "src/reg/CMakeFiles/moira_reg.dir/regserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/moira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/krb/CMakeFiles/moira_krb.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/moira_db.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
