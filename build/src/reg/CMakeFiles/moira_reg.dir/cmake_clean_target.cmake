file(REMOVE_RECURSE
  "libmoira_reg.a"
)
