# Empty dependencies file for moira_reg.
# This may be replaced when dependencies are built.
