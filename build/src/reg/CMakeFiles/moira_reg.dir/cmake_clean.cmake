file(REMOVE_RECURSE
  "CMakeFiles/moira_reg.dir/regserver.cc.o"
  "CMakeFiles/moira_reg.dir/regserver.cc.o.d"
  "libmoira_reg.a"
  "libmoira_reg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
