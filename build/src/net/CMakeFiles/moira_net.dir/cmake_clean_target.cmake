file(REMOVE_RECURSE
  "libmoira_net.a"
)
