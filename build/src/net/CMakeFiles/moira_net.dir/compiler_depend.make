# Empty compiler generated dependencies file for moira_net.
# This may be replaced when dependencies are built.
