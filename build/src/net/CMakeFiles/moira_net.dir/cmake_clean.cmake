file(REMOVE_RECURSE
  "CMakeFiles/moira_net.dir/channel.cc.o"
  "CMakeFiles/moira_net.dir/channel.cc.o.d"
  "CMakeFiles/moira_net.dir/tcp.cc.o"
  "CMakeFiles/moira_net.dir/tcp.cc.o.d"
  "libmoira_net.a"
  "libmoira_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
