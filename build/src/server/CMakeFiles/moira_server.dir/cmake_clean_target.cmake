file(REMOVE_RECURSE
  "libmoira_server.a"
)
