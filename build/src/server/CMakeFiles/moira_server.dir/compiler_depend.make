# Empty compiler generated dependencies file for moira_server.
# This may be replaced when dependencies are built.
