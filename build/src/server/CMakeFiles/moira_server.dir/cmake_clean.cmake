file(REMOVE_RECURSE
  "CMakeFiles/moira_server.dir/journal.cc.o"
  "CMakeFiles/moira_server.dir/journal.cc.o.d"
  "CMakeFiles/moira_server.dir/server.cc.o"
  "CMakeFiles/moira_server.dir/server.cc.o.d"
  "libmoira_server.a"
  "libmoira_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
