# Empty compiler generated dependencies file for moira_common.
# This may be replaced when dependencies are built.
