file(REMOVE_RECURSE
  "libmoira_common.a"
)
