
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/checksum.cc" "src/common/CMakeFiles/moira_common.dir/checksum.cc.o" "gcc" "src/common/CMakeFiles/moira_common.dir/checksum.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/common/CMakeFiles/moira_common.dir/clock.cc.o" "gcc" "src/common/CMakeFiles/moira_common.dir/clock.cc.o.d"
  "/root/repo/src/common/strutil.cc" "src/common/CMakeFiles/moira_common.dir/strutil.cc.o" "gcc" "src/common/CMakeFiles/moira_common.dir/strutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
