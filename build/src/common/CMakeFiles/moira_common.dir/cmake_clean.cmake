file(REMOVE_RECURSE
  "CMakeFiles/moira_common.dir/checksum.cc.o"
  "CMakeFiles/moira_common.dir/checksum.cc.o.d"
  "CMakeFiles/moira_common.dir/clock.cc.o"
  "CMakeFiles/moira_common.dir/clock.cc.o.d"
  "CMakeFiles/moira_common.dir/strutil.cc.o"
  "CMakeFiles/moira_common.dir/strutil.cc.o.d"
  "libmoira_common.a"
  "libmoira_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
