# Empty compiler generated dependencies file for moira_sim.
# This may be replaced when dependencies are built.
