file(REMOVE_RECURSE
  "CMakeFiles/moira_sim.dir/population.cc.o"
  "CMakeFiles/moira_sim.dir/population.cc.o.d"
  "libmoira_sim.a"
  "libmoira_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
