file(REMOVE_RECURSE
  "libmoira_sim.a"
)
