# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("comerr")
subdirs("common")
subdirs("db")
subdirs("krb")
subdirs("core")
subdirs("protocol")
subdirs("net")
subdirs("server")
subdirs("client")
subdirs("zephyrd")
subdirs("hesiod")
subdirs("update")
subdirs("dcm")
subdirs("reg")
subdirs("backup")
subdirs("sim")
subdirs("nfsd")
subdirs("mailhub")
