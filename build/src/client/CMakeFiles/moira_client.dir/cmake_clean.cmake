file(REMOVE_RECURSE
  "CMakeFiles/moira_client.dir/attach.cc.o"
  "CMakeFiles/moira_client.dir/attach.cc.o.d"
  "CMakeFiles/moira_client.dir/client.cc.o"
  "CMakeFiles/moira_client.dir/client.cc.o.d"
  "CMakeFiles/moira_client.dir/menu.cc.o"
  "CMakeFiles/moira_client.dir/menu.cc.o.d"
  "libmoira_client.a"
  "libmoira_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
