file(REMOVE_RECURSE
  "libmoira_client.a"
)
