# Empty dependencies file for moira_client.
# This may be replaced when dependencies are built.
