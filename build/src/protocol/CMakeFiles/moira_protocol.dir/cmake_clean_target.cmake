file(REMOVE_RECURSE
  "libmoira_protocol.a"
)
