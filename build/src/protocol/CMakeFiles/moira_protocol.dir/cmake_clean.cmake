file(REMOVE_RECURSE
  "CMakeFiles/moira_protocol.dir/wire.cc.o"
  "CMakeFiles/moira_protocol.dir/wire.cc.o.d"
  "libmoira_protocol.a"
  "libmoira_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
