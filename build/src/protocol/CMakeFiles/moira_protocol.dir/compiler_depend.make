# Empty compiler generated dependencies file for moira_protocol.
# This may be replaced when dependencies are built.
