file(REMOVE_RECURSE
  "CMakeFiles/moira_hesiod.dir/hesiod.cc.o"
  "CMakeFiles/moira_hesiod.dir/hesiod.cc.o.d"
  "CMakeFiles/moira_hesiod.dir/resolver.cc.o"
  "CMakeFiles/moira_hesiod.dir/resolver.cc.o.d"
  "libmoira_hesiod.a"
  "libmoira_hesiod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_hesiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
