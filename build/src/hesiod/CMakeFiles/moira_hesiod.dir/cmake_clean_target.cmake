file(REMOVE_RECURSE
  "libmoira_hesiod.a"
)
