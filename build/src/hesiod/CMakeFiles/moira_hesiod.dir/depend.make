# Empty dependencies file for moira_hesiod.
# This may be replaced when dependencies are built.
