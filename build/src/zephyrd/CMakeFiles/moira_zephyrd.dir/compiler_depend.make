# Empty compiler generated dependencies file for moira_zephyrd.
# This may be replaced when dependencies are built.
