file(REMOVE_RECURSE
  "libmoira_zephyrd.a"
)
