file(REMOVE_RECURSE
  "CMakeFiles/moira_zephyrd.dir/zephyr_bus.cc.o"
  "CMakeFiles/moira_zephyrd.dir/zephyr_bus.cc.o.d"
  "CMakeFiles/moira_zephyrd.dir/zephyr_server.cc.o"
  "CMakeFiles/moira_zephyrd.dir/zephyr_server.cc.o.d"
  "libmoira_zephyrd.a"
  "libmoira_zephyrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_zephyrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
