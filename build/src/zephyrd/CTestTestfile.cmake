# CMake generated Testfile for 
# Source directory: /root/repo/src/zephyrd
# Build directory: /root/repo/build/src/zephyrd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
