file(REMOVE_RECURSE
  "CMakeFiles/full_site.dir/full_site.cpp.o"
  "CMakeFiles/full_site.dir/full_site.cpp.o.d"
  "full_site"
  "full_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
