# Empty compiler generated dependencies file for full_site.
# This may be replaced when dependencies are built.
