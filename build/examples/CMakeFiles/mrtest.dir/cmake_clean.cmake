file(REMOVE_RECURSE
  "CMakeFiles/mrtest.dir/mrtest.cpp.o"
  "CMakeFiles/mrtest.dir/mrtest.cpp.o.d"
  "mrtest"
  "mrtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
