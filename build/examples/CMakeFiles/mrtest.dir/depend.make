# Empty dependencies file for mrtest.
# This may be replaced when dependencies are built.
