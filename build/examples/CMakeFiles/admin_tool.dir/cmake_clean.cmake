file(REMOVE_RECURSE
  "CMakeFiles/admin_tool.dir/admin_tool.cpp.o"
  "CMakeFiles/admin_tool.dir/admin_tool.cpp.o.d"
  "admin_tool"
  "admin_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
