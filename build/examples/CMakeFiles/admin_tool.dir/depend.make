# Empty dependencies file for admin_tool.
# This may be replaced when dependencies are built.
