file(REMOVE_RECURSE
  "CMakeFiles/userreg_demo.dir/userreg_demo.cpp.o"
  "CMakeFiles/userreg_demo.dir/userreg_demo.cpp.o.d"
  "userreg_demo"
  "userreg_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userreg_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
