# Empty compiler generated dependencies file for userreg_demo.
# This may be replaced when dependencies are built.
