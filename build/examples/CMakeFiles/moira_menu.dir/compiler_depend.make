# Empty compiler generated dependencies file for moira_menu.
# This may be replaced when dependencies are built.
