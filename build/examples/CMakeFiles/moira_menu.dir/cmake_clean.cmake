file(REMOVE_RECURSE
  "CMakeFiles/moira_menu.dir/moira_menu.cpp.o"
  "CMakeFiles/moira_menu.dir/moira_menu.cpp.o.d"
  "moira_menu"
  "moira_menu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moira_menu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
