file(REMOVE_RECURSE
  "CMakeFiles/moirad.dir/moirad.cpp.o"
  "CMakeFiles/moirad.dir/moirad.cpp.o.d"
  "moirad"
  "moirad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moirad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
