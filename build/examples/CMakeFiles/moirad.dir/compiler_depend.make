# Empty compiler generated dependencies file for moirad.
# This may be replaced when dependencies are built.
