file(REMOVE_RECURSE
  "CMakeFiles/test_schema_context.dir/test_schema_context.cc.o"
  "CMakeFiles/test_schema_context.dir/test_schema_context.cc.o.d"
  "test_schema_context"
  "test_schema_context.pdb"
  "test_schema_context[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schema_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
