# Empty dependencies file for test_schema_context.
# This may be replaced when dependencies are built.
