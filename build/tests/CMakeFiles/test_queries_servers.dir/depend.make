# Empty dependencies file for test_queries_servers.
# This may be replaced when dependencies are built.
