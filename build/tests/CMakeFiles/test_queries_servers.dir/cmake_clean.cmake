file(REMOVE_RECURSE
  "CMakeFiles/test_queries_servers.dir/test_queries_servers.cc.o"
  "CMakeFiles/test_queries_servers.dir/test_queries_servers.cc.o.d"
  "test_queries_servers"
  "test_queries_servers.pdb"
  "test_queries_servers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
