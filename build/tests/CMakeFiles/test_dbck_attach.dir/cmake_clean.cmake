file(REMOVE_RECURSE
  "CMakeFiles/test_dbck_attach.dir/test_dbck_attach.cc.o"
  "CMakeFiles/test_dbck_attach.dir/test_dbck_attach.cc.o.d"
  "test_dbck_attach"
  "test_dbck_attach.pdb"
  "test_dbck_attach[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbck_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
