# Empty compiler generated dependencies file for test_dbck_attach.
# This may be replaced when dependencies are built.
