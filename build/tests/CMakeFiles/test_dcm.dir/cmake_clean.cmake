file(REMOVE_RECURSE
  "CMakeFiles/test_dcm.dir/test_dcm.cc.o"
  "CMakeFiles/test_dcm.dir/test_dcm.cc.o.d"
  "test_dcm"
  "test_dcm.pdb"
  "test_dcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
