# Empty dependencies file for test_dcm.
# This may be replaced when dependencies are built.
