# Empty dependencies file for test_server_client.
# This may be replaced when dependencies are built.
