file(REMOVE_RECURSE
  "CMakeFiles/test_server_client.dir/test_server_client.cc.o"
  "CMakeFiles/test_server_client.dir/test_server_client.cc.o.d"
  "test_server_client"
  "test_server_client.pdb"
  "test_server_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
