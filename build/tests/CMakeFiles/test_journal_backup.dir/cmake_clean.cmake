file(REMOVE_RECURSE
  "CMakeFiles/test_journal_backup.dir/test_journal_backup.cc.o"
  "CMakeFiles/test_journal_backup.dir/test_journal_backup.cc.o.d"
  "test_journal_backup"
  "test_journal_backup.pdb"
  "test_journal_backup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journal_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
