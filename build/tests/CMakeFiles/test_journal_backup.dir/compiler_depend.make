# Empty compiler generated dependencies file for test_journal_backup.
# This may be replaced when dependencies are built.
