file(REMOVE_RECURSE
  "CMakeFiles/test_consumers.dir/test_consumers.cc.o"
  "CMakeFiles/test_consumers.dir/test_consumers.cc.o.d"
  "test_consumers"
  "test_consumers.pdb"
  "test_consumers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consumers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
