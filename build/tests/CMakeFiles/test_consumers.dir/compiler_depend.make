# Empty compiler generated dependencies file for test_consumers.
# This may be replaced when dependencies are built.
