file(REMOVE_RECURSE
  "CMakeFiles/test_queries_filesys.dir/test_queries_filesys.cc.o"
  "CMakeFiles/test_queries_filesys.dir/test_queries_filesys.cc.o.d"
  "test_queries_filesys"
  "test_queries_filesys.pdb"
  "test_queries_filesys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_filesys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
