# Empty compiler generated dependencies file for test_queries_filesys.
# This may be replaced when dependencies are built.
