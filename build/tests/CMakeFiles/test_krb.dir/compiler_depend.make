# Empty compiler generated dependencies file for test_krb.
# This may be replaced when dependencies are built.
