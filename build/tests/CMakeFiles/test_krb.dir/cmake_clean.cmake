file(REMOVE_RECURSE
  "CMakeFiles/test_krb.dir/test_krb.cc.o"
  "CMakeFiles/test_krb.dir/test_krb.cc.o.d"
  "test_krb"
  "test_krb.pdb"
  "test_krb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_krb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
