# Empty compiler generated dependencies file for test_menu_cron.
# This may be replaced when dependencies are built.
