file(REMOVE_RECURSE
  "CMakeFiles/test_menu_cron.dir/test_menu_cron.cc.o"
  "CMakeFiles/test_menu_cron.dir/test_menu_cron.cc.o.d"
  "test_menu_cron"
  "test_menu_cron.pdb"
  "test_menu_cron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_menu_cron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
