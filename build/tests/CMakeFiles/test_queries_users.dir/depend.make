# Empty dependencies file for test_queries_users.
# This may be replaced when dependencies are built.
