file(REMOVE_RECURSE
  "CMakeFiles/test_queries_users.dir/test_queries_users.cc.o"
  "CMakeFiles/test_queries_users.dir/test_queries_users.cc.o.d"
  "test_queries_users"
  "test_queries_users.pdb"
  "test_queries_users[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
