file(REMOVE_RECURSE
  "CMakeFiles/test_comerr.dir/test_comerr.cc.o"
  "CMakeFiles/test_comerr.dir/test_comerr.cc.o.d"
  "test_comerr"
  "test_comerr.pdb"
  "test_comerr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comerr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
