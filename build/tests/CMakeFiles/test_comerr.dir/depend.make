# Empty dependencies file for test_comerr.
# This may be replaced when dependencies are built.
