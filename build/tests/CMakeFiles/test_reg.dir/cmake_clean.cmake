file(REMOVE_RECURSE
  "CMakeFiles/test_reg.dir/test_reg.cc.o"
  "CMakeFiles/test_reg.dir/test_reg.cc.o.d"
  "test_reg"
  "test_reg.pdb"
  "test_reg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
