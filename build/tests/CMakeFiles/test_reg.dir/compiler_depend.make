# Empty compiler generated dependencies file for test_reg.
# This may be replaced when dependencies are built.
