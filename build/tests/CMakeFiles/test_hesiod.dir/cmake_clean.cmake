file(REMOVE_RECURSE
  "CMakeFiles/test_hesiod.dir/test_hesiod.cc.o"
  "CMakeFiles/test_hesiod.dir/test_hesiod.cc.o.d"
  "test_hesiod"
  "test_hesiod.pdb"
  "test_hesiod[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hesiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
