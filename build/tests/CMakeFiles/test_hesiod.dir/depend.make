# Empty dependencies file for test_hesiod.
# This may be replaced when dependencies are built.
