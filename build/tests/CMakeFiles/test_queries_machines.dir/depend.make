# Empty dependencies file for test_queries_machines.
# This may be replaced when dependencies are built.
