file(REMOVE_RECURSE
  "CMakeFiles/test_queries_machines.dir/test_queries_machines.cc.o"
  "CMakeFiles/test_queries_machines.dir/test_queries_machines.cc.o.d"
  "test_queries_machines"
  "test_queries_machines.pdb"
  "test_queries_machines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
