# Empty compiler generated dependencies file for test_locks.
# This may be replaced when dependencies are built.
