file(REMOVE_RECURSE
  "CMakeFiles/test_registry_sweep.dir/test_registry_sweep.cc.o"
  "CMakeFiles/test_registry_sweep.dir/test_registry_sweep.cc.o.d"
  "test_registry_sweep"
  "test_registry_sweep.pdb"
  "test_registry_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registry_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
