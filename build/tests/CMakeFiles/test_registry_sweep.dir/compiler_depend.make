# Empty compiler generated dependencies file for test_registry_sweep.
# This may be replaced when dependencies are built.
