# Empty dependencies file for test_queries_misc.
# This may be replaced when dependencies are built.
