file(REMOVE_RECURSE
  "CMakeFiles/test_queries_misc.dir/test_queries_misc.cc.o"
  "CMakeFiles/test_queries_misc.dir/test_queries_misc.cc.o.d"
  "test_queries_misc"
  "test_queries_misc.pdb"
  "test_queries_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
