file(REMOVE_RECURSE
  "CMakeFiles/test_strutil.dir/test_strutil.cc.o"
  "CMakeFiles/test_strutil.dir/test_strutil.cc.o.d"
  "test_strutil"
  "test_strutil.pdb"
  "test_strutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
