file(REMOVE_RECURSE
  "CMakeFiles/test_update.dir/test_update.cc.o"
  "CMakeFiles/test_update.dir/test_update.cc.o.d"
  "test_update"
  "test_update.pdb"
  "test_update[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
