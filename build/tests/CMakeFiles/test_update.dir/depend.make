# Empty dependencies file for test_update.
# This may be replaced when dependencies are built.
