# Empty compiler generated dependencies file for test_queries_lists.
# This may be replaced when dependencies are built.
