file(REMOVE_RECURSE
  "CMakeFiles/test_queries_lists.dir/test_queries_lists.cc.o"
  "CMakeFiles/test_queries_lists.dir/test_queries_lists.cc.o.d"
  "test_queries_lists"
  "test_queries_lists.pdb"
  "test_queries_lists[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
