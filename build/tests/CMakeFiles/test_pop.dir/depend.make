# Empty dependencies file for test_pop.
# This may be replaced when dependencies are built.
