file(REMOVE_RECURSE
  "CMakeFiles/test_pop.dir/test_pop.cc.o"
  "CMakeFiles/test_pop.dir/test_pop.cc.o.d"
  "test_pop"
  "test_pop.pdb"
  "test_pop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
