file(REMOVE_RECURSE
  "CMakeFiles/test_mailhub.dir/test_mailhub.cc.o"
  "CMakeFiles/test_mailhub.dir/test_mailhub.cc.o.d"
  "test_mailhub"
  "test_mailhub.pdb"
  "test_mailhub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mailhub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
