# Empty compiler generated dependencies file for test_mailhub.
# This may be replaced when dependencies are built.
