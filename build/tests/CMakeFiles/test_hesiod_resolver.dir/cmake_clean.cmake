file(REMOVE_RECURSE
  "CMakeFiles/test_hesiod_resolver.dir/test_hesiod_resolver.cc.o"
  "CMakeFiles/test_hesiod_resolver.dir/test_hesiod_resolver.cc.o.d"
  "test_hesiod_resolver"
  "test_hesiod_resolver.pdb"
  "test_hesiod_resolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hesiod_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
