# Empty dependencies file for test_hesiod_resolver.
# This may be replaced when dependencies are built.
