file(REMOVE_RECURSE
  "CMakeFiles/bench_registration.dir/bench_registration.cc.o"
  "CMakeFiles/bench_registration.dir/bench_registration.cc.o.d"
  "bench_registration"
  "bench_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
