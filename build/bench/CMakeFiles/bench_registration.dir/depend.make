# Empty dependencies file for bench_registration.
# This may be replaced when dependencies are built.
