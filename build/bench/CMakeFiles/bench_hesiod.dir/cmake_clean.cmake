file(REMOVE_RECURSE
  "CMakeFiles/bench_hesiod.dir/bench_hesiod.cc.o"
  "CMakeFiles/bench_hesiod.dir/bench_hesiod.cc.o.d"
  "bench_hesiod"
  "bench_hesiod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hesiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
