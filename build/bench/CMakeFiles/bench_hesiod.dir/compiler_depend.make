# Empty compiler generated dependencies file for bench_hesiod.
# This may be replaced when dependencies are built.
