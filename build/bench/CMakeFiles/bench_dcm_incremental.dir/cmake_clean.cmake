file(REMOVE_RECURSE
  "CMakeFiles/bench_dcm_incremental.dir/bench_dcm_incremental.cc.o"
  "CMakeFiles/bench_dcm_incremental.dir/bench_dcm_incremental.cc.o.d"
  "bench_dcm_incremental"
  "bench_dcm_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcm_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
