# Empty dependencies file for bench_dcm_incremental.
# This may be replaced when dependencies are built.
