
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_file_organization.cc" "bench/CMakeFiles/bench_file_organization.dir/bench_file_organization.cc.o" "gcc" "bench/CMakeFiles/bench_file_organization.dir/bench_file_organization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/moira_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nfsd/CMakeFiles/moira_nfsd.dir/DependInfo.cmake"
  "/root/repo/build/src/mailhub/CMakeFiles/moira_mailhub.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/moira_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/reg/CMakeFiles/moira_reg.dir/DependInfo.cmake"
  "/root/repo/build/src/dcm/CMakeFiles/moira_dcm.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/moira_update.dir/DependInfo.cmake"
  "/root/repo/build/src/hesiod/CMakeFiles/moira_hesiod.dir/DependInfo.cmake"
  "/root/repo/build/src/zephyrd/CMakeFiles/moira_zephyrd.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/moira_server.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/moira_client.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/moira_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/moira_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/moira_core.dir/DependInfo.cmake"
  "/root/repo/build/src/krb/CMakeFiles/moira_krb.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/moira_db.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/moira_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comerr/CMakeFiles/moira_comerr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
