# Empty dependencies file for bench_file_organization.
# This may be replaced when dependencies are built.
