file(REMOVE_RECURSE
  "CMakeFiles/bench_file_organization.dir/bench_file_organization.cc.o"
  "CMakeFiles/bench_file_organization.dir/bench_file_organization.cc.o.d"
  "bench_file_organization"
  "bench_file_organization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_organization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
