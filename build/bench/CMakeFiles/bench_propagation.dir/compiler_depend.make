# Empty compiler generated dependencies file for bench_propagation.
# This may be replaced when dependencies are built.
