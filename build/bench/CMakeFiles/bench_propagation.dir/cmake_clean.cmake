file(REMOVE_RECURSE
  "CMakeFiles/bench_propagation.dir/bench_propagation.cc.o"
  "CMakeFiles/bench_propagation.dir/bench_propagation.cc.o.d"
  "bench_propagation"
  "bench_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
