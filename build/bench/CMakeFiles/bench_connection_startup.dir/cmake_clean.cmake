file(REMOVE_RECURSE
  "CMakeFiles/bench_connection_startup.dir/bench_connection_startup.cc.o"
  "CMakeFiles/bench_connection_startup.dir/bench_connection_startup.cc.o.d"
  "bench_connection_startup"
  "bench_connection_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connection_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
