# Empty compiler generated dependencies file for bench_connection_startup.
# This may be replaced when dependencies are built.
