file(REMOVE_RECURSE
  "CMakeFiles/bench_layers.dir/bench_layers.cc.o"
  "CMakeFiles/bench_layers.dir/bench_layers.cc.o.d"
  "bench_layers"
  "bench_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
