# Empty dependencies file for bench_layers.
# This may be replaced when dependencies are built.
