# Empty dependencies file for bench_backup.
# This may be replaced when dependencies are built.
