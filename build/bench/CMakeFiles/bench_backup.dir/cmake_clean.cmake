file(REMOVE_RECURSE
  "CMakeFiles/bench_backup.dir/bench_backup.cc.o"
  "CMakeFiles/bench_backup.dir/bench_backup.cc.o.d"
  "bench_backup"
  "bench_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
