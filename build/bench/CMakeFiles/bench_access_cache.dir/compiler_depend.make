# Empty compiler generated dependencies file for bench_access_cache.
# This may be replaced when dependencies are built.
