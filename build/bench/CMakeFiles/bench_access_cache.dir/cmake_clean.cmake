file(REMOVE_RECURSE
  "CMakeFiles/bench_access_cache.dir/bench_access_cache.cc.o"
  "CMakeFiles/bench_access_cache.dir/bench_access_cache.cc.o.d"
  "bench_access_cache"
  "bench_access_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
