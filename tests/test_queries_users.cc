// Tests for the users / finger / pobox queries (paper section 7.0.1).
#include "tests/test_env.h"

namespace moira {
namespace {

class UserQueriesTest : public MoiraEnv {
 protected:
  void SetUp() override {
    // A POP server and an NFS partition so register_user can allocate.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"po-1.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"nfs-1.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info",
                                  {"POP", "0", "", "", "UNIQUE", "1", "NONE", "NONE"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                  {"POP", "po-1.mit.edu", "1", "0", "500", ""}));
    ASSERT_EQ(MR_SUCCESS,
              RunRoot("add_nfsphys", {"nfs-1.mit.edu", "/u1", "ra00",
                                      std::to_string(kFsStudent), "0", "100000"}));
  }
};

TEST_F(UserQueriesTest, AddAndGetByLogin) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {"babette", "6530", "/bin/csh", "Fowler",
                                             "Harmon", "C", "1", "HFabc", "G"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"babette"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  const Tuple& t = tuples[0];
  ASSERT_EQ(12u, t.size());
  EXPECT_EQ("babette", t[0]);
  EXPECT_EQ("6530", t[1]);
  EXPECT_EQ("/bin/csh", t[2]);
  EXPECT_EQ("Fowler", t[3]);
  EXPECT_EQ("Harmon", t[4]);
  EXPECT_EQ("C", t[5]);
  EXPECT_EQ("1", t[6]);
  EXPECT_EQ("HFabc", t[7]);
  EXPECT_EQ("G", t[8]);
}

TEST_F(UserQueriesTest, AddUserRejectsDuplicateLogin) {
  AddActiveUser("dup", 100);
  EXPECT_EQ(MR_NOT_UNIQUE, RunRoot("add_user", {"dup", "101", "/bin/csh", "L", "F", "M",
                                                "1", "id", "G"}));
}

TEST_F(UserQueriesTest, AddUserValidatesClassAndIntegers) {
  EXPECT_EQ(MR_BAD_CLASS, RunRoot("add_user", {"u1", "100", "/bin/csh", "L", "F", "M", "1",
                                               "id", "SOPHMORE"}));
  EXPECT_EQ(MR_INTEGER, RunRoot("add_user", {"u1", "abc", "/bin/csh", "L", "F", "M", "1",
                                             "id", "G"}));
  EXPECT_EQ(MR_INTEGER, RunRoot("add_user", {"u1", "100", "/bin/csh", "L", "F", "M", "x",
                                             "id", "G"}));
  EXPECT_EQ(MR_BAD_CHAR, RunRoot("add_user", {"bad:login", "100", "/bin/csh", "L", "F",
                                              "M", "1", "id", "G"}));
}

TEST_F(UserQueriesTest, UniqueUidAndUniqueLogin) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "Fowler",
                                             "Harmon", "C", "0", "hash", "1989"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"Harmon", "Fowler"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  // Login is "#" followed by the allocated uid.
  EXPECT_EQ("#" + tuples[0][1], tuples[0][0]);
}

TEST_F(UserQueriesTest, GetAllLoginsAndActive) {
  AddActiveUser("active1", 201);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {"inactive1", "202", "/bin/csh", "L", "F", "M",
                                             "0", "id", "G"}));
  std::vector<Tuple> all;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_all_logins", {}, &all));
  EXPECT_EQ(2u, all.size());
  std::vector<Tuple> active;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_all_active_logins", {}, &active));
  ASSERT_EQ(1u, active.size());
  EXPECT_EQ("active1", active[0][0]);
  EXPECT_EQ(6u, active[0].size());
}

TEST_F(UserQueriesTest, LookupsByUidNameClassMitid) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {"zeta", "399", "/bin/sh", "Zimmer", "Karl",
                                             "Q", "1", "KZhash", "1990"}));
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_user_by_uid", {"399"}, &tuples));
  EXPECT_EQ(1u, tuples.size());
  tuples.clear();
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"K*", "Zim*"}, &tuples));
  EXPECT_EQ(1u, tuples.size());
  tuples.clear();
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_user_by_class", {"1990"}, &tuples));
  EXPECT_EQ(1u, tuples.size());
  tuples.clear();
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_user_by_mitid", {"KZhash"}, &tuples));
  EXPECT_EQ(1u, tuples.size());
  EXPECT_EQ(MR_NO_MATCH, RunRoot("get_user_by_uid", {"77777"}));
  EXPECT_EQ(MR_INTEGER, RunRoot("get_user_by_uid", {"notanumber"}));
}

TEST_F(UserQueriesTest, WildcardLoginRetrieval) {
  AddActiveUser("wild1", 301);
  AddActiveUser("wild2", 302);
  AddActiveUser("tame", 303);
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"wild*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
}

TEST_F(UserQueriesTest, NonPrivilegedSeesOnlySelf) {
  AddActiveUser("alice", 401);
  AddActiveUser("bob", 402);
  std::vector<Tuple> tuples;
  // alice asking about herself: allowed.
  EXPECT_EQ(MR_SUCCESS, Run("alice", "get_user_by_login", {"alice"}, &tuples));
  // alice asking about bob: denied.
  EXPECT_EQ(MR_PERM, Run("alice", "get_user_by_login", {"bob"}));
  // alice asking by her own uid: allowed through the handler's self filter.
  EXPECT_EQ(MR_SUCCESS, Run("alice", "get_user_by_uid", {"401"}));
  EXPECT_EQ(MR_PERM, Run("alice", "get_user_by_uid", {"402"}));
}

TEST_F(UserQueriesTest, UpdateUserFullRewrite) {
  AddActiveUser("renameme", 500);
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_user", {"renameme", "renamed", "501", "/bin/sh",
                                                "NewLast", "NewFirst", "Z", "1", "newid",
                                                "STAFF"}));
  EXPECT_EQ(MR_USER, RunRoot("update_user", {"renameme", "x", "1", "s", "l", "f", "m", "1",
                                             "i", "G"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"renamed"}, &tuples));
  EXPECT_EQ("501", tuples[0][1]);
  EXPECT_EQ("STAFF", tuples[0][8]);
}

TEST_F(UserQueriesTest, UpdateUserRejectsTakenNewLogin) {
  AddActiveUser("u1", 601);
  AddActiveUser("u2", 602);
  EXPECT_EQ(MR_NOT_UNIQUE, RunRoot("update_user", {"u1", "u2", "601", "/bin/csh", "L", "F",
                                                   "M", "1", "id", "G"}));
}

TEST_F(UserQueriesTest, ShellAndStatusUpdates) {
  AddActiveUser("chsh", 700);
  // A user may change their own shell...
  EXPECT_EQ(MR_SUCCESS, Run("chsh", "update_user_shell", {"chsh", "/bin/newsh"}));
  // ...but not someone else's.
  AddActiveUser("other", 701);
  EXPECT_EQ(MR_PERM, Run("other", "update_user_shell", {"chsh", "/bin/evil"}));
  // Nor their own status.
  EXPECT_EQ(MR_PERM, Run("chsh", "update_user_status", {"chsh", "0"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("update_user_status", {"chsh", "3"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"chsh"}, &tuples));
  EXPECT_EQ("/bin/newsh", tuples[0][2]);
  EXPECT_EQ("3", tuples[0][6]);
}

TEST_F(UserQueriesTest, DeleteUserRequiresStatusZeroAndNoReferences) {
  AddActiveUser("victim", 800);
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_user", {"victim"}));  // status 1
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_user_status", {"victim", "0"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"holders", "1", "0", "0", "0", "0", "-1",
                                             "NONE", "NONE", "d"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"holders", "USER", "victim"}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_user", {"victim"}));  // list member
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_member_from_list", {"holders", "USER", "victim"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_user", {"victim"}));
  EXPECT_EQ(MR_USER, RunRoot("delete_user", {"victim"}));
}

TEST_F(UserQueriesTest, DeleteUserByUid) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {"uidvictim", "900", "/bin/csh", "L", "F", "M",
                                             "0", "id", "G"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_user_by_uid", {"900"}));
  EXPECT_EQ(MR_USER, RunRoot("delete_user_by_uid", {"900"}));
}

TEST_F(UserQueriesTest, FingerRoundTrip) {
  AddActiveUser("finger", 1000);
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("update_finger_by_login",
                    {"finger", "Full Name", "nick", "1 Home St", "555-0100",
                     "E40-342", "555-0200", "EECS", "undergraduate"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_finger_by_login", {"finger"}, &tuples));
  ASSERT_EQ(12u, tuples[0].size());
  EXPECT_EQ("Full Name", tuples[0][1]);
  EXPECT_EQ("nick", tuples[0][2]);
  EXPECT_EQ("EECS", tuples[0][7]);
  EXPECT_EQ("undergraduate", tuples[0][8]);
  // Self-service finger update is allowed.
  EXPECT_EQ(MR_SUCCESS, Run("finger", "update_finger_by_login",
                            {"finger", "F", "", "", "", "", "", "", ""}));
  AddActiveUser("stranger", 1001);
  EXPECT_EQ(MR_PERM, Run("stranger", "update_finger_by_login",
                         {"finger", "X", "", "", "", "", "", "", ""}));
}

TEST_F(UserQueriesTest, PoboxLifecycle) {
  AddActiveUser("mailer", 1100);
  // New users default to no pobox.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"mailer"}, &tuples));
  EXPECT_EQ("NONE", tuples[0][1]);
  // POP requires a known machine.
  EXPECT_EQ(MR_MACHINE, RunRoot("set_pobox", {"mailer", "POP", "e40-p0"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("set_pobox", {"mailer", "POP", "po-1.mit.edu"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"mailer"}, &tuples));
  EXPECT_EQ("POP", tuples[0][1]);
  EXPECT_EQ("PO-1.MIT.EDU", tuples[0][2]);
  // SMTP stores the address via the strings relation.
  EXPECT_EQ(MR_SUCCESS, RunRoot("set_pobox", {"mailer", "SMTP", "mailer@other.edu"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"mailer"}, &tuples));
  EXPECT_EQ("SMTP", tuples[0][1]);
  EXPECT_EQ("mailer@other.edu", tuples[0][2]);
  // Invalid type.
  EXPECT_EQ(MR_TYPE, RunRoot("set_pobox", {"mailer", "UUCP", "x"}));
  // Delete sets type NONE.
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_pobox", {"mailer"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"mailer"}, &tuples));
  EXPECT_EQ("NONE", tuples[0][1]);
  // set_pobox_pop restores the previous POP machine.
  EXPECT_EQ(MR_SUCCESS, RunRoot("set_pobox_pop", {"mailer"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"mailer"}, &tuples));
  EXPECT_EQ("POP", tuples[0][1]);
  EXPECT_EQ("PO-1.MIT.EDU", tuples[0][2]);
}

TEST_F(UserQueriesTest, SetPoboxPopWithoutHistoryFails) {
  AddActiveUser("nohist", 1200);
  EXPECT_EQ(MR_MACHINE, RunRoot("set_pobox_pop", {"nohist"}));
}

TEST_F(UserQueriesTest, PoboxEnumerationQueries) {
  AddActiveUser("pop1", 1300);
  AddActiveUser("smtp1", 1301);
  AddActiveUser("none1", 1302);
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_pobox", {"pop1", "POP", "po-1.mit.edu"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_pobox", {"smtp1", "SMTP", "s@x.edu"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_all_poboxes", {}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_poboxes_pop", {}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("pop1", tuples[0][0]);
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_poboxes_smtp", {}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("smtp1", tuples[0][0]);
}

TEST_F(UserQueriesTest, PoboxSelfService) {
  AddActiveUser("selfpo", 1400);
  AddActiveUser("peer", 1401);
  EXPECT_EQ(MR_SUCCESS, Run("selfpo", "set_pobox", {"selfpo", "POP", "po-1.mit.edu"}));
  EXPECT_EQ(MR_PERM, Run("peer", "set_pobox", {"selfpo", "NONE", ""}));
  EXPECT_EQ(MR_SUCCESS, Run("selfpo", "get_pobox", {"selfpo"}));
  EXPECT_EQ(MR_PERM, Run("peer", "get_pobox", {"selfpo"}));
}

TEST_F(UserQueriesTest, RegisterUserAllocatesEverything) {
  // A registerable user from the registrar's tape: no login, status 0.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "Fowler",
                                             "Harmon", "C", "0", "hash", "1989"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"Harmon", "Fowler"}, &tuples));
  std::string uid = tuples[0][1];
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("register_user", {uid, "hfowler", std::to_string(kFsStudent)}));
  // Login assigned, status half-registered.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"hfowler"}, &tuples));
  EXPECT_EQ(std::to_string(kUserHalfRegistered), tuples[0][6]);
  // Pobox of type POP on the post office.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"hfowler"}, &tuples));
  EXPECT_EQ("POP", tuples[0][1]);
  EXPECT_EQ("PO-1.MIT.EDU", tuples[0][2]);
  // Group list named after the login with a fresh gid.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"hfowler"}, &tuples));
  EXPECT_EQ("1", tuples[0][5]);  // group flag
  // Home filesystem with a quota.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_filesys_by_label", {"hfowler"}, &tuples));
  EXPECT_EQ("NFS", tuples[0][1]);
  EXPECT_EQ("/mit/hfowler", tuples[0][4]);
  EXPECT_EQ("HOMEDIR", tuples[0][10]);
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfs_quota", {"hfowler", "hfowler"}, &tuples));
  EXPECT_EQ("300", tuples[0][2]);
  // The partition allocation was bumped by the default quota.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"nfs-1.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ("300", tuples[0][4]);
  // POP load count bumped.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"POP", "po-1.mit.edu"}, &tuples));
  EXPECT_EQ("1", tuples[0][10]);
}

TEST_F(UserQueriesTest, RegisterUserRejectsTakenLoginAndWrongStatus) {
  AddActiveUser("taken", 1500);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "New", "Stu",
                                             "D", "0", "h", "1989"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"Stu", "New"}, &tuples));
  std::string uid = tuples[0][1];
  EXPECT_EQ(MR_IN_USE, RunRoot("register_user", {uid, "taken", "1"}));
  // Registering an already-active uid fails.
  EXPECT_EQ(MR_IN_USE, RunRoot("register_user", {"1500", "fresh", "1"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("register_user", {"424242", "fresh", "1"}));
}

}  // namespace
}  // namespace moira
