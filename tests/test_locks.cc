// Tests for the DCM's shared/exclusive named locks (paper section 5.7.1).
#include <gtest/gtest.h>

#include "src/dcm/locks.h"

namespace moira {
namespace {

TEST(LockManager, ExclusiveExcludesEverything) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire("svc", LockManager::Mode::kExclusive));
  EXPECT_FALSE(locks.Acquire("svc", LockManager::Mode::kExclusive));
  EXPECT_FALSE(locks.Acquire("svc", LockManager::Mode::kShared));
  locks.Release("svc", LockManager::Mode::kExclusive);
  EXPECT_TRUE(locks.Acquire("svc", LockManager::Mode::kShared));
}

TEST(LockManager, SharedAllowsSharersBlocksExclusive) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire("svc", LockManager::Mode::kShared));
  ASSERT_TRUE(locks.Acquire("svc", LockManager::Mode::kShared));
  EXPECT_FALSE(locks.Acquire("svc", LockManager::Mode::kExclusive));
  locks.Release("svc", LockManager::Mode::kShared);
  EXPECT_FALSE(locks.Acquire("svc", LockManager::Mode::kExclusive));
  locks.Release("svc", LockManager::Mode::kShared);
  EXPECT_TRUE(locks.Acquire("svc", LockManager::Mode::kExclusive));
}

TEST(LockManager, DistinctNamesIndependent) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire("a", LockManager::Mode::kExclusive));
  EXPECT_TRUE(locks.Acquire("b", LockManager::Mode::kExclusive));
  EXPECT_TRUE(locks.IsLocked("a"));
  EXPECT_TRUE(locks.IsLocked("b"));
  EXPECT_FALSE(locks.IsLocked("c"));
}

TEST(LockManager, ReleaseOfUnheldIsNoop) {
  LockManager locks;
  locks.Release("never", LockManager::Mode::kExclusive);
  locks.Release("never", LockManager::Mode::kShared);
  EXPECT_FALSE(locks.IsLocked("never"));
}

TEST(LockManager, StateCleanedAfterFullRelease) {
  LockManager locks;
  locks.Acquire("svc", LockManager::Mode::kShared);
  locks.Release("svc", LockManager::Mode::kShared);
  EXPECT_FALSE(locks.IsLocked("svc"));
}

TEST(ScopedLockTest, ReleasesOnDestruction) {
  LockManager locks;
  {
    ScopedLock lock(&locks, "svc", LockManager::Mode::kExclusive);
    EXPECT_TRUE(lock.held());
    EXPECT_TRUE(locks.IsLocked("svc"));
    ScopedLock conflict(&locks, "svc", LockManager::Mode::kShared);
    EXPECT_FALSE(conflict.held());
  }
  EXPECT_FALSE(locks.IsLocked("svc"));
}

TEST(ScopedLockTest, FailedAcquireDoesNotRelease) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire("svc", LockManager::Mode::kExclusive));
  {
    ScopedLock lock(&locks, "svc", LockManager::Mode::kExclusive);
    EXPECT_FALSE(lock.held());
  }
  // The original hold must survive the failed ScopedLock's destructor.
  EXPECT_TRUE(locks.IsLocked("svc"));
}

}  // namespace
}  // namespace moira
