// Randomized property tests across module boundaries: the database engine
// against a reference model, backup escaping over random byte strings, the
// block cipher over random payloads, and archive round trips.
#include <gtest/gtest.h>

#include <map>

#include "src/backup/backup.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/krb/block_cipher.h"
#include "src/server/journal.h"
#include "src/update/archive.h"

namespace moira {
namespace {

std::string RandomBytes(SplitMix64& rng, size_t max_len) {
  std::string out(rng.Below(max_len + 1), '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.Below(256));
  }
  return out;
}

// --- database vs reference model ---

class DbModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbModelTest, RandomOpsMatchReferenceModel) {
  SplitMix64 rng(GetParam());
  SimulatedClock clock(0);
  Database db(&clock);
  Table* table = db.CreateTable(TableSchema{
      "t", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  table->CreateIndex("k");
  // Reference: map slot index -> (key, value) for live rows.
  std::map<size_t, std::pair<std::string, int64_t>> model;
  std::vector<size_t> live;
  for (int op = 0; op < 2000; ++op) {
    uint64_t kind = rng.Below(10);
    if (kind < 5 || live.empty()) {
      std::string key = "k" + std::to_string(rng.Below(30));
      auto value = static_cast<int64_t>(rng.Below(1000));
      size_t slot = table->Append({Value(key), Value(value)});
      model[slot] = {key, value};
      live.push_back(slot);
    } else if (kind < 8) {
      size_t pick = live[rng.Below(live.size())];
      std::string key = "k" + std::to_string(rng.Below(30));
      table->Update(pick, 0, Value(key));
      model[pick].first = key;
    } else {
      size_t index = rng.Below(live.size());
      size_t pick = live[index];
      table->Delete(pick);
      model.erase(pick);
      live.erase(live.begin() + static_cast<ptrdiff_t>(index));
    }
  }
  ASSERT_EQ(model.size(), table->LiveCount());
  // Every key query via index equals the model.
  for (int k = 0; k < 30; ++k) {
    std::string key = "k" + std::to_string(k);
    std::vector<size_t> got = table->Match({Condition{0, Condition::Op::kEq, Value(key)}});
    std::vector<size_t> expected;
    for (const auto& [slot, kv] : model) {
      if (kv.first == key) {
        expected.push_back(slot);
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(expected, got) << key;
  }
  // Cell contents match.
  for (const auto& [slot, kv] : model) {
    EXPECT_EQ(kv.first, table->Cell(slot, 0).AsString());
    EXPECT_EQ(kv.second, table->Cell(slot, 1).AsInt());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbModelTest, ::testing::Values(1, 2, 3, 42, 1988));

// --- backup line round trip over random rows ---

class BackupRowTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackupRowTest, RandomRowsRoundTrip) {
  SplitMix64 rng(GetParam());
  TableSchema schema{"t",
                     {{"a", ColumnType::kString},
                      {"b", ColumnType::kInt},
                      {"c", ColumnType::kString},
                      {"d", ColumnType::kInt}}};
  for (int i = 0; i < 200; ++i) {
    Row row = {Value(RandomBytes(rng, 40)),
               Value(static_cast<int64_t>(rng.Next()) / 2),
               Value(RandomBytes(rng, 10)),
               Value(rng.Between(-5, 5))};
    Row back;
    ASSERT_TRUE(BackupManager::LineToRow(BackupManager::RowToLine(row), schema, &back));
    EXPECT_EQ(row, back);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackupRowTest, ::testing::Values(7, 8, 9));

// --- journal escaping over random bytes ---

class EscapeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EscapeFuzzTest, RandomStringsSurvive) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    std::string original = RandomBytes(rng, 64);
    EXPECT_EQ(original, JournalUnescape(JournalEscape(original)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeFuzzTest, ::testing::Values(11, 12, 13));

// --- block cipher over random payloads and keys ---

class CipherFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CipherFuzzTest, RandomPayloadsRoundTrip) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    uint64_t key = rng.Next() | 1;
    std::string plain = RandomBytes(rng, 300);
    auto back = PcbcDecrypt(key, PcbcEncrypt(key, plain));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(plain, *back);
  }
}

TEST_P(CipherFuzzTest, RandomBitFlipsNeverYieldOriginal) {
  SplitMix64 rng(GetParam() + 100);
  for (int i = 0; i < 100; ++i) {
    uint64_t key = rng.Next() | 1;
    std::string plain = RandomBytes(rng, 100);
    if (plain.empty()) {
      continue;
    }
    std::string cipher = PcbcEncrypt(key, plain);
    std::string tampered = cipher;
    tampered[rng.Below(tampered.size())] ^= static_cast<char>(1 + rng.Below(255));
    auto back = PcbcDecrypt(key, tampered);
    if (back.has_value()) {
      EXPECT_NE(plain, *back);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CipherFuzzTest, ::testing::Values(21, 22));

// --- archive round trip over random member sets ---

class ArchiveFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArchiveFuzzTest, RandomArchivesRoundTrip) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Archive archive;
    size_t members = rng.Below(12);
    for (size_t m = 0; m < members; ++m) {
      archive.Add("member-" + std::to_string(m), RandomBytes(rng, 2000));
    }
    std::optional<Archive> back = Archive::Parse(archive.Serialize());
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(archive.size(), back->size());
    for (const auto& [name, contents] : archive.members()) {
      ASSERT_NE(nullptr, back->Find(name));
      EXPECT_EQ(contents, *back->Find(name));
    }
  }
}

TEST_P(ArchiveFuzzTest, RandomCorruptionDetected) {
  SplitMix64 rng(GetParam() + 500);
  Archive archive;
  archive.Add("f1", RandomBytes(rng, 500));
  archive.Add("f2", RandomBytes(rng, 500));
  std::string bytes = archive.Serialize();
  for (int i = 0; i < 200; ++i) {
    std::string corrupted = bytes;
    corrupted[rng.Below(corrupted.size())] ^= static_cast<char>(1 + rng.Below(255));
    std::optional<Archive> back = Archive::Parse(corrupted);
    // Either the CRC catches it, or (vanishingly unlikely here) the parse
    // must at least produce a well-formed archive.
    if (back.has_value()) {
      ADD_FAILURE() << "corruption escaped the checksum at byte flip " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveFuzzTest, ::testing::Values(31, 32));

}  // namespace
}  // namespace moira
