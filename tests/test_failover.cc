// Tests for quorum-acknowledged writes and heartbeat-driven automatic
// failover (src/repl/cluster.h harness): the quorum gate and its degraded
// modes, elections and epoch fencing (split-brain regressions), asymmetric
// partitions and leader stickiness (pre-vote), torn quorum pushes, tagged
// write replay through the router, DCM read offload over a cluster replica,
// and the randomized partition/flap/crash sweep against the lost-acked-write
// oracle.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/backup/backup.h"
#include "src/client/client.h"
#include "src/comerr/moira_errors.h"
#include "src/dcm/dcm.h"
#include "src/repl/cluster.h"
#include "src/repl/repl_fault.h"
#include "src/repl/replica.h"
#include "src/repl/router.h"
#include "src/server/server.h"
#include "src/sim/population.h"
#include "src/update/sim_host.h"
#include "src/zephyrd/zephyr_bus.h"

namespace moira {
namespace {

using HeartbeatEvent = ReplicaServer::HeartbeatEvent;

// A root-authenticated client to cluster node `i`.
MrClient MakeAdmin(ReplCluster& cluster, int i) {
  MrClient client(cluster.ClientConnector(i));
  client.SetKerberosIdentity(&cluster.realm(), "root", "rootpw");
  EXPECT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_SUCCESS, client.Auth("ops"));
  return client;
}

// Ticks until the cluster has exactly one writable primary (bounded), then
// returns it; nullptr if it never converges.
ReplicaServer* TickUntilPrimary(ReplCluster& cluster, int max_ticks = 20) {
  for (int i = 0; i < max_ticks; ++i) {
    cluster.Tick();
    if (ReplicaServer* p = cluster.primary(); p != nullptr) {
      return p;
    }
  }
  return cluster.primary();
}

// Ticks until some node OTHER than `old` is accepting writes: during a
// partition the deposed primary can stay writable on its side, so
// TickUntilPrimary (which wants a unique primary) would never return the
// successor.
ReplicaServer* TickUntilNewPrimary(ReplCluster& cluster, ReplicaServer* old,
                                   int max_ticks = 20) {
  for (int i = 0; i < max_ticks; ++i) {
    cluster.Tick();
    for (ReplicaServer* p : cluster.WritablePrimaries()) {
      if (p != old) {
        return p;
      }
    }
  }
  return nullptr;
}

// Ticks until every live node has applied the primary's whole journal.
void TickUntilConverged(ReplCluster& cluster, int max_ticks = 40) {
  for (int i = 0; i < max_ticks; ++i) {
    cluster.Tick();
    ReplicaServer* p = cluster.primary();
    if (p == nullptr) {
      continue;
    }
    bool all = true;
    for (int n = 0; n < cluster.size(); ++n) {
      ReplicaServer* node = cluster.node(n);
      if (node->crashed() || node == p) {
        continue;
      }
      if (node->applied_seq() < p->server().journal().last_seq()) {
        all = false;
      }
    }
    if (all) {
      return;
    }
  }
}

// --- Quorum gate ---

TEST(FailoverQuorumTest, WriteAcksOnlyAfterMajorityApplied) {
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"q1.mit.edu", "VAX"}, [](Tuple) {}));
  // The push path delivered the entry to both replicas before the ack.
  const uint64_t seq = cluster.node(0)->server().journal().last_seq();
  EXPECT_GE(cluster.node(1)->applied_seq() + cluster.node(2)->applied_seq(), seq);
  const MoiraServer::QuorumStats& qs = cluster.node(0)->server().quorum_stats();
  EXPECT_EQ(1u, qs.quorum_writes);
  EXPECT_EQ(1u, qs.quorum_acks);
  EXPECT_EQ(0u, qs.quorum_timeouts);
  // Replicas saw the write through pushes alone — no pull round needed.
  EXPECT_GE(cluster.node(1)->stats().push_batches +
                cluster.node(2)->stats().push_batches,
            1u);
}

TEST(FailoverQuorumTest, RefusePolicyReturnsSoftErrorWithoutQuorum) {
  ReplCluster cluster;  // quorum_ack_local = false: refuse
  // Cut the primary off from both replicas (requests never arrive).
  cluster.net().BlockBoth("n0", "n1");
  cluster.net().BlockBoth("n0", "n2");
  MrClient admin = MakeAdmin(cluster, 0);
  EXPECT_EQ(MR_QUORUM_TIMEOUT,
            admin.Query("add_machine", {"iso.mit.edu", "VAX"}, [](Tuple) {}));
  const MoiraServer::QuorumStats& qs = cluster.node(0)->server().quorum_stats();
  EXPECT_EQ(1u, qs.quorum_timeouts);
  EXPECT_EQ(0u, qs.quorum_acks);
  // The entry is journaled locally — the outcome is unknown, not lost; a
  // healed quorum round (next write) replicates it.
  EXPECT_GE(cluster.node(0)->server().journal().last_seq(), 1u);
  cluster.net().HealAll();
  EXPECT_EQ(MR_SUCCESS, admin.Query("add_machine", {"ok.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(cluster.node(0)->server().journal().last_seq(),
            cluster.node(1)->applied_seq());
}

TEST(FailoverQuorumTest, AckLocalPolicyDegradesWithAlarm) {
  ReplClusterOptions options;
  options.quorum_ack_local = true;
  ReplCluster cluster(options);
  std::vector<std::string> alarms;
  cluster.node(0)->server().set_quorum_alarm(
      [&](const std::string& msg) { alarms.push_back(msg); });
  cluster.net().BlockBoth("n0", "n1");
  cluster.net().BlockBoth("n0", "n2");
  MrClient admin = MakeAdmin(cluster, 0);
  EXPECT_EQ(MR_SUCCESS,
            admin.Query("add_machine", {"deg.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(1u, cluster.node(0)->server().quorum_stats().degraded_acks);
  ASSERT_EQ(1u, alarms.size());
  EXPECT_NE(alarms[0].find("quorum unreachable"), std::string::npos);
}

TEST(FailoverQuorumTest, ExplicitWriteQuorumOverridesMajority) {
  ReplClusterOptions options;
  options.write_quorum = 3;  // all three nodes must hold every write
  ReplCluster cluster(options);
  cluster.net().BlockBoth("n0", "n2");  // one replica out: 2 < 3
  MrClient admin = MakeAdmin(cluster, 0);
  EXPECT_EQ(MR_QUORUM_TIMEOUT,
            admin.Query("add_machine", {"w3.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.net().HealAll();
  EXPECT_EQ(MR_SUCCESS, admin.Query("add_machine", {"w3b.mit.edu", "VAX"}, [](Tuple) {}));
}

// --- Elections and epoch fencing ---

TEST(FailoverElectionTest, CrashedPrimaryTriggersAutomaticFailover) {
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"e1.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.node(0)->Crash();
  ReplicaServer* next = TickUntilPrimary(cluster);
  ASSERT_NE(nullptr, next);
  EXPECT_NE(cluster.node(0), next);
  EXPECT_GE(next->epoch(), 2u);  // a new reign, not a second epoch-1 primary
  // The quorum-acked write survived the failover (hostnames are stored
  // canonicalized to uppercase).
  std::string dump = BackupManager::DumpToString(next->db());
  EXPECT_NE(dump.find("E1.MIT.EDU"), std::string::npos);
  // The bystander adopted the winner rather than standing itself.
  int adopted = 0;
  for (int i = 1; i < cluster.size(); ++i) {
    if (cluster.node(i) != next) {
      adopted += static_cast<int>(cluster.node(i)->stats().adoptions > 0);
    }
  }
  EXPECT_EQ(1, adopted);
  // Writes flow through the new primary, quorum-acknowledged by the survivor.
  MrClient admin2 = MakeAdmin(cluster, static_cast<int>(next->name()[1] - '0'));
  EXPECT_EQ(MR_SUCCESS, admin2.Query("add_machine", {"e2.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_GE(next->server().quorum_stats().quorum_acks, 1u);
}

TEST(FailoverElectionTest, RestartedOldPrimaryRejoinsAsReplica) {
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"r1.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.node(0)->Crash();
  ReplicaServer* next = TickUntilPrimary(cluster);
  ASSERT_NE(nullptr, next);
  const int next_idx = next->name()[1] - '0';
  MrClient admin2 = MakeAdmin(cluster, next_idx);
  ASSERT_EQ(MR_SUCCESS, admin2.Query("add_machine", {"r2.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.node(0)->Restart();
  TickUntilConverged(cluster);
  EXPECT_FALSE(cluster.node(0)->promoted());
  EXPECT_GE(cluster.node(0)->stats().adoptions, 1u);
  // Byte-identical with the new primary, including the post-failover write.
  EXPECT_EQ(BackupManager::DumpToString(next->db()),
            BackupManager::DumpToString(cluster.node(0)->db()));
  EXPECT_NE(BackupManager::DumpToString(cluster.node(0)->db()).find("R2.MIT.EDU"),
            std::string::npos);
}

TEST(FailoverElectionTest, PartitionedPrimaryIsFencedAndStepsDownNoSplitBrain) {
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"sb0.mit.edu", "VAX"}, [](Tuple) {}));
  // Isolate the primary; it stays up and keeps thinking it is primary.
  cluster.net().BlockBoth("n0", "n1");
  cluster.net().BlockBoth("n0", "n2");
  // Writes to the isolated primary cannot reach quorum: nothing is acked, so
  // nothing can be lost when it is deposed.
  EXPECT_EQ(MR_QUORUM_TIMEOUT,
            admin.Query("add_machine", {"sb-lost.mit.edu", "VAX"}, [](Tuple) {}));
  ReplicaServer* next = TickUntilNewPrimary(cluster, cluster.node(0));
  ASSERT_NE(nullptr, next);
  ASSERT_NE(cluster.node(0), next);
  // Both sides up: two promoted nodes exist, but in DIFFERENT epochs, and
  // only the new reign can assemble a quorum.
  EXPECT_TRUE(cluster.node(0)->promoted());
  EXPECT_GT(next->epoch(), cluster.node(0)->epoch());
  // Heal.  The old primary's next quorum push meets a node that outlived it
  // and is fenced mid-gate: the unreplicated write is refused, not acked.
  cluster.net().HealAll();
  EXPECT_EQ(MR_REPL_EPOCH,
            admin.Query("add_machine", {"sb-late.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_TRUE(cluster.node(0)->server().fenced());
  // Next heartbeat: the fenced ex-primary steps down and resyncs; its dead
  // reign's suffix (sb-lost, sb-late) is discarded with it.
  TickUntilConverged(cluster);
  EXPECT_FALSE(cluster.node(0)->promoted());
  EXPECT_GE(cluster.node(0)->stats().step_downs, 1u);
  ASSERT_EQ(1u, cluster.WritablePrimaries().size());
  std::string dump = BackupManager::DumpToString(cluster.node(0)->db());
  EXPECT_EQ(BackupManager::DumpToString(next->db()), dump);
  EXPECT_NE(dump.find("SB0.MIT.EDU"), std::string::npos);
  EXPECT_EQ(dump.find("SB-LOST.MIT.EDU"), std::string::npos);
  EXPECT_EQ(dump.find("SB-LATE.MIT.EDU"), std::string::npos);
}

TEST(FailoverElectionTest, StalePromotionCannotAckWrites) {
  // Epoch-fencing regression: promote a lagging node by operator error while
  // the real primary lives.  Its first quorum round meets peers that have
  // seen... nothing newer, so instead the REAL primary's next round fences
  // the usurper's stale epoch claim — whichever pushes first, only one epoch
  // can assemble a quorum, and no epoch ever has two writable holders that
  // both ack.
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"u0.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.node(2)->PromoteWithEpoch(2);  // usurper at a NEW epoch
  // The old primary's next write pushes at epoch 1 into n2 — which now
  // refuses it as stale and fences n0 on contact.
  EXPECT_EQ(MR_REPL_EPOCH,
            admin.Query("add_machine", {"u1.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_TRUE(cluster.node(0)->server().fenced());
  // Exactly one writable primary per epoch at every instant.
  std::map<uint64_t, std::string> epoch_owner;
  for (ReplicaServer* p : cluster.WritablePrimaries()) {
    auto [it, inserted] = epoch_owner.emplace(p->epoch(), p->name());
    EXPECT_TRUE(inserted) << "split brain: epoch " << p->epoch() << " held by "
                          << it->second << " and " << p->name();
  }
  // The cluster converges behind the highest epoch.
  TickUntilConverged(cluster);
  ASSERT_EQ(1u, cluster.WritablePrimaries().size());
  EXPECT_EQ(cluster.node(2), cluster.WritablePrimaries()[0]);
}

TEST(FailoverElectionTest, ElectionPrefersTheMostCompleteLog) {
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  // n1 falls behind: cut n0->n1 so pushes only reach n2 (still a majority
  // with the primary itself).
  cluster.net().BlockBoth("n0", "n1");
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"ml.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_GT(cluster.node(2)->applied_seq(), cluster.node(1)->applied_seq());
  cluster.node(0)->Crash();
  cluster.net().HealAll();
  ReplicaServer* next = TickUntilPrimary(cluster);
  // Only n2 holds the acked write; the vote rule must elect it even though
  // n1's name sorts first.
  ASSERT_EQ(cluster.node(2), next);
  EXPECT_NE(BackupManager::DumpToString(next->db()).find("ML.MIT.EDU"),
            std::string::npos);
}

// --- Leader stickiness and asymmetric partitions ---

TEST(FailoverStickinessTest, AsymmetricPartitionDoesNotDeposeLivePrimary) {
  ReplClusterOptions options;
  // Agitate on the very first miss: the point of this test is that the
  // pre-vote — not a generous miss threshold — is what protects the primary.
  options.missed_heartbeats = 1;
  ReplCluster cluster(options);
  MrClient admin = MakeAdmin(cluster, 0);
  // n1 cannot reach n0, but n0 (and everyone else) reaches n1: n1's
  // heartbeats fail while the rest of the cluster is healthy.
  cluster.net().Block("n1", "n0");
  for (int round = 0; round < 6; ++round) {
    cluster.Tick();
    ASSERT_EQ(MR_SUCCESS,
              admin.Query("add_machine",
                          {"as" + std::to_string(round) + ".mit.edu", "VAX"},
                          [](Tuple) {}))
        << "writes must ride out the asymmetric partition";
  }
  // n1 agitated for election but the pre-vote failed against n2's leader
  // stickiness: nobody was deposed, no epoch floor moved.  (Once n1's log
  // falls behind n2's it stops standing and defers instead — also no
  // disruption.)
  EXPECT_GE(cluster.node(1)->stats().elections_started, 1u);
  EXPECT_EQ(0u, cluster.node(1)->stats().promotions);
  ASSERT_EQ(1u, cluster.WritablePrimaries().size());
  EXPECT_EQ(cluster.node(0), cluster.WritablePrimaries()[0]);
  EXPECT_EQ(1u, cluster.node(0)->epoch());
  // Heal: n1 simply resumes following — the failed candidacies must NOT
  // fence the healthy primary (pre-vote kept every floor at 1).
  cluster.net().HealAll();
  TickUntilConverged(cluster);
  EXPECT_FALSE(cluster.node(0)->server().fenced());
  ASSERT_EQ(1u, cluster.WritablePrimaries().size());
  EXPECT_EQ(cluster.node(0), cluster.WritablePrimaries()[0]);
  EXPECT_EQ(BackupManager::DumpToString(cluster.node(0)->db()),
            BackupManager::DumpToString(cluster.node(1)->db()));
}

TEST(FailoverStickinessTest, LostReplyPartitionForcesIdempotentRedelivery) {
  // The reply-lost direction: pushes from n0 are applied on n1 but the acks
  // vanish, so the primary re-pushes the same entries until a reply gets
  // through — duplicate deliveries must be skipped, not re-applied.
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  // First write establishes and authenticates the long-lived push channels;
  // only then does the reply direction go dark (a partition that cuts an
  // edge before the handshake just kills the whole edge).
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"rl0.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.net().Block("n1", "n0");  // n1's replies toward n0 are cut
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"rl1.mit.edu", "VAX"}, [](Tuple) {}));
  // n1 applied the push even though n0 never saw the ack (quorum met via n2).
  EXPECT_EQ(cluster.node(0)->server().journal().last_seq(),
            cluster.node(1)->applied_seq());
  cluster.net().HealAll();
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"rl2.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(0u, cluster.node(1)->stats().apply_failures);
  EXPECT_EQ(BackupManager::DumpToString(cluster.node(0)->db()),
            BackupManager::DumpToString(cluster.node(1)->db()));
}

// --- Torn quorum pushes ---

TEST(FailoverTornPushTest, TornPushConvergesByRepush) {
  ReplCluster cluster;
  MrClient admin = MakeAdmin(cluster, 0);
  // Batch several entries for n1 by cutting it off for a few writes.
  cluster.net().BlockBoth("n0", "n1");
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"t1.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"t2.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"t3.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.net().HealAll();
  // The next push ships the whole backlog; it tears halfway and the
  // connection dies mid-reply.
  cluster.node(1)->ArmTornPush();
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"t4.mit.edu", "VAX"}, [](Tuple) {}));
  // Another write forces a re-push of the unacknowledged window; the
  // half-applied entries are skipped as duplicates and the rest lands.
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"t5.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(cluster.node(0)->server().journal().last_seq(),
            cluster.node(1)->applied_seq());
  EXPECT_EQ(0u, cluster.node(1)->stats().apply_failures);
  EXPECT_EQ(BackupManager::DumpToString(cluster.node(0)->db()),
            BackupManager::DumpToString(cluster.node(1)->db()));
}

// --- Router: tagged writes, rediscovery, idempotent replay ---

std::unique_ptr<ReplicatedClient> MakeRouter(ReplCluster& cluster) {
  auto factory = [&cluster](const ReplEndpoint& endpoint) {
    auto client = std::make_unique<MrClient>(endpoint.connector);
    client->SetKerberosIdentity(&cluster.realm(), "root", "rootpw");
    return client;
  };
  std::vector<ReplEndpoint> endpoints;
  for (int i = 0; i < cluster.size(); ++i) {
    endpoints.push_back({cluster.node_name(i), cluster.ClientConnector(i)});
  }
  auto primary = factory(endpoints[0]);
  EXPECT_EQ(MR_SUCCESS, primary->Connect());
  EXPECT_EQ(MR_SUCCESS, primary->Auth("router"));
  auto router = std::make_unique<ReplicatedClient>(std::move(primary));
  router->SetEndpoints(std::move(endpoints), factory, "router");
  router->EnableTaggedWrites("rt");
  return router;
}

TEST(FailoverRouterTest, RediscoversNewPrimaryAndReplaysInFlightWrite) {
  ReplCluster cluster;
  std::unique_ptr<ReplicatedClient> router = MakeRouter(cluster);
  ASSERT_EQ(MR_SUCCESS, router->Query("add_machine", {"f1.mit.edu", "VAX"}, [](Tuple) {}));
  cluster.node(0)->Crash();
  // In-flight write against the dead primary: no writable successor yet, so
  // the outcome stays pending inside the router.
  EXPECT_EQ(MR_ABORTED, router->Query("add_machine", {"f2.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(1u, router->pending_writes());
  ReplicaServer* next = TickUntilPrimary(cluster);
  ASSERT_NE(nullptr, next);
  // The next write rediscovers the new primary and replays f2 first.
  ASSERT_EQ(MR_SUCCESS, router->Query("add_machine", {"f3.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(0u, router->pending_writes());
  EXPECT_EQ(next->name(), router->primary_name());
  EXPECT_GE(router->stats().rediscoveries, 1u);
  EXPECT_GE(router->stats().replays, 1u);
  std::string dump = BackupManager::DumpToString(next->db());
  for (const char* name : {"F1.MIT.EDU", "F2.MIT.EDU", "F3.MIT.EDU"}) {
    EXPECT_NE(dump.find(name), std::string::npos) << name;
  }
}

TEST(FailoverRouterTest, LostAckReplayDoesNotDoubleApply) {
  ReplCluster cluster;
  std::unique_ptr<ReplicatedClient> router = MakeRouter(cluster);
  // The write reaches the primary and commits with quorum, but the ack back
  // to the client is lost.
  cluster.net().Block("n0", ReplCluster::kClientEndpoint);
  EXPECT_EQ(MR_ABORTED,
            router->Query("add_machine", {"dup.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(1u, router->pending_writes());
  EXPECT_EQ(cluster.node(0)->server().journal().last_seq(),
            cluster.node(1)->applied_seq());  // it WAS applied and replicated
  cluster.net().HealAll();
  // The replay hits the idempotency tag: acked with the original seq, no
  // second machine row.
  ASSERT_EQ(MR_SUCCESS,
            router->Query("add_machine", {"after.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(0u, router->pending_writes());
  EXPECT_GE(cluster.node(0)->server().quorum_stats().tag_hits, 1u);
  int rows = 0;
  MrClient admin = MakeAdmin(cluster, 0);
  EXPECT_EQ(MR_SUCCESS,
            admin.Query("get_machine", {"DUP.MIT.EDU"}, [&](Tuple) { ++rows; }));
  EXPECT_EQ(1, rows);
}

TEST(FailoverRouterTest, TagReplaySurvivesFailoverViaPushedTags) {
  // The ack is lost AND the primary then dies: the replay lands on the NEW
  // primary, whose journal carried the tag — still no double apply.
  ReplCluster cluster;
  std::unique_ptr<ReplicatedClient> router = MakeRouter(cluster);
  cluster.net().Block("n0", ReplCluster::kClientEndpoint);
  EXPECT_EQ(MR_ABORTED,
            router->Query("add_machine", {"x.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(cluster.node(0)->server().journal().last_seq(),
            cluster.node(1)->applied_seq());
  cluster.node(0)->Crash();
  cluster.net().HealAll();
  ReplicaServer* next = TickUntilPrimary(cluster);
  ASSERT_NE(nullptr, next);
  ASSERT_EQ(MR_SUCCESS,
            router->Query("add_machine", {"y.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_GE(next->server().quorum_stats().tag_hits, 1u);
  int rows = 0;
  const int next_idx = next->name()[1] - '0';
  MrClient admin = MakeAdmin(cluster, next_idx);
  EXPECT_EQ(MR_SUCCESS,
            admin.Query("get_machine", {"X.MIT.EDU"}, [&](Tuple) { ++rows; }));
  EXPECT_EQ(1, rows);
}

// --- DCM read offload over a live cluster replica ---

TEST(FailoverDcmTest, GenerationReadsOffloadToClusterReplicaAndDegrade) {
  ReplCluster cluster;
  MoiraContext& mc = cluster.node(0)->context();
  // Build the site directly on the primary, then force the replicas through
  // a snapshot resync so all three nodes hold the populated site.
  SiteBuilder builder(&mc, &cluster.realm());
  builder.Build(TestSiteSpec());
  cluster.node(1)->Restart();
  cluster.node(2)->Restart();
  TickUntilConverged(cluster);
  ASSERT_GE(cluster.node(1)->stats().snapshot_loads, 1u);

  ZephyrBus zephyr(&cluster.clock());
  HostDirectory directory;
  std::vector<std::unique_ptr<SimHost>> hosts =
      CreateSimHosts(mc, &cluster.realm(), &directory);
  Dcm dcm(&mc, &cluster.realm(), &zephyr, &directory);
  ConfigureStandardServices(&dcm);
  dcm.AttachJournal(&cluster.node(0)->server().journal());
  AttachDcmReadSource(&dcm, cluster.node(1));
  // Advance through Tick so node clocks stay in step with the realm clock —
  // skewed node clocks would fail every Kerberos authenticator.
  cluster.Tick(kSecondsPerDay);

  DcmRunSummary first = dcm.RunOnce();
  EXPECT_GT(first.hosts_updated, 0);
  EXPECT_EQ(0, first.generation_rows_primary);
  EXPECT_GT(first.generation_rows_replica, 0);

  // A crashed replica degrades the pass to primary reads instead of
  // breaking propagation.
  cluster.node(1)->Crash();
  cluster.Tick(25 * kSecondsPerHour);
  MrClient admin = MakeAdmin(cluster, 0);
  ASSERT_EQ(MR_SUCCESS,
            admin.Query("update_user_shell", {builder.active_logins()[0], "/bin/dg"},
                        [](Tuple) {}));
  DcmRunSummary second = dcm.RunOnce();
  EXPECT_GT(second.generation_rows_primary, 0);
  EXPECT_EQ(0, second.generation_rows_replica);
}

// --- Randomized partition/flap/crash sweep with the lost-write oracle ---

TEST(FailoverSweepTest, RandomizedFaultsLoseNoAckedWritesNoSplitBrain) {
  ReplClusterOptions options;
  options.missed_heartbeats = 2;
  ReplCluster cluster(options);
  std::unique_ptr<ReplicatedClient> router = MakeRouter(cluster);

  ReplFaultSpec spec;
  spec.seed = 1988;
  spec.crash_permille = 150;
  spec.flap_permille = 200;
  spec.slow_permille = 150;
  spec.slow_apply_limit = 2;
  spec.kdc_down_permille = 100;
  spec.torn_push_permille = 200;
  spec.partition_permille = 300;
  spec.asym_partition_permille = 300;
  ReplFaultPlan plan(spec);

  std::vector<ReplicaServer*> raw;
  std::vector<std::string> names;
  for (int i = 0; i < cluster.size(); ++i) {
    raw.push_back(cluster.node(i));
    names.push_back(cluster.node_name(i));
  }

  std::vector<std::string> acked;  // the oracle: machines whose add was acked
  std::map<uint64_t, std::string> epoch_owner;
  auto check_one_primary_per_epoch = [&] {
    for (ReplicaServer* p : cluster.WritablePrimaries()) {
      auto [it, inserted] = epoch_owner.emplace(p->epoch(), p->name());
      ASSERT_TRUE(inserted || it->second == p->name())
          << "split brain: epoch " << p->epoch() << " held by " << it->second
          << " and " << p->name();
    }
  };

  for (int round = 0; round < 25; ++round) {
    plan.ArmRound(raw, &cluster.realm(), round, &cluster.net(), names);
    for (int tick = 0; tick < 3; ++tick) {
      cluster.Tick();
      check_one_primary_per_epoch();
    }
    for (int w = 0; w < 2; ++w) {
      // Already in canonical (uppercase) hostname form so the acked list can
      // be grepped verbatim against the final dump.
      std::string name =
          "S" + std::to_string(round) + "X" + std::to_string(w) + ".MIT.EDU";
      int32_t code = router->Query("add_machine", {name, "VAX"}, [](Tuple) {});
      if (code == MR_SUCCESS) {
        acked.push_back(name);
      }
    }
    check_one_primary_per_epoch();
  }

  // Heal everything and drain.
  cluster.net().HealAll();
  cluster.realm().SetDown(false);
  for (ReplicaServer* node : raw) {
    if (node->crashed()) {
      node->Restart();
    }
    node->set_apply_limit(0);
  }
  ReplicaServer* final_primary = TickUntilPrimary(cluster, 40);
  ASSERT_NE(nullptr, final_primary);
  // One last write flushes the router's pending queue onto the survivor.
  ASSERT_EQ(MR_SUCCESS,
            router->Query("add_machine", {"drain.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(0u, router->pending_writes());
  TickUntilConverged(cluster, 60);
  check_one_primary_per_epoch();

  ASSERT_GT(acked.size(), 10u) << "sweep too quiet to prove anything";
  const std::string golden =
      BackupManager::DumpToString(final_primary->db());
  for (const std::string& name : acked) {
    EXPECT_NE(golden.find(name), std::string::npos)
        << "acked write lost: " << name;
  }
  // Every live node converged byte-identically.
  for (int i = 0; i < cluster.size(); ++i) {
    ReplicaServer* node = cluster.node(i);
    if (node->crashed() || node == final_primary) {
      continue;
    }
    EXPECT_EQ(golden, BackupManager::DumpToString(node->db())) << node->name();
    EXPECT_EQ(0u, node->stats().apply_failures) << node->name();
  }
}

}  // namespace
}  // namespace moira
