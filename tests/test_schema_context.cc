// Tests for the Moira schema (paper section 6) and the context helpers.
#include "tests/test_env.h"

namespace moira {
namespace {

class SchemaTest : public MoiraEnv {};

TEST_F(SchemaTest, AllTwentyRelationsExist) {
  const char* tables[] = {
      kUsersTable,    kMachineTable,  kClusterTable,    kMcmapTable,   kSvcTable,
      kListTable,     kMembersTable,  kServersTable,    kServerHostsTable,
      kFilesysTable,  kNfsPhysTable,  kNfsQuotaTable,   kZephyrTable,
      kHostAccessTable, kStringsTable, kServicesTable,  kPrintcapTable,
      kCapAclsTable,  kAliasTable,    kValuesTable,
  };
  EXPECT_EQ(20u, std::size(tables));
  for (const char* name : tables) {
    EXPECT_NE(nullptr, db_->GetTable(name)) << name;
  }
}

TEST_F(SchemaTest, SeededTypeAliases) {
  EXPECT_TRUE(mc_->IsLegalType("class", "G"));
  EXPECT_TRUE(mc_->IsLegalType("class", "STAFF"));
  EXPECT_FALSE(mc_->IsLegalType("class", "NOPE"));
  EXPECT_TRUE(mc_->IsLegalType("mach_type", "VAX"));
  EXPECT_TRUE(mc_->IsLegalType("mach_type", "RT"));
  EXPECT_TRUE(mc_->IsLegalType("pobox", "POP"));
  EXPECT_TRUE(mc_->IsLegalType("pobox", "SMTP"));
  EXPECT_TRUE(mc_->IsLegalType("pobox", "NONE"));
  EXPECT_TRUE(mc_->IsLegalType("filesys", "NFS"));
  EXPECT_TRUE(mc_->IsLegalType("filesys", "RVD"));
  EXPECT_TRUE(mc_->IsLegalType("lockertype", "HOMEDIR"));
  EXPECT_TRUE(mc_->IsLegalType("service-type", "UNIQUE"));
  EXPECT_TRUE(mc_->IsLegalType("service-type", "REPLICAT"));
  EXPECT_TRUE(mc_->IsLegalType("protocol", "TCP"));
}

TEST_F(SchemaTest, SeededValues) {
  int64_t v = 0;
  EXPECT_EQ(MR_SUCCESS, mc_->GetValue("dcm_enable", &v));
  EXPECT_EQ(1, v);
  EXPECT_EQ(MR_SUCCESS, mc_->GetValue("def_quota", &v));
  EXPECT_EQ(300, v);
  EXPECT_EQ(MR_SUCCESS, mc_->GetValue("users_id", &v));
  EXPECT_EQ(MR_NO_MATCH, mc_->GetValue("nonexistent", &v));
}

TEST_F(SchemaTest, DbadminBootstrapListExists) {
  RowRef dbadmin = mc_->ListByName("dbadmin");
  EXPECT_EQ(MR_SUCCESS, dbadmin.code);
}

class ContextTest : public MoiraEnv {};

TEST_F(ContextTest, ExactOneSemantics) {
  Table* machine = mc_->machine();
  machine->Append({"HOST-A.MIT.EDU", 1, "VAX", 0, "", ""});
  machine->Append({"HOST-B.MIT.EDU", 2, "VAX", 0, "", ""});
  machine->Append({"HOST-B.MIT.EDU", 3, "VAX", 0, "", ""});
  EXPECT_EQ(MR_SUCCESS, mc_->MachineByName("host-a.mit.edu").code);
  EXPECT_EQ(MR_MACHINE, mc_->MachineByName("host-c.mit.edu").code);
  EXPECT_EQ(MR_NOT_UNIQUE, mc_->MachineByName("HOST-B.MIT.EDU").code);
}

TEST_F(ContextTest, AllocateIdAdvancesAndSkipsCollisions) {
  int64_t first = 0;
  ASSERT_EQ(MR_SUCCESS, mc_->AllocateId("users_id", mc_->users(), "users_id", &first));
  // Occupy the next id manually; allocation must skip it.
  Row row(mc_->users()->schema().columns.size(), Value(""));
  row[mc_->users()->ColumnIndex("users_id")] = Value(first + 1);
  row[mc_->users()->ColumnIndex("uid")] = Value(int64_t{-100});
  mc_->users()->Append(std::move(row));
  int64_t second = 0;
  ASSERT_EQ(MR_SUCCESS, mc_->AllocateId("users_id", mc_->users(), "users_id", &second));
  EXPECT_EQ(first + 2, second);
}

TEST_F(ContextTest, StringInterningIsIdempotent) {
  int64_t a = mc_->InternString("jflubber@other.edu");
  int64_t b = mc_->InternString("jflubber@other.edu");
  int64_t c = mc_->InternString("different@other.edu");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ("jflubber@other.edu", mc_->StringById(a));
  EXPECT_EQ(a, mc_->LookupString("jflubber@other.edu").value());
  EXPECT_FALSE(mc_->LookupString("never-seen").has_value());
  EXPECT_EQ("", mc_->StringById(99999));
}

TEST_F(ContextTest, ResolveAceAllTypes) {
  AddActiveUser("aceuser", 700);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"acelist", "1", "0", "0", "0", "0", "-1",
                                             "NONE", "NONE", "d"}));
  int64_t id = -1;
  EXPECT_EQ(MR_SUCCESS, mc_->ResolveAce("NONE", "whatever", &id));
  EXPECT_EQ(0, id);
  EXPECT_EQ(MR_SUCCESS, mc_->ResolveAce("USER", "aceuser", &id));
  EXPECT_GT(id, 0);
  EXPECT_EQ("aceuser", mc_->AceName("USER", id));
  EXPECT_EQ(MR_SUCCESS, mc_->ResolveAce("LIST", "acelist", &id));
  EXPECT_EQ("acelist", mc_->AceName("LIST", id));
  EXPECT_EQ(MR_ACE, mc_->ResolveAce("USER", "ghost", &id));
  EXPECT_EQ(MR_ACE, mc_->ResolveAce("LIST", "ghost", &id));
  EXPECT_EQ(MR_ACE, mc_->ResolveAce("BOGUS", "x", &id));
  EXPECT_EQ("NONE", mc_->AceName("NONE", 0));
}

TEST_F(ContextTest, StampSetsModTriples) {
  AddActiveUser("stampme", 701);
  RowRef user = mc_->UserByLogin("stampme");
  ASSERT_EQ(MR_SUCCESS, user.code);
  clock_.Set(600000000);
  mc_->Stamp(mc_->users(), user.row, "someone", "someapp", "f");
  EXPECT_EQ(600000000, MoiraContext::IntCell(mc_->users(), user.row, "fmodtime"));
  EXPECT_EQ("someone", MoiraContext::StrCell(mc_->users(), user.row, "fmodby"));
  EXPECT_EQ("someapp", MoiraContext::StrCell(mc_->users(), user.row, "fmodwith"));
}

class RegistryShapeTest : public MoiraEnv {};

TEST_F(RegistryShapeTest, RegistryHasPaperScaleQueryCount) {
  // Paper section 5.1.C: "Over 100 query handles".
  EXPECT_GE(QueryRegistry::Instance().All().size(), 100u);
}

TEST_F(RegistryShapeTest, LongAndShortNamesResolve) {
  const QueryRegistry& registry = QueryRegistry::Instance();
  const QueryDef* by_long = registry.Find("get_user_by_login");
  const QueryDef* by_short = registry.Find("gubl");
  ASSERT_NE(nullptr, by_long);
  EXPECT_EQ(by_long, by_short);
  EXPECT_EQ(nullptr, registry.Find("no_such_query"));
}

TEST_F(RegistryShapeTest, NamesAreUnique) {
  std::set<std::string> longs;
  std::set<std::string> shorts;
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    EXPECT_TRUE(longs.insert(def.name).second) << def.name;
    EXPECT_TRUE(shorts.insert(def.shortname).second) << def.shortname;
    EXPECT_EQ(4u, std::string(def.shortname).size()) << def.name;
  }
}

TEST_F(RegistryShapeTest, UnknownQueryIsNoHandle) {
  EXPECT_EQ(MR_NO_HANDLE, RunRoot("bogus_query", {}));
}

TEST_F(RegistryShapeTest, ArgCountEnforced) {
  EXPECT_EQ(MR_ARGS, RunRoot("get_user_by_login", {}));
  EXPECT_EQ(MR_ARGS, RunRoot("get_user_by_login", {"a", "b"}));
}

TEST_F(RegistryShapeTest, SeedCapaclsCoversNonWorldQueries) {
  QueryRegistry::Instance().SeedCapacls(*mc_, "dbadmin");
  size_t non_world = 0;
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    if (!def.world_ok) {
      ++non_world;
    }
  }
  EXPECT_EQ(non_world, mc_->capacls()->LiveCount());
}

}  // namespace
}  // namespace moira
