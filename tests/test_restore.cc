// Tests for the checkpoint + changelog lifecycle (DESIGN.md "Checkpoint &
// changelog lifecycle"): journal directory mode (segment rotation, on-disk
// truncation, restart recovery), crash-safe checkpoint writing, the
// scheduled lifecycle pass, offline point-in-time recovery, and the
// end-to-end checkpoint → rotate → truncate → restart → replica bootstrap
// flow under the seeded fault plan.
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

#include "src/backup/backup.h"
#include "src/backup/checkpoint.h"
#include "src/client/client.h"
#include "src/dcm/cron.h"
#include "src/repl/repl_fault.h"
#include "src/repl/replica.h"
#include "src/server/server.h"
#include "tests/test_env.h"

namespace moira {
namespace {

namespace fs = std::filesystem;

fs::path TempDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "moira-test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JournalEntry MakeEntry(UnixTime when, const std::string& query) {
  return JournalEntry{0, when, "p", "c", query, {}};
}

// Every journal file under dir (sealed segments + live), parsed.
std::vector<JournalEntry> DiskEntries(const fs::path& dir) {
  std::optional<std::vector<JournalEntry>> entries = Journal::ReadRange(dir.string());
  EXPECT_TRUE(entries.has_value());
  return entries.value_or(std::vector<JournalEntry>{});
}

// Asserts the on-disk bytes describe exactly the journal's retained entries.
void ExpectDiskMatchesMemory(const Journal& journal, const fs::path& dir) {
  std::vector<JournalEntry> disk = DiskEntries(dir);
  ASSERT_EQ(journal.entries().size(), disk.size());
  for (size_t i = 0; i < disk.size(); ++i) {
    EXPECT_EQ(journal.entries()[i].ToLine(), disk[i].ToLine()) << "entry " << i;
  }
}

// --- Journal directory mode: rotation, truncation, recovery ---

TEST(JournalDirTest, RotateSealsLiveIntoNamedSegment) {
  fs::path dir = TempDir("dir-rotate");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  for (int i = 1; i <= 3; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  ASSERT_TRUE(journal.Rotate());
  ASSERT_EQ(1u, journal.segments().size());
  EXPECT_EQ(1u, journal.segments()[0].first_seq);
  EXPECT_EQ(3u, journal.segments()[0].last_seq);
  EXPECT_TRUE(fs::exists(dir / "journal.1-3"));
  // The live file is fresh; the next append lands there.
  journal.Append(MakeEntry(200, "q4"));
  ASSERT_TRUE(journal.Rotate());
  EXPECT_TRUE(fs::exists(dir / "journal.4-4"));
  // An empty live file has nothing to seal.
  EXPECT_FALSE(journal.Rotate());
  ExpectDiskMatchesMemory(journal, dir);
}

TEST(JournalDirTest, AutoRotateAtThreshold) {
  fs::path dir = TempDir("dir-auto-rotate");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  journal.set_rotate_threshold(4);
  for (int i = 1; i <= 10; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  // 10 entries at threshold 4: two sealed segments plus a live tail of 2.
  ASSERT_EQ(2u, journal.segments().size());
  EXPECT_TRUE(fs::exists(dir / "journal.1-4"));
  EXPECT_TRUE(fs::exists(dir / "journal.5-8"));
  EXPECT_EQ(10u, journal.last_seq());
  ExpectDiskMatchesMemory(journal, dir);
}

TEST(JournalDirTest, TruncateRetiresWholeSegmentsOnDisk) {
  fs::path dir = TempDir("dir-truncate");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  journal.set_rotate_threshold(3);
  for (int i = 1; i <= 9; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  // Segments 1-3 and 4-6 sealed, 7..9 live.  Truncating through 6 deletes
  // both sealed segments and advances base_seq to the boundary.
  EXPECT_EQ(6u, journal.TruncateThrough(6));
  EXPECT_EQ(6u, journal.base_seq());
  EXPECT_EQ(7u, journal.first_seq());
  EXPECT_FALSE(fs::exists(dir / "journal.1-3"));
  EXPECT_FALSE(fs::exists(dir / "journal.4-6"));
  ExpectDiskMatchesMemory(journal, dir);
  // Reloading the directory sees exactly the retained entries.
  Journal reloaded;
  EXPECT_EQ(3, reloaded.AttachDirectory(dir.string()));
  EXPECT_EQ(6u, reloaded.base_seq());
  EXPECT_EQ(9u, reloaded.last_seq());
}

TEST(JournalDirTest, TruncateMidSegmentKeepsWholeSegment) {
  fs::path dir = TempDir("dir-truncate-mid");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  journal.set_rotate_threshold(3);
  for (int i = 1; i <= 7; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  // Cut lands inside segment 4-6: only 1-3 retires; 4..7 all stay, on disk
  // and in memory, because truncation is segment-granular.
  EXPECT_EQ(3u, journal.TruncateThrough(5));
  EXPECT_EQ(3u, journal.base_seq());
  EXPECT_EQ(4u, journal.first_seq());
  EXPECT_TRUE(fs::exists(dir / "journal.4-6"));
  ExpectDiskMatchesMemory(journal, dir);
}

TEST(JournalDirTest, TruncateCoveringLiveSealsItFirst) {
  fs::path dir = TempDir("dir-truncate-live");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  for (int i = 1; i <= 5; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  // The cut covers the whole live file: it is sealed and retired, so the
  // truncated entries cannot resurrect on restart.
  EXPECT_EQ(5u, journal.TruncateThrough(5));
  EXPECT_EQ(5u, journal.base_seq());
  EXPECT_TRUE(journal.entries().empty());
  EXPECT_TRUE(DiskEntries(dir).empty());
  Journal reloaded;
  EXPECT_EQ(0, reloaded.AttachDirectory(dir.string()));
  EXPECT_TRUE(reloaded.entries().empty());
  // Sequence numbering survives via recovery from a checkpoint stamp, not
  // the empty directory; a fresh attach with after_seq carries it.
  Journal stamped;
  EXPECT_EQ(0, stamped.AttachDirectory(dir.string(), 5));
  EXPECT_EQ(5u, stamped.last_seq());
  EXPECT_EQ(6u, stamped.Append(MakeEntry(200, "q6")));
}

TEST(JournalDirTest, ClearWipesDisk) {
  fs::path dir = TempDir("dir-clear");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  journal.set_rotate_threshold(2);
  for (int i = 1; i <= 5; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  journal.Clear();
  EXPECT_TRUE(journal.entries().empty());
  EXPECT_EQ(5u, journal.base_seq());
  EXPECT_TRUE(DiskEntries(dir).empty());
  // Appends continue the sequence into a fresh live file.
  EXPECT_EQ(6u, journal.Append(MakeEntry(200, "q6")));
  ASSERT_EQ(1u, DiskEntries(dir).size());
}

TEST(JournalDirTest, AttachRecoversAcrossSegmentsAndLive) {
  fs::path dir = TempDir("dir-recover");
  {
    Journal journal;
    ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
    journal.set_rotate_threshold(3);
    for (int i = 1; i <= 8; ++i) {
      journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
    }
    journal.TruncateThrough(3);
  }
  Journal journal;
  EXPECT_EQ(5, journal.AttachDirectory(dir.string()));
  EXPECT_EQ(3u, journal.base_seq());  // restored from the first seq on disk
  EXPECT_EQ(4u, journal.first_seq());
  EXPECT_EQ(8u, journal.last_seq());
  // Appends resume both numbering and the previous live file.
  EXPECT_EQ(9u, journal.Append(MakeEntry(200, "q9")));
  ExpectDiskMatchesMemory(journal, dir);
  // After_seq skips entries a checkpoint already covers but keeps numbering.
  Journal tail;
  EXPECT_EQ(2, tail.AttachDirectory(dir.string(), 7));
  EXPECT_EQ(7u, tail.base_seq());
  EXPECT_EQ(9u, tail.last_seq());
  ASSERT_EQ(2u, tail.entries().size());
  EXPECT_EQ(8u, tail.entries()[0].seq);
}

TEST(JournalDirTest, TornLiveTailSkippedOnAttach) {
  fs::path dir = TempDir("dir-torn");
  {
    Journal journal;
    ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
    journal.Append(MakeEntry(100, "q1"));
    journal.Append(MakeEntry(101, "q2"));
  }
  {
    // Crash mid-append: a torn final line in the live file.
    std::ofstream out(dir / "journal", std::ios::app | std::ios::binary);
    out << "3:10";
  }
  Journal journal;
  EXPECT_EQ(2, journal.AttachDirectory(dir.string()));
  EXPECT_EQ(1, journal.corrupt_lines_skipped());
  EXPECT_EQ(2u, journal.last_seq());
  // The journal remains appendable; seq 3 is reassigned cleanly.
  EXPECT_EQ(3u, journal.Append(MakeEntry(200, "q3")));
}

TEST(JournalDirTest, CrashDuringRotationLeavesConsistentState) {
  fs::path dir = TempDir("dir-crash-rotate");
  {
    Journal journal;
    ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
    for (int i = 1; i <= 4; ++i) {
      journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
    }
  }
  // Rotation is a single rename; a crash leaves either the live file or the
  // sealed segment, never both.  Simulate the post-rename crash (segment
  // exists, live file gone — the reopen never happened).
  fs::rename(dir / "journal", dir / "journal.1-4");
  Journal journal;
  EXPECT_EQ(4, journal.AttachDirectory(dir.string()));
  EXPECT_EQ(4u, journal.last_seq());
  ASSERT_EQ(1u, journal.segments().size());
  // The recreated live file picks up where the sealed segment stopped.
  EXPECT_EQ(5u, journal.Append(MakeEntry(200, "q5")));
  ExpectDiskMatchesMemory(journal, dir);
}

TEST(JournalDirTest, ReadRangeFiltersBySeq) {
  fs::path dir = TempDir("dir-readrange");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  journal.set_rotate_threshold(2);
  for (int i = 1; i <= 7; ++i) {
    journal.Append(MakeEntry(100 + i, "q" + std::to_string(i)));
  }
  std::optional<std::vector<JournalEntry>> mid = Journal::ReadRange(dir.string(), 2, 5);
  ASSERT_TRUE(mid.has_value());
  ASSERT_EQ(3u, mid->size());
  EXPECT_EQ(3u, mid->front().seq);
  EXPECT_EQ(5u, mid->back().seq);
  EXPECT_FALSE(Journal::ReadRange((dir / "nope").string()).has_value());
}

TEST(JournalDirTest, SetFileAfterAttachDropsDirectoryMode) {
  fs::path dir = TempDir("dir-setfile");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(dir.string()));
  journal.Append(MakeEntry(100, "q1"));
  journal.SetFile((dir / "flat").string());
  EXPECT_TRUE(journal.directory().empty());
  journal.Append(MakeEntry(101, "q2"));
  EXPECT_FALSE(journal.Rotate());
}

// --- Checkpoint writing, listing, pruning ---

class CheckpointTest : public MoiraEnv {};

TEST_F(CheckpointTest, WriteListLoadRoundTrip) {
  fs::path root = TempDir("cp-roundtrip");
  AddActiveUser("cpuser", 900);
  ASSERT_TRUE(CheckpointManager::Write(*db_, root.string(), 41));
  ASSERT_TRUE(CheckpointManager::Write(*db_, root.string(), 57));
  // Duplicate seq refuses rather than clobbering.
  EXPECT_FALSE(CheckpointManager::Write(*db_, root.string(), 57));
  std::vector<CheckpointRef> all = CheckpointManager::List(root.string());
  ASSERT_EQ(2u, all.size());
  EXPECT_EQ(41u, all[0].seq);
  EXPECT_EQ(57u, all[1].seq);
  ASSERT_TRUE(CheckpointManager::Latest(root.string()).has_value());
  EXPECT_EQ(57u, CheckpointManager::Latest(root.string())->seq);
  EXPECT_EQ(41u, CheckpointManager::LatestAtOrBefore(root.string(), 56)->seq);
  EXPECT_FALSE(CheckpointManager::LatestAtOrBefore(root.string(), 40).has_value());
  // Loading reproduces the dump byte-for-byte.
  const std::string golden = BackupManager::DumpToString(*db_);
  SimulatedClock clock2(568000000);
  Database db2(&clock2);
  CreateMoiraSchema(&db2);
  SeedMoiraDefaults(&db2);
  ASSERT_TRUE(CheckpointManager::Load(&db2, all[1]));
  EXPECT_EQ(golden, BackupManager::DumpToString(db2));
}

TEST_F(CheckpointTest, CrashedWriteIsInvisible) {
  fs::path root = TempDir("cp-crash");
  ASSERT_TRUE(CheckpointManager::Write(*db_, root.string(), 10));
  // A crash mid-write leaves checkpoint.tmp without a rename: ignored.
  fs::create_directories(root / "checkpoint.tmp");
  std::ofstream(root / "checkpoint.tmp" / "users") << "partial";
  // A renamed directory whose stamp is missing or disagrees is also ignored
  // (tampering or a torn stamp write).
  fs::create_directories(root / "checkpoint.99");
  fs::create_directories(root / "checkpoint.77");
  std::ofstream(root / "checkpoint.77" / kCheckpointStampName) << 76 << '\n';
  std::vector<CheckpointRef> all = CheckpointManager::List(root.string());
  ASSERT_EQ(1u, all.size());
  EXPECT_EQ(10u, all[0].seq);
  // The next writer replaces the stale tmp and succeeds.
  ASSERT_TRUE(CheckpointManager::Write(*db_, root.string(), 20));
  EXPECT_EQ(20u, CheckpointManager::Latest(root.string())->seq);
  EXPECT_FALSE(fs::exists(root / "checkpoint.tmp"));
}

TEST_F(CheckpointTest, PruneKeepsNewest) {
  fs::path root = TempDir("cp-prune");
  for (uint64_t seq : {5u, 10u, 15u, 20u}) {
    ASSERT_TRUE(CheckpointManager::Write(*db_, root.string(), seq));
  }
  EXPECT_EQ(2, CheckpointManager::Prune(root.string(), 2));
  std::vector<CheckpointRef> all = CheckpointManager::List(root.string());
  ASSERT_EQ(2u, all.size());
  EXPECT_EQ(15u, all[0].seq);
  EXPECT_EQ(20u, all[1].seq);
  EXPECT_EQ(0, CheckpointManager::Prune(root.string(), 2));
}

// --- The scheduled lifecycle pass ---

class LifecycleTest : public MoiraEnv {
 protected:
  // Journals a mutation the way the server does, so replay reproduces it.
  void JournaledWrite(Journal* journal, const std::string& query,
                      const std::vector<std::string>& args) {
    ASSERT_EQ(MR_SUCCESS, RunRoot(query, args));
    journal->Append(JournalEntry{0, clock_.Now(), "root", "test", query, args});
  }
};

TEST_F(LifecycleTest, PassCheckpointsRotatesAndTruncates) {
  fs::path root = TempDir("life-pass");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  for (int i = 0; i < 4; ++i) {
    JournaledWrite(&journal, "add_machine", {"LC" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  CheckpointPolicy policy;
  policy.keep = 2;
  CheckpointSummary summary = RunCheckpointPass(*db_, &journal, policy);
  EXPECT_TRUE(summary.ran);
  EXPECT_EQ(4u, summary.seq);
  EXPECT_EQ(1u, summary.segments_retired);
  EXPECT_EQ(4u, summary.entries_truncated);
  EXPECT_EQ(4u, journal.base_seq());
  EXPECT_TRUE(DiskEntries(root).empty());
  ASSERT_EQ(1u, CheckpointManager::List(root.string()).size());
  // No new entries: the next pass skips (no disk churn on an idle primary).
  CheckpointSummary skipped = RunCheckpointPass(*db_, &journal, policy);
  EXPECT_FALSE(skipped.ran);
  ASSERT_EQ(1u, CheckpointManager::List(root.string()).size());
  // More writes re-arm it; old checkpoints are pruned to `keep`.
  for (int i = 4; i < 6; ++i) {
    JournaledWrite(&journal, "add_machine", {"LC" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  CheckpointSummary second = RunCheckpointPass(*db_, &journal, policy);
  EXPECT_TRUE(second.ran);
  EXPECT_EQ(6u, second.seq);
  EXPECT_EQ(2u, CheckpointManager::List(root.string()).size());
}

TEST_F(LifecycleTest, GraceWindowRetainsTail) {
  fs::path root = TempDir("life-grace");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  journal.set_rotate_threshold(2);
  for (int i = 0; i < 6; ++i) {
    JournaledWrite(&journal, "add_machine", {"LG" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  CheckpointPolicy policy;
  policy.grace_entries = 3;
  CheckpointSummary summary = RunCheckpointPass(*db_, &journal, policy);
  EXPECT_TRUE(summary.ran);
  EXPECT_EQ(6u, summary.seq);
  // The cut is 6 - 3 = 3, which lands mid-segment 3-4: only 1-2 retires, so
  // a replica at seq >= 2 still catches up over the wire.
  EXPECT_EQ(2u, journal.base_seq());
  EXPECT_EQ(3u, journal.first_seq());
}

TEST_F(LifecycleTest, CronDrivesThePass) {
  fs::path root = TempDir("life-cron");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  JournaledWrite(&journal, "add_machine", {"CRON1.MIT.EDU", "VAX"});
  CronScheduler cron(&clock_);
  CheckpointSummary last;
  ScheduleCheckpoints(&cron, db_.get(), &journal, kSecondsPerHour, CheckpointPolicy{},
                      &last);
  EXPECT_EQ(0, cron.RunDue());  // not due yet
  clock_.Advance(kSecondsPerHour);
  EXPECT_EQ(1, cron.RunDue());
  EXPECT_TRUE(last.ran);
  EXPECT_EQ(1u, last.seq);
  // Operator "checkpoint now" fires without waiting for the interval.
  JournaledWrite(&journal, "add_machine", {"CRON2.MIT.EDU", "VAX"});
  ASSERT_TRUE(cron.TriggerNow("checkpoint"));
  EXPECT_TRUE(last.ran);
  EXPECT_EQ(2u, last.seq);
  EXPECT_FALSE(cron.TriggerNow("no-such-job"));
}

// --- Recovery: checkpoint + tail replay ---

class RecoveryTest : public LifecycleTest {
 protected:
  // A freshly seeded context, as a restarted server would build.
  struct Fresh {
    SimulatedClock clock{568000000};
    std::unique_ptr<Database> db;
    std::unique_ptr<MoiraContext> mc;
    Fresh() {
      db = std::make_unique<Database>(&clock);
      CreateMoiraSchema(db.get());
      SeedMoiraDefaults(db.get());
      mc = std::make_unique<MoiraContext>(db.get());
    }
  };
};

TEST_F(RecoveryTest, RecoverReplaysCheckpointPlusTail) {
  fs::path root = TempDir("rec-replay");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  for (int i = 0; i < 3; ++i) {
    clock_.Advance(60);
    JournaledWrite(&journal, "add_machine", {"RC" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  ASSERT_TRUE(RunCheckpointPass(*db_, &journal).ran);
  for (int i = 3; i < 5; ++i) {
    clock_.Advance(60);
    JournaledWrite(&journal, "add_machine", {"RC" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  const std::string golden = BackupManager::DumpToString(*db_);

  Fresh fresh;
  Journal journal2;
  std::optional<RecoveryResult> result =
      RecoverServerState(fresh.mc.get(), &fresh.clock, &journal2, root.string());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(3u, result->checkpoint_seq);
  EXPECT_EQ(2, result->entries_loaded);
  EXPECT_EQ(2, result->entries_replayed);
  EXPECT_EQ(5u, result->last_seq);
  EXPECT_EQ(3u, journal2.base_seq());
  EXPECT_EQ(5u, journal2.last_seq());
  // Replay at recorded times: modtime stamps and the whole dump match.
  EXPECT_EQ(golden, BackupManager::DumpToString(*fresh.db));
}

TEST_F(RecoveryTest, RecoverWithoutCheckpointReplaysFromSeed) {
  fs::path root = TempDir("rec-nocp");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  for (int i = 0; i < 3; ++i) {
    clock_.Advance(60);
    JournaledWrite(&journal, "add_machine", {"RN" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  const std::string golden = BackupManager::DumpToString(*db_);
  Fresh fresh;
  Journal journal2;
  std::optional<RecoveryResult> result =
      RecoverServerState(fresh.mc.get(), &fresh.clock, &journal2, root.string());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(0u, result->checkpoint_seq);
  EXPECT_EQ(3, result->entries_replayed);
  EXPECT_EQ(golden, BackupManager::DumpToString(*fresh.db));
}

TEST_F(RecoveryTest, RecoverRefusesGappedTail) {
  fs::path root = TempDir("rec-gap");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  journal.set_rotate_threshold(2);
  for (int i = 0; i < 6; ++i) {
    JournaledWrite(&journal, "add_machine", {"RG" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  ASSERT_TRUE(RunCheckpointPass(*db_, &journal).ran);
  for (int i = 6; i < 10; ++i) {
    JournaledWrite(&journal, "add_machine", {"RG" + std::to_string(i) + ".MIT.EDU", "VAX"});
  }
  // An operator deletes a mid-tail segment: the checkpoint (seq 6) no longer
  // connects to what is left, and recovery must refuse rather than silently
  // replay around the hole.
  ASSERT_TRUE(fs::remove(root / "journal.7-8"));
  Fresh fresh;
  Journal journal2;
  EXPECT_FALSE(
      RecoverServerState(fresh.mc.get(), &fresh.clock, &journal2, root.string())
          .has_value());
}

TEST_F(RecoveryTest, PointInTimeRestoreMatchesReferenceDumps) {
  fs::path root = TempDir("restore-pit");
  Journal journal;
  ASSERT_EQ(0, journal.AttachDirectory(root.string()));
  journal.set_rotate_threshold(2);
  std::map<uint64_t, std::string> reference;  // seq -> dump after that seq
  for (int i = 0; i < 9; ++i) {
    clock_.Advance(60);
    JournaledWrite(&journal, "add_machine", {"PT" + std::to_string(i) + ".MIT.EDU", "VAX"});
    reference[journal.last_seq()] = BackupManager::DumpToString(*db_);
    if (i == 4) {
      // A mid-history checkpoint, so later targets recover from it and
      // earlier targets fall back to seed + full replay.
      CheckpointPolicy policy;
      policy.grace_entries = 100;  // keep every segment for the early targets
      ASSERT_TRUE(RunCheckpointPass(*db_, &journal, policy).ran);
    }
  }
  for (uint64_t target : {2u, 5u, 7u, 9u}) {
    Fresh fresh;
    std::optional<RecoveryResult> result =
        RestoreToSeq(fresh.mc.get(), &fresh.clock, root.string(), target);
    ASSERT_TRUE(result.has_value()) << "target " << target;
    EXPECT_EQ(target, result->last_seq);
    EXPECT_EQ(target <= 4 ? 0u : 5u, result->checkpoint_seq) << "target " << target;
    EXPECT_EQ(reference[target], BackupManager::DumpToString(*fresh.db))
        << "target " << target;
  }
}

// --- End-to-end: checkpoint → rotate → truncate → restart → bootstrap ---

class RestoreE2ETest : public MoiraEnv {
 protected:
  void SetUp() override {
    root_ = TempDir("restore-e2e");
    options_.data_dir = root_.string();
    primary_ = std::make_unique<MoiraServer>(mc_.get(), realm_.get(), options_);
    ASSERT_EQ(0, primary_->journal().AttachDirectory(root_.string()));
    primary_->journal().set_rotate_threshold(3);
    realm_->AddPrincipal("root", "rootpw");
    // Every mutation goes through the wire so it is journalled.
    MrClient admin = MakeAdmin();
    ASSERT_EQ(MR_SUCCESS,
              admin.Query("add_user",
                          {"jrandom", "100", "/bin/csh", "Lastjrandom", "Firstjrandom",
                           "Q", "1", "hashjrandom", "G"},
                          [](Tuple) {}));
  }

  MrClient::Connector PrimaryConnector() {
    return [this] { return std::make_unique<LoopbackChannel>(primary_.get()); };
  }

  MrClient MakeAdmin() {
    MrClient client(PrimaryConnector());
    client.SetKerberosIdentity(realm_.get(), "root", "rootpw");
    EXPECT_EQ(MR_SUCCESS, client.Connect());
    EXPECT_EQ(MR_SUCCESS, client.Auth("ops"));
    return client;
  }

  std::unique_ptr<ReplicaServer> MakeReplica(const std::string& name) {
    ReplicaOptions options;
    options.name = name;
    auto replica = std::make_unique<ReplicaServer>(realm_.get(), options);
    replica->SetPrimaryLink(PrimaryConnector(), "root", "rootpw");
    return replica;
  }

  void AddMachine(MrClient& admin, const std::string& name) {
    ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {name, "VAX"}, [](Tuple) {}));
  }

  // Tears the primary down and recovers a replacement from the data
  // directory, exactly as a restarted moirad would.
  void RestartPrimary() {
    primary_.reset();
    const UnixTime wall = clock_.Now();
    restart_clock_ = std::make_unique<SimulatedClock>(568000000);
    restart_db_ = std::make_unique<Database>(restart_clock_.get());
    CreateMoiraSchema(restart_db_.get());
    SeedMoiraDefaults(restart_db_.get());
    restart_mc_ = std::make_unique<MoiraContext>(restart_db_.get());
    primary_ = std::make_unique<MoiraServer>(restart_mc_.get(), realm_.get(), options_);
    std::optional<RecoveryResult> recovered = RecoverServerState(
        restart_mc_.get(), restart_clock_.get(), &primary_->journal(), root_.string());
    ASSERT_TRUE(recovered.has_value());
    recovery_ = *recovered;
    primary_->journal().set_rotate_threshold(3);
    primary_->InvalidateAccessCaches();
    // Wall time continues across the restart (the realm's tickets and the
    // replicas' clocks live on clock_).
    restart_clock_->Set(wall);
  }

  Database& primary_db() { return restart_db_ ? *restart_db_ : *db_; }

  fs::path root_;
  ServerOptions options_;
  std::unique_ptr<MoiraServer> primary_;
  std::unique_ptr<SimulatedClock> restart_clock_;
  std::unique_ptr<Database> restart_db_;
  std::unique_ptr<MoiraContext> restart_mc_;
  RecoveryResult recovery_;
};

TEST_F(RestoreE2ETest, RestartTruncationReplicaBootstrapAndFaults) {
  MrClient admin = MakeAdmin();
  // seq 1 (add_user) .. seq 4.
  for (int i = 0; i < 3; ++i) {
    clock_.Advance(60);
    AddMachine(admin, "E2E" + std::to_string(i) + ".MIT.EDU");
  }
  // A replica that stops fetching at seq 4 — behind the coming cut at 7.
  std::unique_ptr<ReplicaServer> lagging = MakeReplica("lag");
  ASSERT_EQ(MR_SUCCESS, lagging->CatchUp());
  ASSERT_EQ(4u, lagging->applied_seq());
  // seq 5..7.
  for (int i = 3; i < 6; ++i) {
    clock_.Advance(60);
    AddMachine(admin, "E2E" + std::to_string(i) + ".MIT.EDU");
  }
  ASSERT_EQ(7u, primary_->journal().last_seq());

  // Checkpoint pass: checkpoint.7, segments sealed and retired.
  CheckpointPolicy policy;
  policy.keep = 2;
  CheckpointSummary summary = RunCheckpointPass(primary_db(), &primary_->journal(), policy);
  ASSERT_TRUE(summary.ran);
  EXPECT_EQ(7u, summary.seq);
  EXPECT_EQ(7u, primary_->journal().base_seq());
  EXPECT_TRUE(DiskEntries(root_).empty());

  // Post-checkpoint writes: seq 8..10 land in the new live file.
  for (int i = 6; i < 9; ++i) {
    clock_.Advance(60);
    AddMachine(admin, "E2E" + std::to_string(i) + ".MIT.EDU");
  }
  const std::string golden = BackupManager::DumpToString(primary_db());

  // Restart the primary from the data directory.  The replica's link channel
  // and the admin client point at the old server object; drop both before
  // tearing it down.
  lagging->DropLink();
  admin.Disconnect();
  RestartPrimary();
  EXPECT_EQ(7u, recovery_.checkpoint_seq);
  EXPECT_EQ(3, recovery_.entries_loaded);
  EXPECT_EQ(3, recovery_.entries_replayed);
  EXPECT_EQ(10u, primary_->journal().last_seq());
  EXPECT_EQ(7u, primary_->journal().base_seq());
  // Byte-identical recovery: same rows, same modby/modwith/modtime stamps.
  EXPECT_EQ(golden, BackupManager::DumpToString(primary_db()));

  // Satellite regression: the restarted primary must refuse to stream the
  // truncated prefix.  Before the base_seq restore fix this returned a
  // gapped range starting at seq 8 and the replica silently diverged.
  MrClient admin2 = MakeAdmin();
  EXPECT_EQ(MR_REPL_TRUNCATED,
            admin2.ReplFetch("probe", 1, 100, [](Tuple) { FAIL() << "gapped stream"; }));

  // The lagging replica reconnects behind the cut (applied_seq 4 < base 7):
  // its fetch from seq 5 answers MR_REPL_TRUNCATED and it falls back to a
  // snapshot — which, with a data directory, streams checkpoint.7 plus the
  // wire tail 8..10 rather than a full live dump.
  lagging->SetPrimaryLink(PrimaryConnector(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, lagging->CatchUp());
  EXPECT_EQ(1u, lagging->stats().snapshot_loads);
  EXPECT_EQ(7u, lagging->stats().last_snapshot_seq);
  EXPECT_EQ(10u, lagging->applied_seq());
  EXPECT_EQ(0u, lagging->stats().apply_failures);
  EXPECT_EQ(golden, BackupManager::DumpToString(lagging->db()));

  // A fresh replica bootstraps the same way: checkpoint + tail.
  std::unique_ptr<ReplicaServer> fresh = MakeReplica("fresh");
  ASSERT_EQ(MR_SUCCESS, fresh->CatchUp());
  EXPECT_EQ(7u, fresh->stats().last_snapshot_seq);
  EXPECT_EQ(golden, BackupManager::DumpToString(fresh->db()));

  // Seeded fault rounds against the recovered primary, then heal: everything
  // converges byte-identically and the lifecycle keeps running.
  std::vector<ReplicaServer*> raw{lagging.get(), fresh.get()};
  ReplFaultSpec spec;
  spec.seed = 1988;
  spec.crash_permille = 250;
  spec.flap_permille = 300;
  spec.slow_permille = 300;
  spec.slow_apply_limit = 2;
  spec.kdc_down_permille = 200;
  ReplFaultPlan plan(spec);
  MrClient admin3 = MakeAdmin();
  for (int round = 0; round < 8; ++round) {
    plan.ArmRound(raw, realm_.get(), round);
    clock_.Advance(30);
    restart_clock_->Set(clock_.Now());
    for (int w = 0; w < 3; ++w) {
      AddMachine(admin3, "F" + std::to_string(round) + "X" + std::to_string(w) + ".MIT.EDU");
    }
    if (round == 4) {
      // Mid-faults lifecycle pass: checkpoint, rotate, truncate under load.
      RunCheckpointPass(primary_db(), &primary_->journal(), policy);
    }
    for (ReplicaServer* replica : raw) {
      replica->CatchUp();
    }
  }
  realm_->SetDown(false);
  for (ReplicaServer* replica : raw) {
    if (replica->crashed()) {
      replica->Restart();
    }
    replica->set_apply_limit(0);
    ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  }
  const std::string healed = BackupManager::DumpToString(primary_db());
  for (ReplicaServer* replica : raw) {
    EXPECT_EQ(replica->applied_seq(), primary_->journal().last_seq()) << replica->name();
    EXPECT_EQ(0u, replica->stats().apply_failures) << replica->name();
    EXPECT_EQ(healed, BackupManager::DumpToString(replica->db())) << replica->name();
  }
  // And the on-disk journal still matches what the journal retains.
  ExpectDiskMatchesMemory(primary_->journal(), root_);
}

TEST_F(RestoreE2ETest, SnapshotFallsBackToLiveDumpWithoutCheckpoint) {
  MrClient admin = MakeAdmin();
  AddMachine(admin, "NOCP.MIT.EDU");
  // No checkpoint written yet: bootstrap streams the live tables cut at
  // last_seq, exactly the pre-lifecycle behaviour.
  std::unique_ptr<ReplicaServer> replica = MakeReplica("livecut");
  replica->Restart();  // force the snapshot path
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(primary_->journal().last_seq(), replica->stats().last_snapshot_seq);
  EXPECT_EQ(BackupManager::DumpToString(primary_db()),
            BackupManager::DumpToString(replica->db()));
}

}  // namespace
}  // namespace moira
