// Tests for the journal and the mrbackup / mrrestore system (paper section
// 5.2.2): escaping, dump/restore round trips, rotation, and journal replay.
#include <filesystem>

#include "src/backup/backup.h"
#include "src/server/journal.h"
#include "tests/test_env.h"

namespace moira {
namespace {

namespace fs = std::filesystem;

fs::path TempDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "moira-test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Escaping property sweep: every string survives the round trip, and the
// escaped form contains no raw colon or newline.
class EscapeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EscapeTest, RoundTripsAndIsClean) {
  const std::string& original = GetParam();
  std::string escaped = JournalEscape(original);
  EXPECT_EQ(original, JournalUnescape(escaped));
  EXPECT_EQ(std::string::npos, escaped.find('\n'));
  for (char c : escaped) {
    auto uc = static_cast<unsigned char>(c);
    EXPECT_TRUE(uc >= 0x20 && uc < 0x7f) << static_cast<int>(uc);
  }
  // Joining two escaped fields with a colon splits back into exactly two.
  std::vector<std::string> split = SplitEscaped(escaped + ":" + escaped);
  ASSERT_EQ(2u, split.size());
  EXPECT_EQ(original, split[0]);
  EXPECT_EQ(original, split[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Strings, EscapeTest,
    ::testing::Values("", "plain", "with:colon", "back\\slash", "tab\there",
                      std::string("nul\0middle", 10), "newline\nhere",
                      "\\:edge::\\\\", std::string("\xff\x80\x01", 3),
                      "Harmon C Fowler,,,,:/mit/babette:/bin/csh"));

TEST(UnescapeTest, MalformedSequencesCopyLiterally) {
  // Sequences JournalEscape never emits must not decode as garbage or drop
  // the backslash: the parser keeps them byte-for-byte.
  EXPECT_EQ("\\0x9", JournalUnescape("\\0x9"));   // non-octal digit at i+2
  EXPECT_EQ("\\079", JournalUnescape("\\079"));   // non-octal digit at i+3
  EXPECT_EQ("\\7", JournalUnescape("\\7"));       // short trailing escape
  EXPECT_EQ("\\81", JournalUnescape("\\81"));     // non-octal first digit
  EXPECT_EQ("\\", JournalUnescape("\\"));         // lone trailing backslash
  EXPECT_EQ("ab\\", JournalUnescape("ab\\"));
  // Well-formed escapes still decode.
  EXPECT_EQ("A", JournalUnescape("\\101"));
  EXPECT_EQ("\na", JournalUnescape("\\012a"));
  EXPECT_EQ(":", JournalUnescape("\\:"));
  EXPECT_EQ("\\", JournalUnescape("\\\\"));
  // A valid triple followed by more digits consumes exactly three.
  EXPECT_EQ("\0012", JournalUnescape(std::string("\\0012")).substr(0, 2));
}

TEST(UnescapeTest, FuzzNeverCrashesAndDecodedIsStable) {
  // Arbitrary byte soup through JournalUnescape: no crash, and re-escaping
  // the decoded form round-trips (escape ∘ unescape is idempotent on its
  // image, even when the input was never a legal escaped field).
  uint64_t state = 0xfeedface;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int iter = 0; iter < 500; ++iter) {
    std::string input;
    const size_t len = next() % 24;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(next() % 256);
    }
    std::string decoded = JournalUnescape(input);
    EXPECT_EQ(decoded, JournalUnescape(JournalEscape(decoded))) << "iter " << iter;
  }
}

TEST(SplitEscapedTest, FieldsSeparateCleanly) {
  std::vector<std::string> fields = {"a:b", "c\\d", "", "plain"};
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      line += ':';
    }
    line += JournalEscape(fields[i]);
  }
  EXPECT_EQ(fields, SplitEscaped(line));
}

TEST(JournalEntryTest, LineRoundTrip) {
  JournalEntry entry{7, 12345, "jrandom", "moira-app", "update_user_shell",
                     {"jrandom", "/bin:odd"}};
  std::optional<JournalEntry> back = JournalEntry::FromLine(entry.ToLine());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(entry.seq, back->seq);
  EXPECT_EQ(entry.when, back->when);
  EXPECT_EQ(entry.principal, back->principal);
  EXPECT_EQ(entry.client, back->client);
  EXPECT_EQ(entry.query, back->query);
  EXPECT_EQ(entry.args, back->args);
}

TEST(JournalEntryTest, RejectsMalformedLines) {
  EXPECT_FALSE(JournalEntry::FromLine("").has_value());
  EXPECT_FALSE(JournalEntry::FromLine("notaseq:123:p:c:q").has_value());
  EXPECT_FALSE(JournalEntry::FromLine("1:notatime:p:c:q").has_value());
  EXPECT_FALSE(JournalEntry::FromLine("1:123:only:three").has_value());
}

TEST(JournalTest, FilePersistenceAndReload) {
  fs::path dir = TempDir("journal");
  std::string path = (dir / "journal").string();
  {
    Journal journal;
    journal.SetFile(path);
    journal.Append(JournalEntry{0, 1, "a", "app", "q1", {"x"}});
    journal.Append(JournalEntry{0, 2, "b", "app", "q2", {}});
  }
  Journal reloaded;
  EXPECT_EQ(2, reloaded.LoadFile(path));
  ASSERT_EQ(2u, reloaded.entries().size());
  EXPECT_EQ("q1", reloaded.entries()[0].query);
  // Sequence numbers were assigned at append time and survive the reload.
  EXPECT_EQ(1u, reloaded.entries()[0].seq);
  EXPECT_EQ(2u, reloaded.last_seq());
  EXPECT_EQ(1u, reloaded.EntriesSince(1).size());
  EXPECT_EQ(-1, reloaded.LoadFile((dir / "missing").string()));
}

class BackupTest : public MoiraEnv {
 protected:
  void PopulateSomething() {
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"bk.mit.edu", "VAX"}));
    AddActiveUser("bkuser", 100);
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"bklist", "1", "0", "0", "1", "0", "-1",
                                               "USER", "bkuser", "weird: desc\\with\nstuff"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"bklist", "USER", "bkuser"}));
  }
};

TEST_F(BackupTest, RowLineRoundTrip) {
  Row row = {Value("name:with colon"), Value(int64_t{-42}), Value("")};
  TableSchema schema{"t",
                     {{"a", ColumnType::kString},
                      {"b", ColumnType::kInt},
                      {"c", ColumnType::kString}}};
  Row back;
  ASSERT_TRUE(BackupManager::LineToRow(BackupManager::RowToLine(row), schema, &back));
  EXPECT_EQ(row, back);
}

TEST_F(BackupTest, LineToRowRejectsArityAndTypeErrors) {
  TableSchema schema{"t", {{"a", ColumnType::kString}, {"b", ColumnType::kInt}}};
  Row row;
  EXPECT_FALSE(BackupManager::LineToRow("onlyone\n", schema, &row));
  EXPECT_FALSE(BackupManager::LineToRow("x:notint\n", schema, &row));
  EXPECT_TRUE(BackupManager::LineToRow("x:5\n", schema, &row));
}

TEST_F(BackupTest, DumpRestoreRoundTrip) {
  PopulateSomething();
  fs::path dir = TempDir("dump");
  int64_t bytes = BackupManager::Dump(*db_, dir);
  ASSERT_GT(bytes, 0);
  // Every relation gets a file.
  for (const std::string& name : db_->TableNames()) {
    EXPECT_TRUE(fs::exists(dir / name)) << name;
  }
  // Restore into a fresh "smstemp" database with the same schema.
  Database restored(&clock_);
  CreateMoiraSchema(&restored);
  ASSERT_EQ(MR_SUCCESS, BackupManager::Restore(&restored, dir));
  // Relations match row for row.
  for (const std::string& name : db_->TableNames()) {
    const Table* a = db_->GetTable(name);
    const Table* b = restored.GetTable(name);
    ASSERT_EQ(a->LiveCount(), b->LiveCount()) << name;
    std::vector<Row> rows_a;
    std::vector<Row> rows_b;
    a->Scan([&](size_t, const Row& r) {
      rows_a.push_back(r);
      return true;
    });
    b->Scan([&](size_t, const Row& r) {
      rows_b.push_back(r);
      return true;
    });
    EXPECT_EQ(rows_a, rows_b) << name;
  }
  // The restored database answers queries.
  MoiraContext restored_mc(&restored);
  EXPECT_EQ(MR_SUCCESS, restored_mc.UserByLogin("bkuser").code);
}

TEST_F(BackupTest, RestoreRefusesNonEmptyDatabase) {
  PopulateSomething();
  fs::path dir = TempDir("refuse");
  ASSERT_GT(BackupManager::Dump(*db_, dir), 0);
  EXPECT_EQ(MR_INTERNAL, BackupManager::Restore(db_.get(), dir));
}

TEST_F(BackupTest, NightlyRotationKeepsThree) {
  PopulateSomething();
  fs::path root = TempDir("rotate");
  ASSERT_GT(BackupManager::RotateAndDump(*db_, root), 0);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"second.mit.edu", "VAX"}));
  ASSERT_GT(BackupManager::RotateAndDump(*db_, root), 0);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"third.mit.edu", "VAX"}));
  ASSERT_GT(BackupManager::RotateAndDump(*db_, root), 0);
  ASSERT_GT(BackupManager::RotateAndDump(*db_, root), 0);
  EXPECT_TRUE(fs::exists(root / "backup_1"));
  EXPECT_TRUE(fs::exists(root / "backup_2"));
  EXPECT_TRUE(fs::exists(root / "backup_3"));
  // backup_3 is the oldest: it lacks third.mit.edu.
  Database old(&clock_);
  CreateMoiraSchema(&old);
  ASSERT_EQ(MR_SUCCESS, BackupManager::Restore(&old, root / "backup_3"));
  MoiraContext old_mc(&old);
  EXPECT_EQ(MR_MACHINE, old_mc.MachineByName("third.mit.edu").code);
  EXPECT_EQ(MR_SUCCESS, old_mc.MachineByName("second.mit.edu").code);
}

TEST_F(BackupTest, JournalReplayRecoversPostBackupChanges) {
  PopulateSomething();
  fs::path dir = TempDir("replay");
  ASSERT_GT(BackupManager::Dump(*db_, dir), 0);
  // Changes after the dump, captured in a journal.
  Journal journal;
  clock_.Advance(100);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"late.mit.edu", "RT"}));
  journal.Append(JournalEntry{0, clock_.Now(), "root", "test", "add_machine",
                              {"late.mit.edu", "RT"}});
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_user_shell", {"bkuser", "/bin/late"}));
  journal.Append(JournalEntry{0, clock_.Now(), "root", "test", "update_user_shell",
                              {"bkuser", "/bin/late"}});
  // Restore the backup, then replay the journal: no more than the journalled
  // window of transactions is lost.
  Database restored(&clock_);
  CreateMoiraSchema(&restored);
  ASSERT_EQ(MR_SUCCESS, BackupManager::Restore(&restored, dir));
  MoiraContext restored_mc(&restored);
  EXPECT_EQ(2, BackupManager::ReplayJournal(&restored_mc, journal.entries()));
  EXPECT_EQ(MR_SUCCESS, restored_mc.MachineByName("late.mit.edu").code);
  RowRef user = restored_mc.UserByLogin("bkuser");
  ASSERT_EQ(MR_SUCCESS, user.code);
  EXPECT_EQ("/bin/late",
            MoiraContext::StrCell(restored_mc.users(), user.row, "shell"));
}

}  // namespace
}  // namespace moira
