// Tests for the filesystem / nfsphys / quota queries (paper section 7.0.5).
#include "tests/test_env.h"

namespace moira {
namespace {

class FilesysQueriesTest : public MoiraEnv {
 protected:
  void SetUp() override {
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"charon.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"helen.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfsphys", {"charon.mit.edu", "/u1", "ra00",
                                                  std::to_string(kFsStudent), "0",
                                                  "100000"}));
    AddActiveUser("aab", 100);
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"aab-group", "1", "0", "0", "0", "1", "-1",
                                               "NONE", "NONE", "g"}));
  }

  int32_t AddNfsFilesys(const std::string& label) {
    return RunRoot("add_filesys", {label, "NFS", "charon.mit.edu", "/u1", "/mit/" + label,
                                   "w", "", "aab", "aab-group", "1", "HOMEDIR"});
  }
};

TEST_F(FilesysQueriesTest, AddAndGetNfsFilesys) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("aab"));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_filesys_by_label", {"aab"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  const Tuple& t = tuples[0];
  ASSERT_EQ(14u, t.size());
  EXPECT_EQ("aab", t[0]);
  EXPECT_EQ("NFS", t[1]);
  EXPECT_EQ("CHARON.MIT.EDU", t[2]);
  EXPECT_EQ("/u1", t[3]);
  EXPECT_EQ("/mit/aab", t[4]);
  EXPECT_EQ("w", t[5]);
  EXPECT_EQ("aab", t[7]);
  EXPECT_EQ("aab-group", t[8]);
  EXPECT_EQ("1", t[9]);
  EXPECT_EQ("HOMEDIR", t[10]);
}

TEST_F(FilesysQueriesTest, AddFilesysValidation) {
  EXPECT_EQ(MR_FSTYPE, RunRoot("add_filesys", {"x", "AFS", "charon.mit.edu", "/u1", "/m",
                                               "w", "", "aab", "aab-group", "1",
                                               "HOMEDIR"}));
  EXPECT_EQ(MR_TYPE, RunRoot("add_filesys", {"x", "NFS", "charon.mit.edu", "/u1", "/m",
                                             "w", "", "aab", "aab-group", "1", "CLOSET"}));
  EXPECT_EQ(MR_MACHINE, RunRoot("add_filesys", {"x", "NFS", "ghost.mit.edu", "/u1", "/m",
                                                "w", "", "aab", "aab-group", "1",
                                                "HOMEDIR"}));
  EXPECT_EQ(MR_USER, RunRoot("add_filesys", {"x", "NFS", "charon.mit.edu", "/u1", "/m",
                                             "w", "", "ghost", "aab-group", "1",
                                             "HOMEDIR"}));
  EXPECT_EQ(MR_LIST, RunRoot("add_filesys", {"x", "NFS", "charon.mit.edu", "/u1", "/m",
                                             "w", "", "aab", "ghostlist", "1", "HOMEDIR"}));
  // NFS packname must name an exported partition.
  EXPECT_EQ(MR_NFS, RunRoot("add_filesys", {"x", "NFS", "charon.mit.edu", "/u9", "/m", "w",
                                            "", "aab", "aab-group", "1", "HOMEDIR"}));
  // NFS access must be r or w.
  EXPECT_EQ(MR_FILESYS_ACCESS,
            RunRoot("add_filesys", {"x", "NFS", "charon.mit.edu", "/u1", "/m", "x", "",
                                    "aab", "aab-group", "1", "HOMEDIR"}));
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("dup"));
  EXPECT_EQ(MR_FILESYS_EXISTS, AddNfsFilesys("dup"));
}

TEST_F(FilesysQueriesTest, RvdFilesysSkipsNfsChecks) {
  // For RVD the packname and access may contain anything.
  EXPECT_EQ(MR_SUCCESS, RunRoot("add_filesys", {"ade", "RVD", "helen.mit.edu", "ade-pack",
                                                "/mnt/ade", "r", "", "aab", "aab-group",
                                                "0", "OTHER"}));
}

TEST_F(FilesysQueriesTest, LookupByMachineGroupAndNfsphys) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("fs1"));
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("fs2"));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_filesys_by_machine", {"charon.mit.edu"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("get_filesys_by_nfsphys", {"charon.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_filesys_by_group", {"aab-group"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  EXPECT_EQ(MR_MACHINE, RunRoot("get_filesys_by_machine", {"ghost.mit.edu"}));
}

TEST_F(FilesysQueriesTest, UpdateFilesys) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("mover"));
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_filesys",
                                {"mover", "moved", "NFS", "charon.mit.edu", "/u1",
                                 "/mit/moved", "r", "c", "aab", "aab-group", "0",
                                 "PROJECT"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_filesys_by_label", {"moved"}, &tuples));
  EXPECT_EQ("r", tuples[0][5]);
  EXPECT_EQ("PROJECT", tuples[0][10]);
  EXPECT_EQ(MR_FILESYS, RunRoot("update_filesys",
                                {"mover", "x", "NFS", "charon.mit.edu", "/u1", "/m", "w",
                                 "", "aab", "aab-group", "1", "HOMEDIR"}));
}

TEST_F(FilesysQueriesTest, NfsphysLifecycle) {
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_all_nfsphys", {}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("CHARON.MIT.EDU", tuples[0][0]);
  EXPECT_EQ("/u1", tuples[0][1]);
  EXPECT_EQ("100000", tuples[0][5]);
  EXPECT_EQ(MR_EXISTS, RunRoot("add_nfsphys", {"charon.mit.edu", "/u1", "ra01", "1", "0",
                                               "5"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_nfsphys", {"charon.mit.edu", "/u1", "ra09", "3",
                                                   "10", "200000"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"charon.mit.edu", "/u*"}, &tuples));
  EXPECT_EQ("ra09", tuples[0][2]);
  EXPECT_EQ("10", tuples[0][4]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("adjust_nfsphys_allocation", {"charon.mit.edu", "/u1",
                                                              "-4"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"charon.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ("6", tuples[0][4]);
}

TEST_F(FilesysQueriesTest, DeleteNfsphysBlockedWhileInUse) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("blocker"));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_nfsphys", {"charon.mit.edu", "/u1"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_filesys", {"blocker"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_nfsphys", {"charon.mit.edu", "/u1"}));
  EXPECT_EQ(MR_NFSPHYS, RunRoot("delete_nfsphys", {"charon.mit.edu", "/u1"}));
}

TEST_F(FilesysQueriesTest, QuotaLifecycleMaintainsAllocation) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("qfs"));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfs_quota", {"qfs", "aab", "500"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_nfs_quota", {"qfs", "aab", "100"}));
  EXPECT_EQ(MR_QUOTA, RunRoot("add_nfs_quota", {"qfs", "aab", "-5"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"charon.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ("500", tuples[0][4]);
  // Update adjusts allocation by the delta.
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_nfs_quota", {"qfs", "aab", "300"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"charon.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ("300", tuples[0][4]);
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfs_quota", {"qfs", "aab"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("300", tuples[0][2]);
  EXPECT_EQ("/u1", tuples[0][3]);
  EXPECT_EQ("CHARON.MIT.EDU", tuples[0][4]);
  // Delete releases the allocation.
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_nfs_quota", {"qfs", "aab"}));
  EXPECT_EQ(MR_NO_QUOTA, RunRoot("delete_nfs_quota", {"qfs", "aab"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"charon.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ("0", tuples[0][4]);
}

TEST_F(FilesysQueriesTest, QuotasByPartition) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("p1"));
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("p2"));
  AddActiveUser("second", 101);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfs_quota", {"p1", "aab", "100"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfs_quota", {"p2", "second", "200"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("get_nfs_quotas_by_partition", {"charon.mit.edu", "*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
}

TEST_F(FilesysQueriesTest, DeleteFilesysCascadesQuotas) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("cascade"));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfs_quota", {"cascade", "aab", "250"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_filesys", {"cascade"}));
  EXPECT_EQ(0u, mc_->nfsquota()->LiveCount());
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_nfsphys", {"charon.mit.edu", "/u1"}, &tuples));
  EXPECT_EQ("0", tuples[0][4]);  // allocation released
}

TEST_F(FilesysQueriesTest, QuotaSelfAccessAndGroupAccess) {
  ASSERT_EQ(MR_SUCCESS, AddNfsFilesys("selfq"));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfs_quota", {"selfq", "aab", "100"}));
  // aab may view their own quota.
  EXPECT_EQ(MR_SUCCESS, Run("aab", "get_nfs_quota", {"selfq", "aab"}));
  AddActiveUser("noseyq", 102);
  EXPECT_EQ(MR_PERM, Run("noseyq", "get_nfs_quota", {"selfq", "aab"}));
  // A member of the owning group may list the group's filesystems.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"aab-group", "USER", "aab"}));
  EXPECT_EQ(MR_SUCCESS, Run("aab", "get_filesys_by_group", {"aab-group"}));
  EXPECT_EQ(MR_PERM, Run("noseyq", "get_filesys_by_group", {"aab-group"}));
}

}  // namespace
}  // namespace moira
