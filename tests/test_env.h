// Shared fixtures for the Moira test suite.
#ifndef MOIRA_TESTS_TEST_ENV_H_
#define MOIRA_TESTS_TEST_ENV_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/comerr/moira_errors.h"
#include "src/common/clock.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/krb/kerberos.h"

namespace moira {

// A fresh, seeded, empty Moira database with a simulated clock starting at a
// realistic 1988 timestamp.
class MoiraEnv : public ::testing::Test {
 protected:
  MoiraEnv()
      : clock_(568000000)  // late 1987, in keeping with the paper's era
  {
    db_ = std::make_unique<Database>(&clock_);
    CreateMoiraSchema(db_.get());
    SeedMoiraDefaults(db_.get());
    mc_ = std::make_unique<MoiraContext>(db_.get());
    realm_ = std::make_unique<KerberosRealm>(&clock_);
    RegisterMoiraErrorTable();
  }

  // Runs a query as `principal` collecting tuples.
  int32_t Run(std::string_view principal, std::string_view query,
              const std::vector<std::string>& args, std::vector<Tuple>* tuples = nullptr) {
    return QueryRegistry::Instance().Execute(
        *mc_, principal, "test", query, args, [&](Tuple tuple) {
          if (tuples != nullptr) {
            tuples->push_back(std::move(tuple));
          }
        });
  }

  // Runs as root (the glue-library identity used by the DCM).
  int32_t RunRoot(std::string_view query, const std::vector<std::string>& args,
                  std::vector<Tuple>* tuples = nullptr) {
    return Run("root", query, args, tuples);
  }

  // Adds a minimal active user directly through the query layer.
  void AddActiveUser(const std::string& login, int uid) {
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {login, std::to_string(uid), "/bin/csh",
                                               "Last" + login, "First" + login, "Q", "1",
                                               "hash" + login, "G"}));
  }

  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<MoiraContext> mc_;
  std::unique_ptr<KerberosRealm> realm_;
};

}  // namespace moira

#endif  // MOIRA_TESTS_TEST_ENV_H_
