// Tests for the post office substrate and the inc client: the complete mail
// path from the mailhub aliases file to a user's workstation.
#include "src/dcm/dcm.h"
#include "src/dcm/generators.h"
#include "src/mailhub/mailhub.h"
#include "src/mailhub/pop_server.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

TEST(PopServer, DepositRetrieveDrainsBox) {
  PopServerSim po("ATHENA-PO-1.MIT.EDU");
  EXPECT_EQ(0u, po.waiting("babette"));
  po.Deposit("babette", "msg one");
  po.Deposit("babette", "msg two");
  EXPECT_EQ(2u, po.waiting("babette"));
  std::vector<std::string> mail = po.Retrieve("babette");
  ASSERT_EQ(2u, mail.size());
  EXPECT_EQ("msg one", mail[0]);
  EXPECT_EQ(0u, po.waiting("babette"));
  EXPECT_TRUE(po.Retrieve("babette").empty());
}

TEST(PopDirectory, RoutesLocalAddressesByShortName) {
  PopServerSim po1("ATHENA-PO-1.MIT.EDU");
  PopServerSim po2("ATHENA-PO-2.MIT.EDU");
  PopDirectory directory;
  directory.Register(&po1);
  directory.Register(&po2);
  EXPECT_TRUE(directory.DeliverLocal("babette@ATHENA-PO-2.LOCAL", "hi"));
  EXPECT_EQ(1u, po2.waiting("babette"));
  EXPECT_EQ(0u, po1.waiting("babette"));
  EXPECT_FALSE(directory.DeliverLocal("x@ATHENA-PO-9.LOCAL", "hi"));
  EXPECT_FALSE(directory.DeliverLocal("x@other.edu", "hi"));
  EXPECT_FALSE(directory.DeliverLocal("no-at-sign", "hi"));
}

class MailLoopTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    logins_ = builder.active_logins();
    pop_names_ = builder.pop_server_names();
    ZephyrBus zephyr(&clock_);
    hosts_ = CreateSimHosts(*mc_, realm_.get(), &directory_);
    Dcm dcm(mc_.get(), realm_.get(), &zephyr, &directory_);
    ConfigureStandardServices(&dcm);
    clock_.Advance(kSecondsPerDay);
    dcm.RunOnce();
    // Mailhub live, hesiod loaded, post offices up.
    mailhub_ = std::make_unique<MailhubSim>(directory_.Find("ATHENA.MIT.EDU"));
    ASSERT_GT(mailhub_->InstallStagedAliases(), 0);
    GeneratorResult hesiod_files;
    ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &hesiod_files));
    for (const auto& [name, contents] : hesiod_files.common.members()) {
      ASSERT_GE(hesiod_.LoadDb(contents), 0);
    }
    protocol_ = std::make_unique<HesiodProtocolServer>(&hesiod_);
    resolver_ = std::make_unique<HesiodResolver>(
        [this](std::string_view packet) { return protocol_->HandleQuery(packet); });
    for (const std::string& name : pop_names_) {
      pop_servers_.push_back(std::make_unique<PopServerSim>(name));
      pops_.Register(pop_servers_.back().get());
    }
  }

  std::vector<std::string> logins_;
  std::vector<std::string> pop_names_;
  HostDirectory directory_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::unique_ptr<MailhubSim> mailhub_;
  HesiodServer hesiod_;
  std::unique_ptr<HesiodProtocolServer> protocol_;
  std::unique_ptr<HesiodResolver> resolver_;
  std::vector<std::unique_ptr<PopServerSim>> pop_servers_;
  PopDirectory pops_;
};

TEST_F(MailLoopTest, MailReachesTheRightPostOffice) {
  const std::string& login = logins_[0];
  std::vector<std::string> route = mailhub_->Route(login);
  ASSERT_EQ(1u, route.size());
  ASSERT_TRUE(pops_.DeliverLocal(route[0], "hello from the hub"));
  // Exactly one post office holds the message, and it is the one Moira
  // assigned (visible through hesiod's pobox record).
  std::vector<std::string> pobox = hesiod_.Resolve(login, "pobox");
  ASSERT_EQ(1u, pobox.size());
  int holding = 0;
  for (const auto& po : pop_servers_) {
    if (po->waiting(login) > 0) {
      ++holding;
      EXPECT_NE(pobox[0].find(po->name()), std::string::npos);
    }
  }
  EXPECT_EQ(1, holding);
}

TEST_F(MailLoopTest, IncFetchesViaHesiod) {
  const std::string& login = logins_[1];
  std::vector<std::string> route = mailhub_->Route(login);
  ASSERT_EQ(1u, route.size());
  ASSERT_TRUE(pops_.DeliverLocal(route[0], "note 1"));
  ASSERT_TRUE(pops_.DeliverLocal(route[0], "note 2"));
  std::vector<std::string> messages;
  ASSERT_EQ(MR_SUCCESS, IncFetchMail(*resolver_, pops_, login, &messages));
  ASSERT_EQ(2u, messages.size());
  EXPECT_EQ("note 1", messages[0]);
  // The box drains.
  ASSERT_EQ(MR_SUCCESS, IncFetchMail(*resolver_, pops_, login, &messages));
  EXPECT_TRUE(messages.empty());
}

TEST_F(MailLoopTest, IncForUnknownUserFails) {
  std::vector<std::string> messages;
  EXPECT_EQ(MR_NO_POBOX, IncFetchMail(*resolver_, pops_, "stranger", &messages));
}

TEST_F(MailLoopTest, MaillistFansOutToMemberBoxes) {
  // Deliver to a mailing list through the hub; each member's post office
  // receives a copy addressed to them.
  std::vector<Tuple> members;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_members_of_list", {"ml-2"}, &members));
  std::vector<std::string> route = mailhub_->Route("ml-2");
  ASSERT_GE(route.size(), 1u);
  int delivered = 0;
  for (const std::string& address : route) {
    if (pops_.DeliverLocal(address, "list traffic")) {
      ++delivered;
    }
  }
  EXPECT_EQ(static_cast<int>(route.size()), delivered);
}

}  // namespace
}  // namespace moira
