// Tests for the menu package (paper section 5.6.3) and the cron substrate
// driving the DCM (paper section 5.7).
#include <gtest/gtest.h>

#include <sstream>

#include "src/client/menu.h"
#include "src/common/clock.h"
#include "src/dcm/cron.h"

namespace moira {
namespace {

Menu BuildTestMenu(std::vector<std::string>* log) {
  Menu menu("main");
  menu.AddCommand(MenuCommand{
      "greet",
      "prompt for a name and greet it",
      {"name"},
      [log](const std::vector<std::string>& args) {
        log->push_back("greet:" + args[0]);
        return "hello " + args[0];
      }});
  menu.AddCommand(MenuCommand{
      "noargs", "no prompts", {}, [log](const std::vector<std::string>&) {
        log->push_back("noargs");
        return std::string("done");
      }});
  Menu* sub = menu.AddSubmenu("users", "user menu");
  sub->AddCommand(MenuCommand{
      "shell",
      "change a shell",
      {"login", "shell"},
      [log](const std::vector<std::string>& args) {
        log->push_back("shell:" + args[0] + ":" + args[1]);
        return std::string("changed");
      }});
  return menu;
}

TEST(Menu, ExecutesCommandWithPrompts) {
  std::vector<std::string> log;
  Menu menu = BuildTestMenu(&log);
  std::istringstream in("greet\nworld\nq\n");
  std::ostringstream out;
  EXPECT_EQ(1, menu.Run(in, out));
  ASSERT_EQ(1u, log.size());
  EXPECT_EQ("greet:world", log[0]);
  EXPECT_NE(out.str().find("hello world"), std::string::npos);
  EXPECT_NE(out.str().find("name: "), std::string::npos);
}

TEST(Menu, SubmenuNavigationAndReturn) {
  std::vector<std::string> log;
  Menu menu = BuildTestMenu(&log);
  std::istringstream in("users\nshell\njr\n/bin/sh\nr\nnoargs\nq\n");
  std::ostringstream out;
  EXPECT_EQ(2, menu.Run(in, out));
  ASSERT_EQ(2u, log.size());
  EXPECT_EQ("shell:jr:/bin/sh", log[0]);
  EXPECT_EQ("noargs", log[1]);
}

TEST(Menu, UnknownCommandAndHelp) {
  std::vector<std::string> log;
  Menu menu = BuildTestMenu(&log);
  std::istringstream in("bogus\n?\nq\n");
  std::ostringstream out;
  EXPECT_EQ(0, menu.Run(in, out));
  EXPECT_NE(out.str().find("unknown command: bogus"), std::string::npos);
  EXPECT_NE(out.str().find("users -> user menu"), std::string::npos);
}

TEST(Menu, EofDuringPromptExitsCleanly) {
  std::vector<std::string> log;
  Menu menu = BuildTestMenu(&log);
  std::istringstream in("greet\n");  // EOF before the name arrives
  std::ostringstream out;
  EXPECT_EQ(0, menu.Run(in, out));
  EXPECT_TRUE(log.empty());
}

TEST(Menu, BlankLinesIgnored) {
  std::vector<std::string> log;
  Menu menu = BuildTestMenu(&log);
  std::istringstream in("\n\n  \nnoargs\nq\n");
  std::ostringstream out;
  EXPECT_EQ(1, menu.Run(in, out));
}

TEST(Cron, FiresAtInterval) {
  SimulatedClock clock(1000);
  CronScheduler cron(&clock);
  int fired = 0;
  cron.Schedule("dcm", 900, [&fired] { ++fired; });
  EXPECT_EQ(0, cron.RunDue());  // not yet due
  clock.Advance(899);
  EXPECT_EQ(0, cron.RunDue());
  clock.Advance(1);
  EXPECT_EQ(1, cron.RunDue());
  EXPECT_EQ(1, fired);
  // Not due again immediately.
  EXPECT_EQ(0, cron.RunDue());
  clock.Advance(900);
  EXPECT_EQ(1, cron.RunDue());
  EXPECT_EQ(2, fired);
}

TEST(Cron, MissedWindowsFireOnceNotNTimes) {
  SimulatedClock clock(0);
  CronScheduler cron(&clock);
  int fired = 0;
  cron.Schedule("dcm", 100, [&fired] { ++fired; });
  clock.Advance(1000);  // ten windows missed
  EXPECT_EQ(1, cron.RunDue());
  EXPECT_EQ(1, fired);
  clock.Advance(100);
  EXPECT_EQ(1, cron.RunDue());
  EXPECT_EQ(2, fired);
}

TEST(Cron, MultipleJobsIndependent) {
  SimulatedClock clock(0);
  CronScheduler cron(&clock);
  int fast = 0;
  int slow = 0;
  cron.Schedule("fast", 10, [&fast] { ++fast; });
  cron.Schedule("slow", 100, [&slow] { ++slow; });
  EXPECT_EQ(2u, cron.job_count());
  EXPECT_EQ(10, cron.NextDue());
  for (int t = 0; t < 10; ++t) {
    clock.Advance(10);
    cron.RunDue();
  }
  EXPECT_EQ(10, fast);
  EXPECT_EQ(1, slow);
}

TEST(Cron, NextDueEmptyIsZero) {
  SimulatedClock clock(0);
  CronScheduler cron(&clock);
  EXPECT_EQ(0, cron.NextDue());
  EXPECT_EQ(0, cron.RunDue());
}

}  // namespace
}  // namespace moira
