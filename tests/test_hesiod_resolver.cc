// Tests for the hes_resolve wire interface.
#include <gtest/gtest.h>

#include "src/hesiod/resolver.h"
#include "src/krb/kerberos.h"

namespace moira {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest()
      : protocol_(&hesiod_),
        resolver_([this](std::string_view packet) {
          return protocol_.HandleQuery(packet);
        }) {
    hesiod_.LoadDb(
        "babette.passwd HS UNSPECA \"babette:*:6530:101:,,,:/mit/babette:/bin/csh\"\n"
        "6530.uid HS CNAME babette.passwd\n"
        "babette.pobox HS UNSPECA \"POP PO-1.MIT.EDU babette\"\n");
  }

  HesiodServer hesiod_;
  HesiodProtocolServer protocol_;
  HesiodResolver resolver_;
};

TEST_F(ResolverTest, ResolvesOverTheWire) {
  std::vector<std::string> answers;
  EXPECT_EQ(HesiodRcode::kNoError, resolver_.Resolve("babette", "passwd", &answers));
  ASSERT_EQ(1u, answers.size());
  EXPECT_NE(answers[0].find("6530"), std::string::npos);
  EXPECT_EQ(1u, protocol_.queries_served());
}

TEST_F(ResolverTest, CnameChaseOverTheWire) {
  std::vector<std::string> answers;
  EXPECT_EQ(HesiodRcode::kNoError, resolver_.Resolve("6530", "uid", &answers));
  ASSERT_EQ(1u, answers.size());
  EXPECT_NE(answers[0].find("babette"), std::string::npos);
}

TEST_F(ResolverTest, MissIsNxDomain) {
  std::vector<std::string> answers;
  EXPECT_EQ(HesiodRcode::kNxDomain, resolver_.Resolve("nobody", "passwd", &answers));
  EXPECT_TRUE(answers.empty());
}

TEST_F(ResolverTest, GarbledQueryIsFormErr) {
  std::string reply = protocol_.HandleQuery("garbage");
  std::string_view view = reply;
  std::string rcode;
  ASSERT_TRUE(UnpackField(&view, &rcode));
  EXPECT_EQ("1", rcode);
}

TEST_F(ResolverTest, GarbledReplyIsFormErr) {
  HesiodResolver broken([](std::string_view) { return std::string("junk"); });
  std::vector<std::string> answers;
  EXPECT_EQ(HesiodRcode::kFormErr, broken.Resolve("a", "b", &answers));
}

TEST_F(ResolverTest, MultipleAnswersDelivered) {
  hesiod_.LoadDb("multi.cluster HS UNSPECA \"zephyr z1\"\n"
                 "multi.cluster HS UNSPECA \"lpr p1\"\n");
  std::vector<std::string> answers;
  EXPECT_EQ(HesiodRcode::kNoError, resolver_.Resolve("multi", "cluster", &answers));
  EXPECT_EQ(2u, answers.size());
}

}  // namespace
}  // namespace moira
