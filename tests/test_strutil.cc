// Unit and property tests for the Moira library string utilities (paper
// section 5.6.3).
#include <gtest/gtest.h>

#include <tuple>

#include "src/common/strutil.h"

namespace moira {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ("abc", TrimWhitespace("  abc\t\n"));
  EXPECT_EQ("a b", TrimWhitespace(" a b "));
  EXPECT_EQ("", TrimWhitespace("   "));
  EXPECT_EQ("", TrimWhitespace(""));
  EXPECT_EQ("x", TrimWhitespace("x"));
}

TEST(CaseFolding, UpperLower) {
  EXPECT_EQ("ABC-12.Z", ToUpperCopy("abc-12.z"));
  EXPECT_EQ("abc-12.z", ToLowerCopy("ABC-12.Z"));
  EXPECT_TRUE(EqualsIgnoreCase("HeLLo", "hEllO"));
  EXPECT_FALSE(EqualsIgnoreCase("hello", "hello!"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(SplitJoin, RoundTrips) {
  std::vector<std::string> parts = {"a", "", "b", "c"};
  EXPECT_EQ(parts, Split("a::b:c", ':'));
  EXPECT_EQ("a::b:c", Join(parts, ":"));
  EXPECT_EQ(std::vector<std::string>{""}, Split("", ':'));
}

TEST(ParseInt, AcceptsSignedDecimals) {
  EXPECT_EQ(42, ParseInt("42").value());
  EXPECT_EQ(-7, ParseInt("-7").value());
  EXPECT_EQ(0, ParseInt("0").value());
  EXPECT_EQ(123, ParseInt("  123  ").value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("-").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
}

TEST(LegalNameChars, RejectsFormatBreakingCharacters) {
  EXPECT_TRUE(IsLegalNameChars("jrandom"));
  EXPECT_TRUE(IsLegalNameChars("a-b_c.d@e"));
  EXPECT_FALSE(IsLegalNameChars("a:b"));
  EXPECT_FALSE(IsLegalNameChars("a*b"));
  EXPECT_FALSE(IsLegalNameChars("a?b"));
  EXPECT_FALSE(IsLegalNameChars("a\"b"));
  EXPECT_FALSE(IsLegalNameChars(std::string("a\x01") + "b"));
}

TEST(CanonicalizeHostname, UppercasesAndStripsDot) {
  EXPECT_EQ("E40-PO.MIT.EDU", CanonicalizeHostname("e40-po.mit.edu."));
  EXPECT_EQ("HOST", CanonicalizeHostname("  host "));
}

struct WildcardCase {
  const char* pattern;
  const char* value;
  bool matches;
};

class WildcardTest : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardTest, MatchesExpected) {
  const WildcardCase& c = GetParam();
  EXPECT_EQ(c.matches, WildcardMatch(c.pattern, c.value))
      << c.pattern << " vs " << c.value;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, WildcardTest,
    ::testing::Values(
        WildcardCase{"*", "", true}, WildcardCase{"*", "anything", true},
        WildcardCase{"abc", "abc", true}, WildcardCase{"abc", "abd", false},
        WildcardCase{"a*c", "abc", true}, WildcardCase{"a*c", "ac", true},
        WildcardCase{"a*c", "abxc", true}, WildcardCase{"a*c", "abx", false},
        WildcardCase{"*mit*", "kermit.mit.edu", true},
        WildcardCase{"a?c", "abc", true}, WildcardCase{"a?c", "ac", false},
        WildcardCase{"??", "ab", true}, WildcardCase{"??", "a", false},
        WildcardCase{"a**b", "ab", true}, WildcardCase{"a**b", "axyzb", true},
        WildcardCase{"", "", true}, WildcardCase{"", "x", false},
        WildcardCase{"*.mit.edu", "W1.MIT.EDU", false},
        WildcardCase{"x*y*z", "xAAyBBz", true}, WildcardCase{"x*y*z", "xzy", false}));

TEST(Wildcard, CaseInsensitiveVariant) {
  EXPECT_TRUE(WildcardMatch("*.mit.edu", "W1.MIT.EDU", /*case_insensitive=*/true));
  EXPECT_TRUE(WildcardMatch("ABC", "abc", true));
  EXPECT_FALSE(WildcardMatch("ABC", "abd", true));
}

TEST(Wildcard, HasWildcardDetection) {
  EXPECT_TRUE(HasWildcard("a*"));
  EXPECT_TRUE(HasWildcard("a?b"));
  EXPECT_FALSE(HasWildcard("plain-name.mit.edu"));
}

// Property: a pattern equal to the value (no metacharacters) always matches,
// and appending "*" keeps it matching.
class WildcardPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WildcardPropertyTest, ExactAndStarSuffix) {
  std::string value = GetParam();
  EXPECT_TRUE(WildcardMatch(value, value));
  EXPECT_TRUE(WildcardMatch(value + "*", value));
  EXPECT_TRUE(WildcardMatch("*" + value, value));
  EXPECT_TRUE(WildcardMatch(value + "*", value + "suffix"));
}

INSTANTIATE_TEST_SUITE_P(Values, WildcardPropertyTest,
                         ::testing::Values("", "a", "login", "e40-po.mit.edu",
                                           "x_y-z.123", "MiXeD"));

}  // namespace
}  // namespace moira
