// Tests for the Hesiod name server substrate (paper section 5.8.2).
#include <gtest/gtest.h>

#include "src/hesiod/hesiod.h"

namespace moira {
namespace {

constexpr char kSampleDb[] =
    "; comment line\n"
    "\n"
    "babette.passwd HS UNSPECA \"babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette"
    ":/bin/csh\"\n"
    "6530.uid HS CNAME babette.passwd\n"
    "bldge40-vs.cluster HS UNSPECA \"zephyr neskaya.mit.edu\"\n"
    "bldge40-vs.cluster HS UNSPECA \"lpr e40\"\n"
    "TOTO.cluster HS CNAME bldge40-vs.cluster\n"
    "HESIOD.sloc HS UNSPECA KIWI.MIT.EDU\n";

TEST(Hesiod, LoadsAndCounts) {
  HesiodServer server;
  EXPECT_EQ(6, server.LoadDb(kSampleDb));
  EXPECT_EQ(6u, server.record_count());
}

TEST(Hesiod, ResolvesUnspecA) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  std::vector<std::string> result = server.Resolve("babette", "passwd");
  ASSERT_EQ(1u, result.size());
  EXPECT_NE(result[0].find("Harmon C Fowler"), std::string::npos);
}

TEST(Hesiod, ResolvesMultipleRecords) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  EXPECT_EQ(2u, server.Resolve("bldge40-vs", "cluster").size());
}

TEST(Hesiod, ChasesCname) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  // uid -> passwd entry, machine -> cluster data.
  std::vector<std::string> uid = server.Resolve("6530", "uid");
  ASSERT_EQ(1u, uid.size());
  EXPECT_NE(uid[0].find("babette"), std::string::npos);
  EXPECT_EQ(2u, server.Resolve("TOTO", "cluster").size());
}

TEST(Hesiod, CaseInsensitiveLookups) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  EXPECT_EQ(1u, server.Resolve("BABETTE", "PASSWD").size());
  EXPECT_EQ(2u, server.Resolve("toto", "cluster").size());
}

TEST(Hesiod, UnquotedDataToken) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  std::vector<std::string> sloc = server.Resolve("HESIOD", "sloc");
  ASSERT_EQ(1u, sloc.size());
  EXPECT_EQ("KIWI.MIT.EDU", sloc[0]);
}

TEST(Hesiod, MissingNameIsEmpty) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  EXPECT_TRUE(server.Resolve("nobody", "passwd").empty());
  EXPECT_TRUE(server.Resolve("babette", "pobox").empty());
}

TEST(Hesiod, CnameCycleTerminates) {
  HesiodServer server;
  ASSERT_EQ(2, server.LoadDb("a.t HS CNAME b.t\nb.t HS CNAME a.t\n"));
  EXPECT_TRUE(server.Resolve("a", "t").empty());
}

TEST(Hesiod, DanglingCnameIsEmpty) {
  HesiodServer server;
  ASSERT_EQ(1, server.LoadDb("a.t HS CNAME missing.t\n"));
  EXPECT_TRUE(server.Resolve("a", "t").empty());
}

TEST(Hesiod, MalformedLinesRejected) {
  HesiodServer empty;
  EXPECT_EQ(-1, empty.LoadDb("not a record\n"));
  EXPECT_EQ(-1, empty.LoadDb("name.type HS BOGUSTYPE data\n"));
  EXPECT_EQ(-1, empty.LoadDb("name.type IN UNSPECA \"wrong class\"\n"));
  EXPECT_EQ(-1, empty.LoadDb("name.type HS UNSPECA \"unterminated\n"));
}

TEST(Hesiod, ReloadReplacesRecords) {
  HesiodServer server;
  ASSERT_GT(server.LoadDb(kSampleDb), 0);
  EXPECT_EQ(0, server.reload_count());
  // The Moira install script kills and restarts the server so the new files
  // are read into memory.
  int loaded = server.Reload({"fresh.passwd HS UNSPECA \"fresh:*:1:101::/mit/fresh:/bin/sh\"\n"});
  EXPECT_EQ(1, loaded);
  EXPECT_EQ(1, server.reload_count());
  EXPECT_TRUE(server.Resolve("babette", "passwd").empty());
  EXPECT_EQ(1u, server.Resolve("fresh", "passwd").size());
}

TEST(Hesiod, EmptyAndCommentOnlyFiles) {
  HesiodServer server;
  EXPECT_EQ(0, server.LoadDb(""));
  EXPECT_EQ(0, server.LoadDb("; nothing here\n;\n"));
}

}  // namespace
}  // namespace moira
