// Tests for the server-specific file generators (paper section 5.8.2):
// formats of the Hesiod .db files, the NFS files, the aliases file, and the
// Zephyr ACLs.
#include "src/dcm/generators.h"
#include "src/hesiod/hesiod.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class GeneratorTest : public MoiraEnv {
 protected:
  void SetUp() override {
    // Small site: 1 hesiod host, 2 NFS servers, 1 pop, 1 mailhub.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"suomi.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"athena-po-1.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"nfs-1.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"nfs-2.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfsphys",
                                  {"nfs-1.mit.edu", "/u1", "ra00", "1", "0", "99999"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfsphys",
                                  {"nfs-2.mit.edu", "/u1", "ra00", "1", "0", "99999"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info", {"NFS", "720", "/tmp/nfs.out",
                                                      "nfs.sh", "UNIQUE", "1", "NONE",
                                                      "NONE"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                  {"NFS", "nfs-1.mit.edu", "1", "0", "0", ""}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                  {"NFS", "nfs-2.mit.edu", "1", "0", "0", ""}));
    // Users: two active (one POP, one SMTP), one inactive.
    AddActiveUser("babette", 6530);
    AddActiveUser("abarba", 6531);
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {"ghost", "6532", "/bin/csh", "G", "H", "I",
                                               "0", "x", "G"}));
    ASSERT_EQ(MR_SUCCESS,
              RunRoot("set_pobox", {"babette", "POP", "athena-po-1.mit.edu"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("set_pobox", {"abarba", "SMTP", "abarba@other.edu"}));
    // Groups: babette's own group plus a project group containing both users.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"babette", "1", "0", "0", "0", "1", "10914",
                                               "USER", "babette", "user group"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"babette", "USER", "babette"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"proj", "1", "0", "0", "0", "1", "10915",
                                               "NONE", "NONE", "project"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"proj", "USER", "babette"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"proj", "USER", "abarba"}));
    // An inactive group must not be extracted.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"stale", "0", "0", "0", "0", "1", "10916",
                                               "NONE", "NONE", "inactive"}));
    // A maillist with a sublist and a string member.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"video-users", "1", "0", "0", "1", "0",
                                               "-1", "USER", "babette", "video"}));
    ASSERT_EQ(MR_SUCCESS,
              RunRoot("add_member_to_list", {"video-users", "USER", "abarba"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"video-users", "LIST", "proj"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list",
                                  {"video-users", "STRING", "rubin@media-lab.mit.edu"}));
    // A home filesystem with a quota.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_filesys",
                                  {"babette", "NFS", "nfs-1.mit.edu", "/u1/babette",
                                   "/mit/babette", "w", "", "babette", "babette", "1",
                                   "HOMEDIR"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfs_quota", {"babette", "babette", "300"}));
    // Printer, service, cluster with data and machine assignment.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_printcap", {"linus", "suomi.mit.edu",
                                                   "/usr/spool/printer/linus", "linus",
                                                   ""}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_service", {"smtp", "tcp", "25", "mail"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"bldge40", "d", "l"}));
    ASSERT_EQ(MR_SUCCESS,
              RunRoot("add_cluster_data", {"bldge40", "zephyr", "neskaya.mit.edu"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine_to_cluster", {"suomi.mit.edu", "bldge40"}));
    // Zephyr class with a LIST ace.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_zephyr_class",
                                  {"message", "LIST", "proj", "NONE", "NONE", "NONE",
                                   "NONE", "NONE", "NONE"}));
  }
};

TEST_F(GeneratorTest, HesiodProducesElevenFiles) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &result));
  EXPECT_EQ(11u, result.common.size());
  for (const char* file :
       {"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db", "passwd.db",
        "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db"}) {
    EXPECT_NE(nullptr, result.common.Find(file)) << file;
  }
}

TEST_F(GeneratorTest, HesiodFilesLoadIntoHesiodServer) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &result));
  HesiodServer server;
  for (const auto& [name, contents] : result.common.members()) {
    EXPECT_GE(server.LoadDb(contents), 0) << name;
  }
  // passwd lookups work end to end, including the uid CNAME.
  ASSERT_EQ(1u, server.Resolve("babette", "passwd").size());
  EXPECT_EQ(server.Resolve("babette", "passwd"), server.Resolve("6530", "uid"));
  // pobox only for the POP user.
  ASSERT_EQ(1u, server.Resolve("babette", "pobox").size());
  EXPECT_EQ("POP ATHENA-PO-1.MIT.EDU babette", server.Resolve("babette", "pobox")[0]);
  EXPECT_TRUE(server.Resolve("abarba", "pobox").empty());
  // Machine cluster CNAME.
  ASSERT_EQ(1u, server.Resolve("SUOMI.MIT.EDU", "cluster").size());
  EXPECT_EQ("zephyr neskaya.mit.edu", server.Resolve("SUOMI.MIT.EDU", "cluster")[0]);
}

TEST_F(GeneratorTest, PasswdDbFormatAndActiveOnly) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &result));
  const std::string& passwd = *result.common.Find("passwd.db");
  EXPECT_NE(passwd.find("babette.passwd HS UNSPECA \"babette:*:6530:101:"),
            std::string::npos);
  EXPECT_NE(passwd.find(":/mit/babette:/bin/csh\""), std::string::npos);
  // Inactive users are excluded from extracts.
  EXPECT_EQ(passwd.find("ghost"), std::string::npos);
}

TEST_F(GeneratorTest, GroupFilesConsistent) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &result));
  const std::string& group = *result.common.Find("group.db");
  const std::string& gid = *result.common.Find("gid.db");
  const std::string& grplist = *result.common.Find("grplist.db");
  EXPECT_NE(group.find("babette.group HS UNSPECA \"babette:*:10914:\""),
            std::string::npos);
  EXPECT_NE(gid.find("10914.gid HS CNAME babette.group"), std::string::npos);
  // Inactive group excluded everywhere.
  EXPECT_EQ(group.find("stale"), std::string::npos);
  EXPECT_EQ(gid.find("10916"), std::string::npos);
  // babette's grplist leads with her own group, then proj.
  EXPECT_NE(grplist.find("\"babette:10914:proj:10915\""), std::string::npos);
  // abarba is only in proj.
  EXPECT_NE(grplist.find("\"abarba:proj:10915\""), std::string::npos);
}

TEST_F(GeneratorTest, FilsysPrintcapServiceSloc) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &result));
  EXPECT_NE(result.common.Find("filsys.db")->find(
                "babette.filsys HS UNSPECA \"NFS /u1/babette nfs-1.mit.edu w "
                "/mit/babette\""),
            std::string::npos);
  EXPECT_NE(result.common.Find("printcap.db")
                ->find("linus.pcap HS UNSPECA "
                       "\"linus:rp=linus:rm=SUOMI.MIT.EDU:sd=/usr/spool/printer/linus\""),
            std::string::npos);
  EXPECT_NE(result.common.Find("service.db")
                ->find("smtp.service HS UNSPECA \"smtp tcp 25\""),
            std::string::npos);
  EXPECT_NE(result.common.Find("sloc.db")->find("NFS.sloc HS UNSPECA NFS-1.MIT.EDU"),
            std::string::npos);
}

TEST_F(GeneratorTest, NfsPerHostPayloads) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateNfs(*mc_, &result));
  ASSERT_EQ(2u, result.per_host.size());
  const Archive& host1 = result.ForHost("NFS-1.MIT.EDU");
  ASSERT_NE(nullptr, host1.Find("u1.dirs"));
  ASSERT_NE(nullptr, host1.Find("u1.quotas"));
  ASSERT_NE(nullptr, host1.Find("credentials"));
  // babette's locker (autocreate) appears on host 1 only.
  EXPECT_NE(host1.Find("u1.dirs")->find("/u1/babette 6530 10914 HOMEDIR"),
            std::string::npos);
  EXPECT_NE(host1.Find("u1.quotas")->find("6530 300"), std::string::npos);
  const Archive& host2 = result.ForHost("NFS-2.MIT.EDU");
  EXPECT_EQ("", *host2.Find("u1.dirs"));
  // The master credentials file lists both active users with their groups.
  const std::string& creds = *host1.Find("credentials");
  EXPECT_NE(creds.find("babette:6530:10914:10915"), std::string::npos);
  EXPECT_NE(creds.find("abarba:6531:10915"), std::string::npos);
  EXPECT_EQ(creds.find("ghost"), std::string::npos);
  EXPECT_EQ(creds, *host2.Find("credentials"));
}

TEST_F(GeneratorTest, NfsCredentialsRestrictedByValue3) {
  // value3 names a list whose membership becomes the credentials file.
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_host_info",
                                {"NFS", "nfs-2.mit.edu", "1", "0", "0", "proj"}));
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateNfs(*mc_, &result));
  const std::string& restricted = *result.ForHost("NFS-2.MIT.EDU").Find("credentials");
  EXPECT_NE(restricted.find("babette:"), std::string::npos);
  EXPECT_NE(restricted.find("abarba:"), std::string::npos);
  // Restricting to babette's own group excludes abarba.
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_host_info",
                                {"NFS", "nfs-2.mit.edu", "1", "0", "0", "babette"}));
  GeneratorResult result2;
  ASSERT_EQ(MR_SUCCESS, GenerateNfs(*mc_, &result2));
  const std::string& own = *result2.ForHost("NFS-2.MIT.EDU").Find("credentials");
  EXPECT_NE(own.find("babette:"), std::string::npos);
  EXPECT_EQ(own.find("abarba:"), std::string::npos);
}

TEST_F(GeneratorTest, AliasesFileFormat) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateMail(*mc_, &result));
  const std::string& aliases = *result.common.Find("aliases");
  // Owner alias for the USER ace.
  EXPECT_NE(aliases.find("owner-video-users: babette"), std::string::npos);
  // Members: users by login, sublists by name, strings verbatim.
  EXPECT_NE(aliases.find("video-users: "), std::string::npos);
  EXPECT_NE(aliases.find("abarba"), std::string::npos);
  EXPECT_NE(aliases.find("proj"), std::string::npos);
  EXPECT_NE(aliases.find("rubin@media-lab.mit.edu"), std::string::npos);
  // Pobox routing: POP users to <po>.LOCAL, SMTP users to their address.
  EXPECT_NE(aliases.find("babette: babette@ATHENA-PO-1.LOCAL"), std::string::npos);
  EXPECT_NE(aliases.find("abarba: abarba@other.edu"), std::string::npos);
  // The complete /etc/passwd ships alongside for the mailhub finger server.
  const std::string& passwd = *result.common.Find("passwd");
  EXPECT_NE(passwd.find("babette:*:6530:101:"), std::string::npos);
  EXPECT_EQ(passwd.find("ghost"), std::string::npos);
}

TEST_F(GeneratorTest, ZephyrAclsExpandRecursively) {
  GeneratorResult result;
  ASSERT_EQ(MR_SUCCESS, GenerateZephyrAcls(*mc_, &result));
  ASSERT_EQ(1u, result.common.size());
  const std::string& acl = *result.common.Find("message.acl");
  // The LIST ace expands to member logins.
  EXPECT_NE(acl.find("babette@ATHENA.MIT.EDU"), std::string::npos);
  EXPECT_NE(acl.find("abarba@ATHENA.MIT.EDU"), std::string::npos);
  // NONE aces render as the wildcard.
  EXPECT_NE(acl.find("*.*@*"), std::string::npos);
}

TEST_F(GeneratorTest, ExpandListHandlesNestingAndStrings) {
  RowRef video = mc_->ListByName("video-users");
  ASSERT_EQ(MR_SUCCESS, video.code);
  std::vector<std::string> logins = ExpandListToLogins(
      *mc_, MoiraContext::IntCell(mc_->list(), video.row, "list_id"), true);
  // abarba direct, babette via proj, plus the string member.
  EXPECT_EQ(3u, logins.size());
}

}  // namespace
}  // namespace moira
