// TCP transport integration: the poll(2)-multiplexed server of paper section
// 5.4 serving real localhost connections.
#include <atomic>
#include <thread>

#include "src/client/client.h"
#include "src/net/tcp.h"
#include "src/server/server.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class TcpTest : public MoiraEnv {
 protected:
  void SetUp() override {
    moira_server_ = std::make_unique<MoiraServer>(mc_.get(), realm_.get());
    tcp_server_ = std::make_unique<TcpServer>(moira_server_.get());
    int32_t listen_code = tcp_server_->Listen(0);
    if (listen_code != MR_SUCCESS) {
      GTEST_SKIP() << "cannot listen on localhost: " << listen_code;
    }
    AddActiveUser("tcpuser", 100);
    realm_->AddPrincipal("tcpuser", "pw");
    pump_ = std::thread([this] {
      while (!stop_.load()) {
        tcp_server_->Poll(10);
      }
    });
  }

  void TearDown() override {
    if (pump_.joinable()) {
      stop_.store(true);
      pump_.join();
    }
  }

  MrClient MakeClient() {
    return MrClient([this]() -> std::unique_ptr<ClientChannel> {
      auto channel = std::make_unique<TcpChannel>();
      if (channel->Connect(tcp_server_->port()) != MR_SUCCESS) {
        return nullptr;
      }
      return channel;
    });
  }

  std::unique_ptr<MoiraServer> moira_server_;
  std::unique_ptr<TcpServer> tcp_server_;
  std::thread pump_;
  std::atomic<bool> stop_{false};
};

TEST_F(TcpTest, NoopOverRealSockets) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_SUCCESS, client.Noop());
  EXPECT_EQ(MR_SUCCESS, client.Disconnect());
}

TEST_F(TcpTest, AuthenticatedQueryOverTcp) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  client.SetKerberosIdentity(realm_.get(), "tcpuser", "pw");
  ASSERT_EQ(MR_SUCCESS, client.Auth("tcptest"));
  EXPECT_EQ(MR_SUCCESS,
            client.Query("update_user_shell", {"tcpuser", "/bin/tcp"}, [](Tuple) {}));
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, client.Query("get_user_by_login", {"tcpuser"}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("/bin/tcp", tuples[0][2]);
}

TEST_F(TcpTest, LargeResultStreamsCompletely) {
  // SUN RPC was rejected for not handling large return values (paper section
  // 5.4); verify a bulk retrieval streams fully over TCP.
  for (int i = 0; i < 300; ++i) {
    AddActiveUser("bulk" + std::to_string(i), 1000 + i);
  }
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  int count = 0;
  EXPECT_EQ(MR_SUCCESS, client.Query("get_all_logins", {}, [&](Tuple) { ++count; }));
  EXPECT_EQ(301, count);
}

TEST_F(TcpTest, MultipleSimultaneousConnections) {
  std::vector<MrClient> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(MakeClient());
    ASSERT_EQ(MR_SUCCESS, clients.back().Connect());
  }
  for (MrClient& client : clients) {
    EXPECT_EQ(MR_SUCCESS, client.Noop());
  }
  for (MrClient& client : clients) {
    int count = 0;
    EXPECT_EQ(MR_SUCCESS, client.Query("get_all_logins", {}, [&](Tuple) { ++count; }));
    EXPECT_EQ(1, count);
  }
}

// Transport-level handler for the limit tests: acknowledges every payload.
class TransportOnlyHandler : public MessageHandler {
 public:
  std::string OnMessage(uint64_t, std::string_view) override {
    return EncodeReply(MrReply{kMrProtocolVersion, MR_SUCCESS, {}});
  }
  void OnDisconnect(uint64_t) override { ++disconnects; }
  int disconnects = 0;
};

TEST(TcpServerLimits, IdleConnectionsSweptOnInjectedClock) {
  SimulatedClock clock(1000);
  TransportOnlyHandler handler;
  TcpServer server(&handler, &clock);
  server.set_idle_timeout(30);
  ASSERT_EQ(MR_SUCCESS, server.Listen(0));
  TcpChannel conn;
  ASSERT_EQ(MR_SUCCESS, conn.Connect(server.port()));
  for (int i = 0; i < 500 && server.connection_count() < 1; ++i) {
    server.Poll(10);
  }
  ASSERT_EQ(1u, server.connection_count());
  // Traffic within the window refreshes the idle clock.
  clock.Advance(20);
  ASSERT_EQ(MR_SUCCESS, conn.Send(EncodeRequest(MrRequest{})));
  std::string payload;
  for (int i = 0; i < 10; ++i) {
    server.Poll(10);
  }
  ASSERT_EQ(MR_SUCCESS, conn.Recv(&payload));
  clock.Advance(20);  // 20s since the last bytes arrived: still under 30
  server.Poll(10);
  EXPECT_EQ(1u, server.connection_count());
  clock.Advance(31);  // now 51s idle: over the limit
  server.Poll(10);
  EXPECT_EQ(0u, server.connection_count());
  EXPECT_EQ(1, server.idle_closes());
  EXPECT_EQ(1, handler.disconnects);
  // The idled client observes an orderly EOF.
  EXPECT_EQ(MR_ABORTED, conn.Recv(&payload));
}

TEST(TcpServerLimits, ExcessConnectionsShedGracefully) {
  TransportOnlyHandler handler;
  TcpServer server(&handler);
  server.set_max_connections(2);
  ASSERT_EQ(MR_SUCCESS, server.Listen(0));
  TcpChannel a, b, c;
  ASSERT_EQ(MR_SUCCESS, a.Connect(server.port()));
  ASSERT_EQ(MR_SUCCESS, b.Connect(server.port()));
  for (int i = 0; i < 500 && server.connection_count() < 2; ++i) {
    server.Poll(10);
  }
  ASSERT_EQ(2u, server.connection_count());
  // The kernel accepts the third into the backlog; the server sheds it.
  ASSERT_EQ(MR_SUCCESS, c.Connect(server.port()));
  for (int i = 0; i < 500 && server.shed_connections() < 1; ++i) {
    server.Poll(10);
  }
  EXPECT_EQ(1, server.shed_connections());
  EXPECT_EQ(2u, server.connection_count());
  // The shed client sees an orderly EOF, not a hang.
  std::string payload;
  EXPECT_EQ(MR_ABORTED, c.Recv(&payload));
  // Survivors keep working.
  ASSERT_EQ(MR_SUCCESS, a.Send(EncodeRequest(MrRequest{})));
  for (int i = 0; i < 10; ++i) {
    server.Poll(10);
  }
  EXPECT_EQ(MR_SUCCESS, a.Recv(&payload));
}

TEST_F(TcpTest, ServerSurvivesAbruptClientClose) {
  {
    MrClient client = MakeClient();
    ASSERT_EQ(MR_SUCCESS, client.Connect());
    ASSERT_EQ(MR_SUCCESS, client.Noop());
    // Client destructor closes the socket without a goodbye.
  }
  MrClient fresh = MakeClient();
  ASSERT_EQ(MR_SUCCESS, fresh.Connect());
  EXPECT_EQ(MR_SUCCESS, fresh.Noop());
}

}  // namespace
}  // namespace moira
