// Parameterized sweep over every registered query handle (paper section 7):
// argument-count enforcement, access-denial behaviour, and _help coverage
// hold uniformly across all ~108 queries.
#include <gtest/gtest.h>

#include "src/sim/population.h"
#include "tests/test_env.h"

namespace moira {
namespace {

std::vector<std::string> AllQueryNames() {
  std::vector<std::string> names;
  for (const QueryDef& def : QueryRegistry::Instance().All()) {
    names.push_back(def.name);
  }
  return names;
}

class QuerySweepTest : public ::testing::TestWithParam<std::string> {
 protected:
  // One shared populated environment for the whole sweep (read-mostly).
  static void SetUpTestSuite() {
    clock_ = new SimulatedClock(568000000);
    db_ = new Database(clock_);
    CreateMoiraSchema(db_);
    SeedMoiraDefaults(db_);
    mc_ = new MoiraContext(db_);
    realm_ = new KerberosRealm(clock_);
    SiteBuilder builder(mc_, realm_);
    builder.Build(TestSiteSpec());
  }

  static void TearDownTestSuite() {
    delete realm_;
    delete mc_;
    delete db_;
    delete clock_;
  }

  const QueryDef& Def() const {
    const QueryDef* def = QueryRegistry::Instance().Find(GetParam());
    EXPECT_NE(nullptr, def);
    return *def;
  }

  static SimulatedClock* clock_;
  static Database* db_;
  static MoiraContext* mc_;
  static KerberosRealm* realm_;
};

SimulatedClock* QuerySweepTest::clock_ = nullptr;
Database* QuerySweepTest::db_ = nullptr;
MoiraContext* QuerySweepTest::mc_ = nullptr;
KerberosRealm* QuerySweepTest::realm_ = nullptr;

TEST_P(QuerySweepTest, WrongArgumentCountIsMrArgs) {
  const QueryDef& def = Def();
  if (def.argc < 0) {
    GTEST_SKIP() << "variable-arity query";
  }
  // One argument too many must fail uniformly, before any handler logic.
  std::vector<std::string> args(static_cast<size_t>(def.argc) + 1, "x");
  EXPECT_EQ(MR_ARGS, QueryRegistry::Instance().Execute(*mc_, "root", "sweep", def.name,
                                                       args, [](Tuple) {}));
  EXPECT_EQ(MR_ARGS,
            QueryRegistry::Instance().CheckAccess(*mc_, "root", def.name, args));
}

TEST_P(QuerySweepTest, AnonymousPrincipalNeverMutates) {
  const QueryDef& def = Def();
  if (def.qclass == QueryClass::kRetrieve || def.world_ok) {
    GTEST_SKIP() << "read-only or world query";
  }
  if (def.argc < 0) {
    GTEST_SKIP();
  }
  // An unauthenticated caller with superficially plausible arguments must be
  // rejected with MR_PERM (never execute, never crash).
  std::vector<std::string> args(static_cast<size_t>(def.argc), "1");
  EXPECT_EQ(MR_PERM, QueryRegistry::Instance().Execute(*mc_, "", "sweep", def.name, args,
                                                       [](Tuple) {}));
}

TEST_P(QuerySweepTest, HelpDescribesQuery) {
  const QueryDef& def = Def();
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS,
            QueryRegistry::Instance().Execute(*mc_, "", "sweep", "_help", {def.name},
                                              [&](Tuple t) { tuples.push_back(t); }));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_NE(tuples[0][0].find(def.shortname), std::string::npos);
}

TEST_P(QuerySweepTest, ShortNameDispatchesSameHandler) {
  const QueryDef& def = Def();
  EXPECT_EQ(&def, QueryRegistry::Instance().Find(def.shortname));
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QuerySweepTest, ::testing::ValuesIn(AllQueryNames()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace moira
