// Tests for incremental, replica-offloaded DCM propagation (DESIGN.md
// "Incremental propagation"): journal-delta generation, keyed patch shipping
// with base-CRC fallback, truncation fallback, torn-write self-healing,
// per-service breaker tunables, and replica-offloaded generation reads.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/db/exec.h"
#include "src/dcm/dcm.h"
#include "src/dcm/delta.h"
#include "src/repl/replica.h"
#include "src/server/server.h"
#include "src/sim/population.h"
#include "src/update/sim_host.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

// A fully-provisioned site with its own clock, database, hosts, and DCM, so
// a test can run a journal-attached site and a legacy full-regeneration site
// side by side on identical state.
struct Site {
  explicit Site(const SiteSpec& spec = TestSiteSpec()) : clock(568000000) {
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get());
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
    realm = std::make_unique<KerberosRealm>(&clock);
    builder = std::make_unique<SiteBuilder>(mc.get(), realm.get());
    builder->Build(spec);
    zephyr = std::make_unique<ZephyrBus>(&clock);
    hosts = CreateSimHosts(*mc, realm.get(), &directory);
    dcm = std::make_unique<Dcm>(mc.get(), realm.get(), zephyr.get(), &directory);
    ConfigureStandardServices(dcm.get());
    clock.Advance(kSecondsPerDay);
  }

  // Mutation through the registry, journaled on success (the server's
  // dispatch path, without the wire).
  int32_t Mutate(std::string_view query, const std::vector<std::string>& args) {
    return ExecuteJournaled(*mc, &journal, "root", "test", query, args);
  }

  SimHost* Host(const std::string& name) { return directory.Find(name); }

  SimulatedClock clock;
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;
  std::unique_ptr<KerberosRealm> realm;
  std::unique_ptr<SiteBuilder> builder;
  std::unique_ptr<ZephyrBus> zephyr;
  HostDirectory directory;
  std::vector<std::unique_ptr<SimHost>> hosts;
  std::unique_ptr<Dcm> dcm;
  Journal journal;
};

// Transferred-payload targets (servers.target_file): the raw data file the
// update protocol leaves behind.  A patch payload legitimately differs from
// a full archive there, so these paths are excluded from fleet comparison.
std::set<std::string> TargetPaths(MoiraContext& mc) {
  std::set<std::string> targets;
  From(mc.servers()).Emit([&](const std::vector<size_t>& rows) {
    targets.insert(MoiraContext::StrCell(mc.servers(), rows[0], "target_file"));
  });
  return targets;
}

bool IsWorkFile(const std::string& path, const std::set<std::string>& targets) {
  auto ends_with = [&](const char* suffix) {
    std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(kUpdateSuffix) || ends_with(kBackupSuffix) || targets.contains(path);
}

// Every installed (non-temporary, non-backup) file must be byte-identical
// between the two sites' fleets.
void ExpectFleetsIdentical(Site& a, Site& b, const std::string& where) {
  const std::set<std::string> targets = TargetPaths(*a.mc);
  for (const auto& host : a.hosts) {
    SimHost* other = b.Host(host->name());
    ASSERT_NE(nullptr, other) << where;
    for (const std::string& path : host->ListFiles()) {
      if (IsWorkFile(path, targets)) {
        continue;
      }
      const std::string* mine = host->ReadFile(path);
      const std::string* theirs = other->ReadFile(path);
      ASSERT_NE(nullptr, theirs) << where << ": " << host->name() << " " << path
                                 << " missing from full-regen site";
      EXPECT_EQ(*theirs, *mine) << where << ": " << host->name() << " " << path;
    }
    for (const std::string& path : other->ListFiles()) {
      if (!IsWorkFile(path, targets)) {
        EXPECT_TRUE(host->HasFile(path))
            << where << ": " << host->name() << " " << path << " missing from patched site";
      }
    }
  }
}

TEST(DcmIncrementalTest, PatchPassShipsLessAndMatchesFullRegen) {
  Site patched;
  Site full;
  patched.dcm->AttachJournal(&patched.journal);

  DcmRunSummary first_p = patched.dcm->RunOnce();
  DcmRunSummary first_f = full.dcm->RunOnce();
  // The first journal-mode pass has no consumed prefix: full regeneration.
  EXPECT_EQ(4, first_p.full_regens);
  EXPECT_EQ(0, first_p.services_patched);
  EXPECT_EQ(first_f.hosts_updated, first_p.hosts_updated);
  ExpectFleetsIdentical(patched, full, "after first pass");

  // Advance before mutating: the legacy arm detects churn by table modtime
  // strictly newer than dfgen.
  patched.clock.Advance(25 * kSecondsPerHour);
  full.clock.Advance(25 * kSecondsPerHour);
  const std::string& login = patched.builder->active_logins()[0];
  ASSERT_EQ(MR_SUCCESS, patched.Mutate("update_user_shell", {login, "/bin/inc"}));
  ASSERT_EQ(MR_SUCCESS, full.Mutate("update_user_shell", {login, "/bin/inc"}));

  DcmRunSummary second_p = patched.dcm->RunOnce();
  DcmRunSummary second_f = full.dcm->RunOnce();
  // HESIOD and SMTP stage keyed patches; NFS recomputes the credentials line
  // to identical bytes and skips; ZEPHYR is untouched by a shell change.
  EXPECT_GE(second_p.services_patched, 2);
  EXPECT_EQ(0, second_p.full_regens);
  EXPECT_GT(second_p.patch_ships, 0);
  EXPECT_EQ(0, second_p.patch_fallbacks);
  EXPECT_GT(second_p.journal_entries_examined, 0);
  // The patch pass ships far fewer bytes than the full-regeneration pass.
  EXPECT_LT(second_p.bytes_propagated, second_f.bytes_propagated / 10);
  ExpectFleetsIdentical(patched, full, "after patch pass");
}

TEST(DcmIncrementalTest, QuietJournalSkipsGenerationEntirely) {
  Site site;
  site.dcm->AttachJournal(&site.journal);
  site.dcm->RunOnce();
  site.clock.Advance(25 * kSecondsPerHour);
  // No mutations since the first pass: every due service advances its seq
  // marker without generating or shipping anything.
  DcmRunSummary summary = site.dcm->RunOnce();
  EXPECT_EQ(4, summary.services_delta_skipped);
  EXPECT_EQ(0, summary.services_generated);
  EXPECT_EQ(0, summary.hosts_updated);

  // A mutation with no generated-file footprint is examined and skipped too.
  ASSERT_EQ(MR_SUCCESS, site.Mutate("add_machine", {"inert.mit.edu", "VAX"}));
  site.clock.Advance(25 * kSecondsPerHour);
  summary = site.dcm->RunOnce();
  EXPECT_EQ(4, summary.services_delta_skipped);
  EXPECT_GT(summary.journal_entries_examined, 0);
  EXPECT_EQ(0, summary.hosts_updated);
}

TEST(DcmIncrementalTest, TruncationPastLastGenSeqForcesFullRegeneration) {
  Site site;
  site.dcm->AttachJournal(&site.journal);
  site.dcm->RunOnce();

  const std::string& login = site.builder->active_logins()[0];
  ASSERT_EQ(MR_SUCCESS, site.Mutate("update_user_shell", {login, "/bin/trunc"}));
  // A checkpoint prunes the journal past every service's consumed prefix:
  // the delta is unreconstructable, so the DCM must regenerate rather than
  // ship a gapped patch.
  site.journal.TruncateThrough(site.journal.last_seq());
  site.clock.Advance(25 * kSecondsPerHour);
  DcmRunSummary summary = site.dcm->RunOnce();
  EXPECT_EQ(4, summary.full_regens);
  EXPECT_EQ(4, summary.truncation_fallbacks);
  EXPECT_EQ(0, summary.services_patched);
  EXPECT_EQ(0, summary.patch_ships);  // full archives, not patches
  EXPECT_GT(summary.hosts_updated, 0);
  const std::string* passwd =
      site.Host(site.builder->hesiod_server_name())->ReadFile("/etc/athena/hesiod/passwd.db");
  ASSERT_NE(nullptr, passwd);
  EXPECT_NE(passwd->find("/bin/trunc"), std::string::npos);

  // The marker advanced past the truncation point: the next churn pass is
  // incremental again.
  ASSERT_EQ(MR_SUCCESS, site.Mutate("update_user_shell", {login, "/bin/trunc2"}));
  site.clock.Advance(25 * kSecondsPerHour);
  summary = site.dcm->RunOnce();
  EXPECT_EQ(0, summary.truncation_fallbacks);
  EXPECT_GT(summary.services_patched, 0);
}

TEST(DcmIncrementalTest, TornFlushIsCaughtByPatchBaseCrcAndFullShipHeals) {
  Site site;
  site.dcm->AttachJournal(&site.journal);
  site.dcm->RunOnce();
  const std::string& login = site.builder->active_logins()[0];
  SimHost* hesiod = site.Host(site.builder->hesiod_server_name());

  // Pass 2 ships a patch; the fault plan tears the patched file mid-flush.
  // The host still reports success — the damage is silent.
  ASSERT_EQ(MR_SUCCESS, site.Mutate("update_user_shell", {login, "/bin/torn1"}));
  site.clock.Advance(7 * kSecondsPerHour);  // only HESIOD due
  FaultPlanSpec fault;
  fault.torn_permille = 1000;
  FaultPlan(fault).ArmPass(site.hosts, 0);
  DcmRunSummary second = site.dcm->RunOnce();
  EXPECT_EQ(1, second.patch_ships);
  EXPECT_EQ(0, second.patch_fallbacks);
  EXPECT_EQ(1, second.hosts_updated);
  const std::string* staged_passwd =
      site.dcm->StagedPayload("HESIOD")->common.Find("passwd.db");
  ASSERT_NE(nullptr, staged_passwd);
  const std::string* torn = hesiod->ReadFile("/etc/athena/hesiod/passwd.db");
  ASSERT_NE(nullptr, torn);
  EXPECT_NE(*staged_passwd, *torn);  // silently truncated

  // Pass 3's patch presumes the staged base: the torn file CRC-mismatches,
  // the host refuses with MR_UPDATE_PATCH, and the DCM reships the full
  // archive in the same pass.  The host self-heals.
  ASSERT_EQ(MR_SUCCESS, site.Mutate("update_user_shell", {login, "/bin/torn2"}));
  site.clock.Advance(7 * kSecondsPerHour);
  DcmRunSummary third = site.dcm->RunOnce();
  EXPECT_EQ(1, third.patch_fallbacks);
  EXPECT_EQ(0, third.patch_ships);
  EXPECT_EQ(1, third.hosts_updated);
  EXPECT_EQ(0, third.host_soft_failures);
  staged_passwd = site.dcm->StagedPayload("HESIOD")->common.Find("passwd.db");
  const std::string* healed = hesiod->ReadFile("/etc/athena/hesiod/passwd.db");
  ASSERT_NE(nullptr, healed);
  EXPECT_EQ(*staged_passwd, *healed);
  EXPECT_NE(healed->find("/bin/torn2"), std::string::npos);
}

TEST(DcmIncrementalTest, PerServiceBreakerTunablesOverrideGlobals) {
  Site site;
  DcmResilienceConfig config;
  config.breaker_threshold = 3;
  config.breaker_cooldown = kSecondsPerHour;
  // NFS hosts must converge fast: trip after one soft failure, but cool down
  // for two hours instead of one.
  config.per_service["NFS"] = BreakerTunables{1, 2 * kSecondsPerHour};
  site.dcm->set_resilience(config);

  SimHost* nfs = site.Host(site.builder->nfs_server_names()[0]);
  SimHost* hesiod = site.Host(site.builder->hesiod_server_name());
  nfs->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);
  hesiod->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);

  // Pass 1: both hosts fail softly once.  Only the NFS host's breaker opens
  // (per-service threshold 1); HESIOD needs the global 3.
  DcmRunSummary pass = site.dcm->RunOnce();
  EXPECT_EQ(1, pass.breaker_opens);
  EXPECT_EQ(2, pass.host_soft_failures);

  // Pass 2: the NFS host is quarantined, HESIOD fails again.
  site.clock.Advance(15 * kSecondsPerMinute);
  pass = site.dcm->RunOnce();
  EXPECT_EQ(1, pass.breaker_skips);
  EXPECT_EQ(1, pass.host_soft_failures);
  EXPECT_EQ(0, pass.breaker_opens);

  // Pass 3, one hour after the NFS breaker opened: the global cool-down
  // would probe now, but the per-service two-hour one keeps the quarantine.
  // HESIOD reaches three consecutive soft failures and opens.
  site.clock.Advance(45 * kSecondsPerMinute);
  pass = site.dcm->RunOnce();
  EXPECT_EQ(1, pass.breaker_skips);
  EXPECT_EQ(1, pass.breaker_opens);
  EXPECT_EQ(0, pass.probe_successes + pass.probe_failures);

  // Pass 4, two hours in: the NFS cool-down expires and its half-open probe
  // succeeds against the healed host.  HESIOD's (global, one-hour) cool-down
  // also expired; its probe fails and re-opens the breaker.
  site.clock.Advance(kSecondsPerHour);
  nfs->SetFailMode(HostFailMode::kNone);
  pass = site.dcm->RunOnce();
  EXPECT_EQ(1, pass.probe_successes);
  EXPECT_EQ(1, pass.probe_failures);
  EXPECT_GE(pass.hosts_updated, 1);
}

TEST(DcmIncrementalTest, RandomizedChurnScheduleMatchesFullRegeneration) {
  Site patched;
  Site full;
  patched.dcm->AttachJournal(&patched.journal);

  // Collect churnable material once; both sites were built identically.
  const std::vector<std::string>& logins = patched.builder->active_logins();
  std::vector<std::string> maillists;
  From(patched.mc->list())
      .WhereNe("maillist", Value(int64_t{0}))
      .WhereEq("grouplist", Value(int64_t{0}))
      .Emit([&](const std::vector<size_t>& rows) {
        maillists.push_back(
            MoiraContext::StrCell(patched.mc->list(), rows[0], "name"));
      });
  ASSERT_FALSE(maillists.empty());

  auto mutate_both = [&](std::string_view query, const std::vector<std::string>& args) {
    int32_t a = patched.Mutate(query, args);
    int32_t b = full.Mutate(query, args);
    ASSERT_EQ(a, b) << query;
  };

  SplitMix64 rng(0xa77e4a);
  int patch_passes = 0;
  for (int pass = 0; pass < 12; ++pass) {
    // Advance before mutating so the legacy arm's modtime check sees the
    // churn as strictly newer than its dfgen.
    patched.clock.Advance(25 * kSecondsPerHour);
    full.clock.Advance(25 * kSecondsPerHour);
    // A few random mutations drawn from shell, finger-status, membership,
    // quota, and zephyr churn.
    int ops = 1 + static_cast<int>(rng.Below(4));
    for (int op = 0; op < ops; ++op) {
      const std::string& login = logins[rng.Below(logins.size())];
      const std::string& list = maillists[rng.Below(maillists.size())];
      switch (rng.Below(5)) {
        case 0:
          mutate_both("update_user_shell",
                      {login, "/bin/sh" + std::to_string(pass * 8 + op)});
          break;
        case 1:
          mutate_both("update_user_status", {login, rng.Below(2) == 0 ? "0" : "1"});
          break;
        case 2:
          if (rng.Below(2) == 0) {
            mutate_both("add_member_to_list", {list, "USER", login});
          } else {
            mutate_both("delete_member_from_list", {list, "USER", login});
          }
          break;
        case 3:
          mutate_both("update_nfs_quota",
                      {login, login, std::to_string(300 + rng.Below(700))});
          break;
        case 4:
          mutate_both("update_zephyr_class",
                      {"zclass-2", "zclass-2", "USER", login, "NONE", "NONE", "NONE",
                       "NONE", "NONE", "NONE"});
          break;
      }
    }
    if (pass == 5) {
      // A checkpoint prunes the patched site's journal mid-run: that pass
      // must fall back to full regeneration, never a gapped patch.
      patched.journal.TruncateThrough(patched.journal.last_seq());
    }
    if (pass == 8) {
      // One host misses this pass entirely (in both fleets); the patched
      // site must full-ship to it next pass because its lts predates the
      // patch base.
      patched.Host(patched.builder->nfs_server_names()[0])
          ->SetFailMode(HostFailMode::kRefuseConnection, 1);
      full.Host(full.builder->nfs_server_names()[0])
          ->SetFailMode(HostFailMode::kRefuseConnection, 1);
    }
    DcmRunSummary summary_p = patched.dcm->RunOnce();
    DcmRunSummary summary_f = full.dcm->RunOnce();
    patch_passes += summary_p.services_patched > 0 ? 1 : 0;
    if (pass == 5) {
      EXPECT_GT(summary_p.truncation_fallbacks, 0) << "pass " << pass;
    }
    EXPECT_EQ(summary_f.host_hard_failures, 0) << "pass " << pass;
    EXPECT_EQ(summary_p.host_hard_failures, 0) << "pass " << pass;
    ExpectFleetsIdentical(patched, full, "pass " + std::to_string(pass));
  }
  // The schedule must actually have exercised the patch path.
  EXPECT_GE(patch_passes, 6);
}

// --- Replica offload: generation reads leave the primary ---

class ReplicaOffloadTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    hesiod_name_ = builder.hesiod_server_name();
    login_ = builder.active_logins()[0];
    zephyr_ = std::make_unique<ZephyrBus>(&clock_);
    hosts_ = CreateSimHosts(*mc_, realm_.get(), &directory_);
    dcm_ = std::make_unique<Dcm>(mc_.get(), realm_.get(), zephyr_.get(), &directory_);
    ConfigureStandardServices(dcm_.get());

    primary_ = std::make_unique<MoiraServer>(mc_.get(), realm_.get());
    realm_->AddPrincipal("root", "rootpw");
    // The site was populated directly (not through the journal), so bootstrap
    // the replica through the snapshot path: journal one mutation, prune it,
    // and let the truncation guard force a full state transfer.
    ASSERT_EQ(MR_SUCCESS,
              ExecuteJournaled(*mc_, &primary_->journal(), "root", "test",
                               "add_machine", {"repl-boot.mit.edu", "VAX"}));
    primary_->journal().TruncateThrough(primary_->journal().last_seq());
    ReplicaOptions options;
    options.name = "dcm-reader";
    replica_ = std::make_unique<ReplicaServer>(realm_.get(), options);
    replica_->SetPrimaryLink(
        [this] { return std::make_unique<LoopbackChannel>(primary_.get()); }, "root",
        "rootpw");
    ASSERT_EQ(MR_SUCCESS, replica_->CatchUp());
    ASSERT_EQ(1u, replica_->stats().snapshot_loads);

    dcm_->AttachJournal(&primary_->journal());
    dcm_->SetReadSource(&replica_->context(), [this](uint64_t seq) {
      return replica_->CatchUp() == MR_SUCCESS && replica_->applied_seq() >= seq;
    });
    clock_.Advance(kSecondsPerDay);
  }

  std::string hesiod_name_;
  std::string login_;
  std::unique_ptr<ZephyrBus> zephyr_;
  HostDirectory directory_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::unique_ptr<Dcm> dcm_;
  std::unique_ptr<MoiraServer> primary_;
  std::unique_ptr<ReplicaServer> replica_;
};

TEST_F(ReplicaOffloadTest, GenerationReadsGoToTheReplica) {
  // First pass: full regeneration of all four services, read entirely from
  // the replica.
  DcmRunSummary first = dcm_->RunOnce();
  EXPECT_EQ(4, first.full_regens);
  EXPECT_EQ(8, first.hosts_updated);
  EXPECT_EQ(0, first.generation_rows_primary);
  EXPECT_GT(first.generation_rows_replica, 0);

  // Steady state: journaled churn, replica catch-up at the pass's high-water
  // seq, keyed patches built from replica reads only.
  ASSERT_EQ(MR_SUCCESS,
            ExecuteJournaled(*mc_, &primary_->journal(), "root", "test",
                             "update_user_shell", {login_, "/bin/offload"}));
  clock_.Advance(25 * kSecondsPerHour);
  DcmRunSummary second = dcm_->RunOnce();
  EXPECT_GT(second.services_patched, 0);
  EXPECT_GT(second.patch_ships, 0);
  EXPECT_EQ(0, second.generation_rows_primary);
  EXPECT_GT(second.generation_rows_replica, 0);
  // The patches built from the replica still land the right bytes.
  const std::string* passwd =
      directory_.Find(hesiod_name_)->ReadFile("/etc/athena/hesiod/passwd.db");
  ASSERT_NE(nullptr, passwd);
  EXPECT_NE(passwd->find("/bin/offload"), std::string::npos);
}

TEST_F(ReplicaOffloadTest, StaleReplicaFallsBackToPrimaryReads) {
  // A replica that cannot reach the pass's high-water seq must not serve
  // generation reads; the pass reads the primary instead of stale state.
  dcm_->SetReadSource(&replica_->context(), [](uint64_t) { return false; });
  DcmRunSummary first = dcm_->RunOnce();
  EXPECT_EQ(4, first.full_regens);
  EXPECT_GT(first.generation_rows_primary, 0);
  EXPECT_EQ(0, first.generation_rows_replica);
}

}  // namespace
}  // namespace moira
