// Tests for the list queries (paper section 7.0.3).
#include "src/core/acl.h"

#include <algorithm>

#include "tests/test_env.h"

namespace moira {
namespace {

class ListQueriesTest : public MoiraEnv {
 protected:
  void MakeList(const std::string& name, const char* public_flag = "0",
                const char* hidden = "0", const char* group = "0",
                const std::string& ace_type = "NONE", const std::string& ace_name = "NONE") {
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {name, "1", public_flag, hidden, "1", group,
                                               "-1", ace_type, ace_name, "desc " + name}));
  }
};

TEST_F(ListQueriesTest, AddAndGetInfo) {
  AddActiveUser("owner", 100);
  MakeList("video-users", "1", "0", "0", "USER", "owner");
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"video-users"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  const Tuple& t = tuples[0];
  ASSERT_EQ(13u, t.size());
  EXPECT_EQ("video-users", t[0]);
  EXPECT_EQ("1", t[1]);            // active
  EXPECT_EQ("1", t[2]);            // public
  EXPECT_EQ("0", t[3]);            // hidden
  EXPECT_EQ("1", t[4]);            // maillist
  EXPECT_EQ("0", t[5]);            // group
  EXPECT_EQ("USER", t[7]);
  EXPECT_EQ("owner", t[8]);
  EXPECT_EQ("desc video-users", t[9]);
  EXPECT_EQ(MR_EXISTS, RunRoot("add_list", {"video-users", "1", "0", "0", "0", "0", "-1",
                                            "NONE", "NONE", ""}));
}

TEST_F(ListQueriesTest, GroupGidAllocation) {
  MakeList("grp1", "0", "0", "1");
  MakeList("grp2", "0", "0", "1");
  std::vector<Tuple> a;
  std::vector<Tuple> b;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"grp1"}, &a));
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"grp2"}, &b));
  EXPECT_NE(a[0][6], b[0][6]);  // distinct gids
  EXPECT_NE("-1", a[0][6]);
}

TEST_F(ListQueriesTest, SelfReferentialAce) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"selfmgd", "1", "0", "0", "1", "0", "-1",
                                             "LIST", "selfmgd", "self-managed"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"selfmgd"}, &tuples));
  EXPECT_EQ("LIST", tuples[0][7]);
  EXPECT_EQ("selfmgd", tuples[0][8]);
  // A member of the list can now administer it.
  AddActiveUser("selfadm", 101);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"selfmgd", "USER", "selfadm"}));
  EXPECT_EQ(MR_SUCCESS, Run("selfadm", "add_member_to_list",
                            {"selfmgd", "STRING", "guest@elsewhere.edu"}));
}

TEST_F(ListQueriesTest, MembershipLifecycle) {
  AddActiveUser("m1", 102);
  AddActiveUser("m2", 103);
  MakeList("parent");
  MakeList("child");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"parent", "USER", "m1"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"parent", "LIST", "child"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"child", "USER", "m2"}));
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("add_member_to_list", {"parent", "STRING", "x@other.edu"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_member_to_list", {"parent", "USER", "m1"}));
  EXPECT_EQ(MR_TYPE, RunRoot("add_member_to_list", {"parent", "MACHINE", "m1"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("add_member_to_list", {"parent", "USER", "ghost"}));
  std::vector<Tuple> members;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_members_of_list", {"parent"}, &members));
  EXPECT_EQ(3u, members.size());
  std::vector<Tuple> count;
  ASSERT_EQ(MR_SUCCESS, RunRoot("count_members_of_list", {"parent"}, &count));
  EXPECT_EQ("3", count[0][0]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_member_from_list", {"parent", "USER", "m1"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("delete_member_from_list", {"parent", "USER", "m1"}));
  count.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("count_members_of_list", {"parent"}, &count));
  EXPECT_EQ("2", count[0][0]);
}

TEST_F(ListQueriesTest, PublicListSelfAddAndDelete) {
  AddActiveUser("joiner", 104);
  MakeList("public-l", "1");
  MakeList("private-l", "0");
  EXPECT_EQ(MR_SUCCESS, Run("joiner", "add_member_to_list", {"public-l", "USER", "joiner"}));
  EXPECT_EQ(MR_PERM, Run("joiner", "add_member_to_list", {"private-l", "USER", "joiner"}));
  // Only yourself, even on a public list.
  AddActiveUser("bystander", 105);
  EXPECT_EQ(MR_PERM,
            Run("joiner", "add_member_to_list", {"public-l", "USER", "bystander"}));
  EXPECT_EQ(MR_SUCCESS,
            Run("joiner", "delete_member_from_list", {"public-l", "USER", "joiner"}));
}

TEST_F(ListQueriesTest, HiddenListVisibility) {
  AddActiveUser("keeper", 106);
  AddActiveUser("outsider", 107);
  MakeList("secret", "0", "1", "0", "USER", "keeper");
  ASSERT_EQ(MR_SUCCESS, Run("keeper", "add_member_to_list", {"secret", "USER", "keeper"}));
  // The ACE holder sees it; others do not.
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, Run("keeper", "get_list_info", {"secret"}, &tuples));
  EXPECT_EQ(MR_NO_MATCH, Run("outsider", "get_list_info", {"secret"}));
  EXPECT_EQ(MR_PERM, Run("outsider", "get_members_of_list", {"secret"}));
  EXPECT_EQ(MR_SUCCESS, Run("keeper", "get_members_of_list", {"secret"}, nullptr));
  // expand_list_names hides it from outsiders too.
  std::vector<Tuple> names;
  EXPECT_EQ(MR_NO_MATCH, Run("outsider", "expand_list_names", {"secr*"}, &names));
  names.clear();
  EXPECT_EQ(MR_SUCCESS, RunRoot("expand_list_names", {"secr*"}, &names));
  EXPECT_EQ(1u, names.size());
}

TEST_F(ListQueriesTest, WildcardGetListInfoRequiresPrivilege) {
  MakeList("wild-a");
  MakeList("wild-b");
  AddActiveUser("pleb", 108);
  EXPECT_EQ(MR_PERM, Run("pleb", "get_list_info", {"wild-*"}));
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"wild-*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  // Exact-name lookup works for anyone on a visible list.
  EXPECT_EQ(MR_SUCCESS, Run("pleb", "get_list_info", {"wild-a"}));
}

TEST_F(ListQueriesTest, UpdateListByAceHolder) {
  AddActiveUser("mgr", 109);
  MakeList("managed", "0", "0", "0", "USER", "mgr");
  EXPECT_EQ(MR_SUCCESS,
            Run("mgr", "update_list", {"managed", "managed", "1", "1", "0", "1", "0", "-1",
                                       "USER", "mgr", "updated desc"}));
  AddActiveUser("rando", 110);
  EXPECT_EQ(MR_PERM,
            Run("rando", "update_list", {"managed", "managed", "1", "1", "0", "1", "0",
                                         "-1", "USER", "mgr", "hijack"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"managed"}, &tuples));
  EXPECT_EQ("updated desc", tuples[0][9]);
}

TEST_F(ListQueriesTest, RenameKeepsReferences) {
  AddActiveUser("u", 111);
  MakeList("oldname");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"oldname", "USER", "u"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_list", {"oldname", "newname", "1", "0", "0", "1",
                                                "0", "-1", "NONE", "NONE", "d"}));
  std::vector<Tuple> members;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_members_of_list", {"newname"}, &members));
  EXPECT_EQ(1u, members.size());
}

TEST_F(ListQueriesTest, DeleteListConstraints) {
  AddActiveUser("u2", 112);
  MakeList("emptyme");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"emptyme", "USER", "u2"}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_list", {"emptyme"}));  // not empty
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_member_from_list", {"emptyme", "USER", "u2"}));
  // Used as a member of another list.
  MakeList("holder");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"holder", "LIST", "emptyme"}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_list", {"emptyme"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_member_from_list", {"holder", "LIST", "emptyme"}));
  // Used as an ACE.
  MakeList("guarded", "0", "0", "0", "LIST", "emptyme");
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_list", {"emptyme"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_list", {"guarded", "guarded", "1", "0", "0", "1",
                                                "0", "-1", "NONE", "NONE", "d"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_list", {"emptyme"}));
  EXPECT_EQ(MR_LIST, RunRoot("delete_list", {"emptyme"}));
}

TEST_F(ListQueriesTest, QualifiedGetLists) {
  MakeList("qa", "1", "0", "0");
  MakeList("qb", "0", "0", "1");
  std::vector<Tuple> tuples;
  // active TRUE, public TRUE.
  ASSERT_EQ(MR_SUCCESS, RunRoot("qualified_get_lists",
                                {"TRUE", "TRUE", "DONTCARE", "DONTCARE", "DONTCARE"},
                                &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("qa", tuples[0][0]);
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("qualified_get_lists",
                                {"TRUE", "DONTCARE", "DONTCARE", "DONTCARE", "TRUE"},
                                &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("qb", tuples[0][0]);
  EXPECT_EQ(MR_TYPE, RunRoot("qualified_get_lists", {"YES", "TRUE", "TRUE", "TRUE",
                                                     "TRUE"}));
}

TEST_F(ListQueriesTest, GetListsOfMemberDirectAndRecursive) {
  AddActiveUser("deep", 113);
  MakeList("inner");
  MakeList("outer");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"inner", "USER", "deep"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"outer", "LIST", "inner"}));
  std::vector<Tuple> direct;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"USER", "deep"}, &direct));
  EXPECT_EQ(1u, direct.size());
  std::vector<Tuple> recursive;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "deep"}, &recursive));
  EXPECT_EQ(2u, recursive.size());
  // A user may ask about themselves.
  EXPECT_EQ(MR_SUCCESS, Run("deep", "get_lists_of_member", {"RUSER", "deep"}));
  AddActiveUser("nosy", 114);
  EXPECT_EQ(MR_PERM, Run("nosy", "get_lists_of_member", {"USER", "deep"}));
  EXPECT_EQ(MR_TYPE, RunRoot("get_lists_of_member", {"MACHINE", "deep"}));
}

TEST_F(ListQueriesTest, GetAceUse) {
  AddActiveUser("acer", 115);
  MakeList("aced", "0", "0", "0", "USER", "acer");
  MakeList("umbrella");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"umbrella", "USER", "acer"}));
  MakeList("via-list", "0", "0", "0", "LIST", "umbrella");
  std::vector<Tuple> direct;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_ace_use", {"USER", "acer"}, &direct));
  ASSERT_EQ(1u, direct.size());
  EXPECT_EQ("LIST", direct[0][0]);
  EXPECT_EQ("aced", direct[0][1]);
  // RUSER finds objects reachable through list membership as well.
  std::vector<Tuple> recursive;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_ace_use", {"RUSER", "acer"}, &recursive));
  EXPECT_EQ(2u, recursive.size());
  EXPECT_EQ(MR_TYPE, RunRoot("get_ace_use", {"MACHINE", "acer"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("get_ace_use", {"USER", "ghost"}));
}

TEST_F(ListQueriesTest, RecursiveMembershipCycleIsSafe) {
  MakeList("cyc-a");
  MakeList("cyc-b");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"cyc-a", "LIST", "cyc-b"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"cyc-b", "LIST", "cyc-a"}));
  AddActiveUser("cycuser", 116);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"cyc-a", "USER", "cycuser"}));
  // Recursive expansion terminates and finds both lists.
  std::vector<Tuple> lists;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "cycuser"}, &lists));
  EXPECT_EQ(2u, lists.size());
  // Recursive ACL evaluation terminates too.
  int64_t users_id = PrincipalUserId(*mc_, "cycuser");
  RowRef cyc_a = mc_->ListByName("cyc-a");
  EXPECT_TRUE(IsUserInList(*mc_, users_id,
                           MoiraContext::IntCell(mc_->list(), cyc_a.row, "list_id")));
}

TEST_F(ListQueriesTest, ClosureCacheServesRepeatedRecursiveQueries) {
  AddActiveUser("deep", 113);
  MakeList("inner");
  MakeList("outer");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"inner", "USER", "deep"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"outer", "LIST", "inner"}));

  std::vector<Tuple> first;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "deep"}, &first));
  EXPECT_EQ(2u, first.size());
  const int64_t hits_after_first = mc_->closure_stats().hits;
  const int64_t misses_after_first = mc_->closure_stats().misses;
  EXPECT_GT(misses_after_first, 0);

  // Re-running against an unchanged members table is answered from the
  // memoized closure: hits rise, misses do not.
  for (int i = 0; i < 3; ++i) {
    std::vector<Tuple> again;
    ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "deep"}, &again));
    EXPECT_EQ(first, again);
  }
  EXPECT_EQ(misses_after_first, mc_->closure_stats().misses);
  EXPECT_EQ(hits_after_first + 3, mc_->closure_stats().hits);
}

TEST_F(ListQueriesTest, ClosureCacheInvalidatedByMembershipWrite) {
  AddActiveUser("deep", 113);
  MakeList("inner");
  MakeList("outer");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"inner", "USER", "deep"}));

  std::vector<Tuple> before;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "deep"}, &before));
  EXPECT_EQ(1u, before.size());
  const int64_t invalidations_before = mc_->closure_stats().invalidations;

  // A members-table write makes every memoized closure stale; the next
  // recursive query must rebuild and see the new edge.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"outer", "LIST", "inner"}));
  std::vector<Tuple> after;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "deep"}, &after));
  EXPECT_EQ(2u, after.size());
  EXPECT_EQ(invalidations_before + 1, mc_->closure_stats().invalidations);

  // Removal invalidates too.
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_member_from_list", {"outer", "LIST", "inner"}));
  std::vector<Tuple> removed;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_lists_of_member", {"RUSER", "deep"}, &removed));
  EXPECT_EQ(before, removed);
}

TEST_F(ListQueriesTest, ContainingListClosureHandlesCyclesAndIsSorted) {
  MakeList("cyc-a");
  MakeList("cyc-b");
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"cyc-a", "LIST", "cyc-b"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"cyc-b", "LIST", "cyc-a"}));
  AddActiveUser("cycuser", 116);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"cyc-a", "USER", "cycuser"}));

  const int64_t users_id = PrincipalUserId(*mc_, "cycuser");
  const std::vector<int64_t>& closure = mc_->ContainingListClosure("USER", users_id);
  ASSERT_EQ(2u, closure.size());
  EXPECT_TRUE(std::is_sorted(closure.begin(), closure.end()));
  RowRef cyc_a = mc_->ListByName("cyc-a");
  RowRef cyc_b = mc_->ListByName("cyc-b");
  const int64_t id_a = MoiraContext::IntCell(mc_->list(), cyc_a.row, "list_id");
  const int64_t id_b = MoiraContext::IntCell(mc_->list(), cyc_b.row, "list_id");
  EXPECT_TRUE(std::binary_search(closure.begin(), closure.end(), id_a));
  EXPECT_TRUE(std::binary_search(closure.begin(), closure.end(), id_b));

  // IsUserInList is exact over the cycle (no depth cap to fall off).
  EXPECT_TRUE(IsUserInList(*mc_, users_id, id_a));
  EXPECT_TRUE(IsUserInList(*mc_, users_id, id_b));
  EXPECT_FALSE(IsUserInList(*mc_, users_id, id_a + 1000));
}

}  // namespace
}  // namespace moira
