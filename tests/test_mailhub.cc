// Tests for the mail hub substrate: the staged-aliases switchover and
// sendmail-style routing of the file the SMTP DCM service ships.
#include "src/dcm/dcm.h"
#include "src/mailhub/mailhub.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class MailhubUnitTest : public ::testing::Test {
 protected:
  MailhubUnitTest()
      : clock_(0), realm_(&clock_), host_("ATHENA.MIT.EDU", &realm_, &clock_),
        hub_(&host_) {}

  void Stage(const std::string& contents) {
    host_.WriteFileDirect("/usr/lib/moira.staged/aliases", contents);
  }

  SimulatedClock clock_;
  KerberosRealm realm_;
  SimHost host_;
  MailhubSim hub_;
};

TEST_F(MailhubUnitTest, InstallRequiresStagedFile) {
  EXPECT_EQ(-1, hub_.InstallStagedAliases());
  Stage("a: a@po-1.LOCAL\n");
  EXPECT_EQ(1, hub_.InstallStagedAliases());
  EXPECT_TRUE(host_.HasFile("/usr/lib/aliases"));
}

TEST_F(MailhubUnitTest, RoutesDirectPobox) {
  Stage("babette: babette@ATHENA-PO-2.LOCAL\n");
  ASSERT_EQ(1, hub_.InstallStagedAliases());
  std::vector<std::string> route = hub_.Route("babette");
  ASSERT_EQ(1u, route.size());
  EXPECT_EQ("babette@ATHENA-PO-2.LOCAL", route[0]);
}

TEST_F(MailhubUnitTest, ExpandsListsTransitively) {
  Stage("# comment\n"
        "video-users: smyser, paul, inner-list, rubin@media-lab.mit.edu\n"
        "inner-list: danapple\n"
        "smyser: smyser@PO-1.LOCAL\n"
        "paul: paul@PO-2.LOCAL\n"
        "danapple: danapple@PO-1.LOCAL\n");
  ASSERT_EQ(5, hub_.InstallStagedAliases());
  std::vector<std::string> route = hub_.Route("video-users");
  std::set<std::string> got(route.begin(), route.end());
  EXPECT_EQ(4u, got.size());
  EXPECT_TRUE(got.contains("rubin@media-lab.mit.edu"));
  EXPECT_TRUE(got.contains("danapple@PO-1.LOCAL"));
}

TEST_F(MailhubUnitTest, AliasCycleTerminates) {
  Stage("a: b\nb: a, c@x.LOCAL\n");
  ASSERT_EQ(2, hub_.InstallStagedAliases());
  std::vector<std::string> route = hub_.Route("a");
  ASSERT_EQ(1u, route.size());
  EXPECT_EQ("c@x.LOCAL", route[0]);
}

TEST_F(MailhubUnitTest, UnknownUserBounces) {
  Stage("known: known@PO-1.LOCAL\n");
  ASSERT_EQ(1, hub_.InstallStagedAliases());
  EXPECT_TRUE(hub_.Route("stranger").empty());
  EXPECT_EQ(0, hub_.Deliver("stranger", "hello?"));
}

TEST_F(MailhubUnitTest, DeliverFillsMailboxes) {
  Stage("duo: a, b\na: a@PO-1.LOCAL\nb: b@PO-2.LOCAL\n");
  ASSERT_EQ(3, hub_.InstallStagedAliases());
  EXPECT_EQ(2, hub_.Deliver("duo", "meeting at 5"));
  ASSERT_EQ(1u, hub_.Mailbox("a@PO-1.LOCAL").size());
  EXPECT_EQ("meeting at 5", hub_.Mailbox("a@PO-1.LOCAL")[0]);
  EXPECT_EQ(1u, hub_.Mailbox("b@PO-2.LOCAL").size());
  EXPECT_TRUE(hub_.Mailbox("nobody@PO-9.LOCAL").empty());
}

TEST_F(MailhubUnitTest, ReinstallReplacesAliases) {
  Stage("old: old@PO-1.LOCAL\n");
  ASSERT_EQ(1, hub_.InstallStagedAliases());
  Stage("new: new@PO-1.LOCAL\n");
  ASSERT_EQ(1, hub_.InstallStagedAliases());
  EXPECT_TRUE(hub_.Route("old").empty());
  EXPECT_FALSE(hub_.Route("new").empty());
}

// End to end: Moira -> DCM -> staged file -> switchover -> routing.
class MailhubEndToEndTest : public MoiraEnv {};

TEST_F(MailhubEndToEndTest, MoiraGeneratedAliasesRouteMail) {
  SiteBuilder builder(mc_.get(), realm_.get());
  builder.Build(TestSiteSpec());
  ZephyrBus zephyr(&clock_);
  HostDirectory directory;
  auto hosts = CreateSimHosts(*mc_, realm_.get(), &directory);
  Dcm dcm(mc_.get(), realm_.get(), &zephyr, &directory);
  ConfigureStandardServices(&dcm);
  clock_.Advance(kSecondsPerDay);
  dcm.RunOnce();
  MailhubSim hub(directory.Find("ATHENA.MIT.EDU"));
  ASSERT_GT(hub.InstallStagedAliases(), 0);
  // Every active user routes to exactly one pobox address on a .LOCAL host.
  for (const std::string& login : builder.active_logins()) {
    std::vector<std::string> route = hub.Route(login);
    ASSERT_EQ(1u, route.size()) << login;
    EXPECT_NE(route[0].find(login + "@"), std::string::npos);
    EXPECT_NE(route[0].find(".LOCAL"), std::string::npos);
  }
  // A maillist expands to its member poboxes.
  std::vector<Tuple> members;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_members_of_list", {"ml-1"}, &members));
  std::vector<std::string> route = hub.Route("ml-1");
  EXPECT_GE(route.size(), 1u);
  EXPECT_EQ(1, hub.Deliver(builder.active_logins()[0], "direct note"));
}

}  // namespace
}  // namespace moira
