// Tests for the registration server and userreg flow (paper section 5.10).
#include "src/krb/crypt.h"
#include "src/reg/regserver.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class RegTest : public MoiraEnv {
 protected:
  void SetUp() override {
    // Infrastructure register_user needs.
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"po-1.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"nfs-1.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info",
                                  {"POP", "0", "", "", "UNIQUE", "1", "NONE", "NONE"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                  {"POP", "po-1.mit.edu", "1", "0", "500", ""}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfsphys", {"nfs-1.mit.edu", "/u1", "ra00",
                                                  std::to_string(kFsStudent), "0",
                                                  "100000"}));
    realm_->RegisterService(kMoiraServiceName);
    server_ = std::make_unique<RegistrationServer>(mc_.get(), realm_.get());
    // The registrar's tape: a student known by name and encrypted MIT id,
    // with no login and no Kerberos principal.
    ImportStudent("Harmon", "Fowler", kId);
  }

  void ImportStudent(const std::string& first, const std::string& last,
                     const std::string& id) {
    ASSERT_EQ(MR_SUCCESS,
              RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", last, first, "X", "0",
                                   HashMitId(id, first, last), "1989"}));
  }

  static constexpr char kId[] = "123-45-6789";

  std::unique_ptr<RegistrationServer> server_;
};

TEST_F(RegTest, VerifyUserSucceedsForRegisterableStudent) {
  std::string hash = HashMitId(kId, "Harmon", "Fowler");
  RegReply reply =
      server_->VerifyUser("Harmon", "Fowler", BuildRegAuthenticator(kId, hash, ""));
  EXPECT_EQ(MR_SUCCESS, reply.code);
  EXPECT_EQ(kUserNotRegistered, reply.user_status);
}

TEST_F(RegTest, VerifyUserNotFoundForUnknownName) {
  std::string hash = HashMitId(kId, "No", "Body");
  RegReply reply =
      server_->VerifyUser("No", "Body", BuildRegAuthenticator(kId, hash, ""));
  EXPECT_EQ(MR_REG_NOT_FOUND, reply.code);
}

TEST_F(RegTest, VerifyUserRejectsWrongId) {
  // Right name, wrong ID number: the authenticator decrypts with the wrong
  // key and validation fails.
  std::string wrong_hash = HashMitId("999-99-9999", "Harmon", "Fowler");
  RegReply reply = server_->VerifyUser(
      "Harmon", "Fowler", BuildRegAuthenticator("999-99-9999", wrong_hash, ""));
  EXPECT_EQ(MR_REG_BAD_AUTH, reply.code);
}

TEST_F(RegTest, VerifyUserRejectsTamperedAuthenticator) {
  std::string hash = HashMitId(kId, "Harmon", "Fowler");
  std::string authenticator = BuildRegAuthenticator(kId, hash, "");
  authenticator[authenticator.size() / 2] ^= 0x10;
  RegReply reply = server_->VerifyUser("Harmon", "Fowler", authenticator);
  EXPECT_EQ(MR_REG_BAD_AUTH, reply.code);
}

TEST_F(RegTest, FullUserregFlow) {
  UserregClient userreg(server_.get(), realm_.get());
  ASSERT_EQ(MR_SUCCESS,
            userreg.Register("Harmon", "C", "Fowler", kId, "hfowler", "initialpw"));
  // The account is fully established: active status, kerberos principal with
  // the chosen password, pobox, group, filesystem, quota.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"hfowler"}, &tuples));
  EXPECT_EQ(std::to_string(kUserActive), tuples[0][6]);
  Ticket ticket;
  EXPECT_EQ(MR_SUCCESS,
            realm_->GetInitialTickets("hfowler", "initialpw", kMoiraServiceName, &ticket));
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_pobox", {"hfowler"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_filesys_by_label", {"hfowler"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_list_info", {"hfowler"}));
}

TEST_F(RegTest, SecondRegistrationRejected) {
  UserregClient userreg(server_.get(), realm_.get());
  ASSERT_EQ(MR_SUCCESS,
            userreg.Register("Harmon", "C", "Fowler", kId, "hfowler", "pw"));
  EXPECT_EQ(MR_REG_ALREADY,
            userreg.Register("Harmon", "C", "Fowler", kId, "hfowler2", "pw"));
}

TEST_F(RegTest, LoginTakenByKerberosPrincipal) {
  realm_->AddPrincipal("squatter", "pw");
  UserregClient userreg(server_.get(), realm_.get());
  EXPECT_EQ(MR_REG_LOGIN_TAKEN,
            userreg.Register("Harmon", "C", "Fowler", kId, "squatter", "pw"));
}

TEST_F(RegTest, LoginTakenByMoiraAccount) {
  AddActiveUser("existing", 4000);
  std::string hash = HashMitId(kId, "Harmon", "Fowler");
  RegReply reply = server_->GrabLogin("Harmon", "Fowler",
                                      BuildRegAuthenticator(kId, hash, "existing"));
  EXPECT_EQ(MR_REG_LOGIN_TAKEN, reply.code);
}

TEST_F(RegTest, SetPasswordRequiresGrabLoginFirst) {
  std::string hash = HashMitId(kId, "Harmon", "Fowler");
  RegReply reply = server_->SetPassword("Harmon", "Fowler",
                                        BuildRegAuthenticator(kId, hash, "pw"));
  EXPECT_EQ(MR_REG_NOT_FOUND, reply.code);
}

TEST_F(RegTest, PacketInterfaceRoundTrip) {
  std::string hash = HashMitId(kId, "Harmon", "Fowler");
  std::string packet;
  PackField(&packet, "1");  // Verify User
  PackField(&packet, "Harmon");
  PackField(&packet, "Fowler");
  PackField(&packet, BuildRegAuthenticator(kId, hash, ""));
  std::string reply = server_->HandlePacket(packet);
  std::string_view view(reply);
  std::string code_field;
  std::string status_field;
  ASSERT_TRUE(UnpackField(&view, &code_field));
  ASSERT_TRUE(UnpackField(&view, &status_field));
  EXPECT_EQ("0", code_field);
  EXPECT_EQ("0", status_field);
}

TEST_F(RegTest, MalformedPacketRejected) {
  std::string reply = server_->HandlePacket("garbage");
  std::string_view view(reply);
  std::string code_field;
  ASSERT_TRUE(UnpackField(&view, &code_field));
  EXPECT_EQ(std::to_string(MR_REG_BAD_AUTH), code_field);
}

TEST_F(RegTest, TwoStudentsSameNameDistinguishedById) {
  // A second Harmon Fowler with a different ID registers independently.
  ImportStudent("Harmon", "Fowler", "555-00-1111");
  UserregClient userreg(server_.get(), realm_.get());
  ASSERT_EQ(MR_SUCCESS,
            userreg.Register("Harmon", "C", "Fowler", kId, "hfowler1", "pw1"));
  ASSERT_EQ(MR_SUCCESS,
            userreg.Register("Harmon", "Q", "Fowler", "555-00-1111", "hfowler2", "pw2"));
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"hfowler1"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"hfowler2"}));
}

TEST_F(RegTest, RegistrationStorm) {
  // ~1000 accounts at the start of term with no staff intervention (paper
  // section 5.10).  Scaled to 100 here; the bench runs the full 1000.
  UserregClient userreg(server_.get(), realm_.get());
  for (int i = 0; i < 100; ++i) {
    std::string id = "900-00-" + std::to_string(1000 + i);
    ImportStudent("Stu" + std::to_string(i), "Dent", id);
    ASSERT_EQ(MR_SUCCESS, userreg.Register("Stu" + std::to_string(i), "M", "Dent", id,
                                           "stu" + std::to_string(i), "pw"))
        << i;
  }
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_all_active_logins", {}, &tuples));
  EXPECT_EQ(100u, tuples.size());
  // Pobox load tracked on the POP server.
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"POP", "po-1.mit.edu"}, &tuples));
  EXPECT_EQ("100", tuples[0][10]);
}

}  // namespace
}  // namespace moira
