// Tests for zephyr, hostaccess, services, printcap, alias, values, table
// statistics, and the built-in special queries (paper sections 7.0.6-7.0.8).
#include "tests/test_env.h"

namespace moira {
namespace {

class MiscQueriesTest : public MoiraEnv {};

TEST_F(MiscQueriesTest, ZephyrClassLifecycle) {
  AddActiveUser("zuser", 100);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"zlist", "1", "0", "0", "0", "0", "-1",
                                             "NONE", "NONE", "d"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_zephyr_class",
                                {"message", "USER", "zuser", "NONE", "NONE", "LIST",
                                 "zlist", "NONE", "NONE"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_zephyr_class",
                               {"message", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
                                "NONE", "NONE"}));
  EXPECT_EQ(MR_ACE, RunRoot("add_zephyr_class",
                            {"m2", "USER", "ghost", "NONE", "NONE", "NONE", "NONE", "NONE",
                             "NONE"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_zephyr_class", {"mess*"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  ASSERT_EQ(12u, tuples[0].size());
  EXPECT_EQ("USER", tuples[0][1]);
  EXPECT_EQ("zuser", tuples[0][2]);
  EXPECT_EQ("LIST", tuples[0][5]);
  EXPECT_EQ("zlist", tuples[0][6]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_zephyr_class",
                                {"message", "message2", "NONE", "NONE", "USER", "zuser",
                                 "NONE", "NONE", "NONE", "NONE"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_zephyr_class", {"message2"}, &tuples));
  EXPECT_EQ("NONE", tuples[0][1]);
  EXPECT_EQ("USER", tuples[0][3]);
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_zephyr_class", {"message2"}));
  EXPECT_EQ(MR_ZEPHYR, RunRoot("delete_zephyr_class", {"message2"}));
}

TEST_F(MiscQueriesTest, HostAccessLifecycle) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"guarded.mit.edu", "VAX"}));
  AddActiveUser("klog", 101);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_access",
                                {"guarded.mit.edu", "USER", "klog"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_server_host_access",
                               {"guarded.mit.edu", "NONE", "NONE"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_access", {"guarded*"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("GUARDED.MIT.EDU", tuples[0][0]);
  EXPECT_EQ("USER", tuples[0][1]);
  EXPECT_EQ("klog", tuples[0][2]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_host_access",
                                {"guarded.mit.edu", "NONE", "NONE"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_access", {"*"}, &tuples));
  EXPECT_EQ("NONE", tuples[0][1]);
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_server_host_access", {"guarded.mit.edu"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("delete_server_host_access", {"guarded.mit.edu"}));
}

TEST_F(MiscQueriesTest, NetworkServices) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_service", {"smtp", "tcp", "25", "mail transfer"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_service", {"smtp", "tcp", "25", "dup"}));
  EXPECT_EQ(MR_TYPE, RunRoot("add_service", {"x25", "x25", "1", ""}));
  EXPECT_EQ(MR_INTEGER, RunRoot("add_service", {"qotd", "tcp", "low", ""}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, Run("", "get_service", {"smtp"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("TCP", tuples[0][1]);
  EXPECT_EQ("25", tuples[0][2]);
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_service", {"smtp"}));
  EXPECT_EQ(MR_SERVICE, RunRoot("delete_service", {"smtp"}));
}

TEST_F(MiscQueriesTest, Printcap) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"blanket.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_printcap",
                                {"linus", "blanket.mit.edu", "/usr/spool/printer/linus",
                                 "linus", "lab printer"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_printcap", {"linus", "blanket.mit.edu", "/s", "r",
                                                ""}));
  EXPECT_EQ(MR_MACHINE, RunRoot("add_printcap", {"p2", "ghost.mit.edu", "/s", "r", ""}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, Run("", "get_printcap", {"lin*"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  ASSERT_EQ(7u, tuples[0].size());
  EXPECT_EQ("BLANKET.MIT.EDU", tuples[0][1]);
  EXPECT_EQ("/usr/spool/printer/linus", tuples[0][2]);
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_printcap", {"linus"}));
}

TEST_F(MiscQueriesTest, AliasQueries) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_alias", {"lpr1", "PRINTER", "linus"}));
  // Duplicate translations for a (name, type) pair are allowed.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_alias", {"lpr1", "PRINTER", "lucy"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_alias", {"lpr1", "PRINTER", "linus"}));
  EXPECT_EQ(MR_TYPE, RunRoot("add_alias", {"x", "NOTATYPE", "y"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, Run("", "get_alias", {"lpr1", "PRINTER", "*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_alias", {"lpr1", "PRINTER", "linus"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("delete_alias", {"lpr1", "PRINTER", "linus"}));
}

TEST_F(MiscQueriesTest, ValuesQueries) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_value", {"my_var", "17"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_value", {"my_var", "18"}));
  EXPECT_EQ(MR_INTEGER, RunRoot("add_value", {"other", "xyz"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, Run("", "get_value", {"my_var"}, &tuples));
  EXPECT_EQ("17", tuples[0][0]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_value", {"my_var", "18"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_value", {"my_var"}, &tuples));
  EXPECT_EQ("18", tuples[0][0]);
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_value", {"my_var"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("get_value", {"my_var"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("update_value", {"my_var", "1"}));
}

TEST_F(MiscQueriesTest, TableStats) {
  AddActiveUser("statuser", 102);
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, Run("", "get_all_table_stats", {}, &tuples));
  EXPECT_EQ(22u, tuples.size());
  bool found_users = false;
  for (const Tuple& t : tuples) {
    if (t[0] == "users") {
      found_users = true;
      EXPECT_EQ("0", t[1]);            // retrieves: obsolete, always 0
      EXPECT_NE("0", t[2]);            // appends
    }
  }
  EXPECT_TRUE(found_users);
}

TEST_F(MiscQueriesTest, TableStatisticsReportAccessPaths) {
  AddActiveUser("pathuser", 103);
  // Privileged only: world_ok is false and anonymous principals hold no
  // capability ACLs.
  EXPECT_EQ(MR_PERM, Run("", "get_table_statistics", {}));
  // An indexed lookup should be answered by the login index, not a scan.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"pathuser"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_table_statistics", {}, &tuples));
  ASSERT_FALSE(tuples.empty());
  bool found_users = false;
  for (const Tuple& t : tuples) {
    // table, appends, updates, deletes, index_hits, prefix_scans,
    // range_scans, full_scans, rows_examined, rows_emitted, join_reorders,
    // probe_cache_hits, shards, single_shard_probes, fanout_scans,
    // set_probes.
    ASSERT_EQ(16u, t.size());
    if (t[0] == "users") {
      found_users = true;
      EXPECT_NE("0", t[1]);   // appends from AddActiveUser
      EXPECT_NE("0", t[4]);   // index_hits from get_user_by_login
      EXPECT_NE("0", t[9]);   // rows_emitted
      EXPECT_EQ("4", t[12]);  // default SchemaOptions shard the users table
      // AddActiveUser's id-allocation uniqueness probes hit the partition
      // column (users_id), so they route to a single shard; the login-index
      // lookup is not partition-aligned and fans across shards.
      EXPECT_NE("0", t[13]);
      EXPECT_NE("0", t[14]);
    }
  }
  EXPECT_TRUE(found_users);
}

TEST_F(MiscQueriesTest, HelpAndListQueries) {
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, Run("", "_help", {"get_user_by_login"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_NE(tuples[0][0].find("gubl"), std::string::npos);
  EXPECT_NE(tuples[0][0].find("retrieve"), std::string::npos);
  EXPECT_EQ(MR_NO_HANDLE, Run("", "_help", {"nope"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, Run("", "_list_queries", {}, &tuples));
  EXPECT_GE(tuples.size(), 100u);
  EXPECT_EQ(2u, tuples[0].size());
}

TEST_F(MiscQueriesTest, AccessCheckMirrorsExecution) {
  const QueryRegistry& registry = QueryRegistry::Instance();
  AddActiveUser("checker", 103);
  // World query: anyone.
  EXPECT_EQ(MR_SUCCESS, registry.CheckAccess(*mc_, "", "get_machine", {"*"}));
  // Privileged query: denied for a plain user, allowed for root.
  EXPECT_EQ(MR_PERM, registry.CheckAccess(*mc_, "checker", "add_machine", {"m", "VAX"}));
  EXPECT_EQ(MR_SUCCESS, registry.CheckAccess(*mc_, "root", "add_machine", {"m", "VAX"}));
  // Self-service path allowed via access check.
  EXPECT_EQ(MR_SUCCESS, registry.CheckAccess(*mc_, "checker", "update_user_shell",
                                             {"checker", "/bin/sh"}));
  EXPECT_EQ(MR_PERM, registry.CheckAccess(*mc_, "checker", "update_user_shell",
                                          {"other", "/bin/sh"}));
  // Arg count and unknown query surface the same errors as execution.
  EXPECT_EQ(MR_ARGS, registry.CheckAccess(*mc_, "root", "add_machine", {"m"}));
  EXPECT_EQ(MR_NO_HANDLE, registry.CheckAccess(*mc_, "root", "zzz", {}));
  // The trigger_dcm pseudo-query is access-checked like any other.
  EXPECT_EQ(MR_PERM, registry.CheckAccess(*mc_, "checker", "trigger_dcm", {}));
  EXPECT_EQ(MR_SUCCESS, registry.CheckAccess(*mc_, "root", "trigger_dcm", {}));
}

}  // namespace
}  // namespace moira
