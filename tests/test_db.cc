// Unit and property tests for the relational database engine (paper section
// 5.2's INGRES substitute).
#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/db/database.h"

namespace moira {
namespace {

TableSchema PeopleSchema() {
  return TableSchema{"people",
                     {{"name", ColumnType::kString},
                      {"uid", ColumnType::kInt},
                      {"shell", ColumnType::kString}}};
}

class DbTest : public ::testing::Test {
 protected:
  DbTest() : clock_(1000), db_(&clock_) { table_ = db_.CreateTable(PeopleSchema()); }

  SimulatedClock clock_;
  Database db_;
  Table* table_;
};

TEST_F(DbTest, AppendAndRead) {
  size_t row = table_->Append({"alice", 100, "/bin/csh"});
  EXPECT_TRUE(table_->IsLive(row));
  EXPECT_EQ("alice", table_->Cell(row, 0).AsString());
  EXPECT_EQ(100, table_->Cell(row, 1).AsInt());
  EXPECT_EQ(1u, table_->LiveCount());
}

TEST_F(DbTest, ColumnIndexLookup) {
  EXPECT_EQ(0, table_->ColumnIndex("name"));
  EXPECT_EQ(1, table_->ColumnIndex("uid"));
  EXPECT_EQ(-1, table_->ColumnIndex("nope"));
}

TEST_F(DbTest, UpdateCell) {
  size_t row = table_->Append({"alice", 100, "/bin/csh"});
  table_->Update(row, 2, Value("/bin/sh"));
  EXPECT_EQ("/bin/sh", table_->Cell(row, 2).AsString());
}

TEST_F(DbTest, DeleteTombstonesRow) {
  size_t a = table_->Append({"alice", 100, "/bin/csh"});
  size_t b = table_->Append({"bob", 101, "/bin/sh"});
  table_->Delete(a);
  EXPECT_FALSE(table_->IsLive(a));
  EXPECT_TRUE(table_->IsLive(b));
  EXPECT_EQ(1u, table_->LiveCount());
  // b's index is stable across a's deletion.
  EXPECT_EQ("bob", table_->Cell(b, 0).AsString());
}

TEST_F(DbTest, MatchEquality) {
  table_->Append({"alice", 100, "/bin/csh"});
  table_->Append({"bob", 101, "/bin/sh"});
  table_->Append({"alice", 102, "/bin/sh"});
  auto rows = table_->Match({Condition{0, Condition::Op::kEq, Value("alice")}});
  EXPECT_EQ(2u, rows.size());
  rows = table_->Match({Condition{1, Condition::Op::kEq, Value(int64_t{101})}});
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ("bob", table_->Cell(rows[0], 0).AsString());
}

TEST_F(DbTest, MatchConjunction) {
  table_->Append({"alice", 100, "/bin/csh"});
  table_->Append({"alice", 101, "/bin/sh"});
  auto rows = table_->Match({Condition{0, Condition::Op::kEq, Value("alice")},
                             Condition{2, Condition::Op::kEq, Value("/bin/sh")}});
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(101, table_->Cell(rows[0], 1).AsInt());
}

TEST_F(DbTest, MatchWildcardAndCaseInsensitive) {
  table_->Append({"Kermit.MIT.EDU", 1, ""});
  table_->Append({"gonzo.mit.edu", 2, ""});
  auto rows = table_->Match({Condition{0, Condition::Op::kWildNoCase, Value("*.mit.edu")}});
  EXPECT_EQ(2u, rows.size());
  rows = table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("KERMIT.mit.edu")}});
  EXPECT_EQ(1u, rows.size());
}

TEST_F(DbTest, IndexedMatchEqualsScan) {
  // Property: Match through an index returns the same rows as an unindexed
  // scan, across appends, updates, and deletes.
  Table* indexed = db_.CreateTable(TableSchema{
      "indexed", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  indexed->CreateIndex("k");
  Table* plain = db_.CreateTable(TableSchema{
      "plain", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  auto mutate = [&](Table* t) {
    for (int i = 0; i < 200; ++i) {
      t->Append({"k" + std::to_string(i % 17), i});
    }
    for (size_t i = 0; i < 200; i += 3) {
      t->Delete(i);
    }
    for (size_t i = 1; i < 200; i += 7) {
      if (t->IsLive(i)) {
        t->Update(i, 0, Value("rekeyed"));
      }
    }
  };
  mutate(indexed);
  mutate(plain);
  for (const char* key : {"k0", "k5", "k16", "rekeyed", "missing"}) {
    auto a = indexed->Match({Condition{0, Condition::Op::kEq, Value(key)}});
    auto b = plain->Match({Condition{0, Condition::Op::kEq, Value(key)}});
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(b, a) << "key " << key;
  }
}

TEST_F(DbTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    table_->Append({"u" + std::to_string(i), i, ""});
  }
  int visited = 0;
  table_->Scan([&](size_t, const Row&) { return ++visited < 3; });
  EXPECT_EQ(3, visited);
}

TEST_F(DbTest, StatsTrackMutations) {
  clock_.Set(2000);
  size_t row = table_->Append({"a", 1, ""});
  EXPECT_EQ(1, table_->stats().appends);
  EXPECT_EQ(2000, table_->stats().modtime);
  clock_.Set(3000);
  table_->Update(row, 1, Value(int64_t{2}));
  EXPECT_EQ(1, table_->stats().updates);
  EXPECT_EQ(3000, table_->stats().modtime);
  clock_.Set(4000);
  table_->Delete(row);
  EXPECT_EQ(1, table_->stats().deletes);
  EXPECT_EQ(4000, table_->stats().modtime);
}

TEST_F(DbTest, DatabaseLastModified) {
  EXPECT_EQ(0, db_.LastModified());
  clock_.Set(5555);
  table_->Append({"x", 1, ""});
  EXPECT_EQ(5555, db_.LastModified());
}

TEST_F(DbTest, DuplicateTableRejected) {
  EXPECT_EQ(nullptr, db_.CreateTable(PeopleSchema()));
}

TEST_F(DbTest, TableNamesInCreationOrder) {
  db_.CreateTable(TableSchema{"zeta", {{"a", ColumnType::kInt}}});
  db_.CreateTable(TableSchema{"alpha", {{"a", ColumnType::kInt}}});
  std::vector<std::string> names = db_.TableNames();
  ASSERT_EQ(3u, names.size());
  EXPECT_EQ("people", names[0]);
  EXPECT_EQ("zeta", names[1]);
  EXPECT_EQ("alpha", names[2]);
}

TEST_F(DbTest, ClearAllRowsKeepsSchemas) {
  table_->Append({"a", 1, ""});
  db_.ClearAllRows();
  EXPECT_EQ(0u, table_->LiveCount());
  EXPECT_NE(nullptr, db_.GetTable("people"));
}

TEST(ValueTest, TypeAndConversions) {
  Value i{int64_t{42}};
  Value s{"hello"};
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ("42", i.ToString());
  EXPECT_EQ("hello", s.ToString());
  EXPECT_EQ(0, s.AsInt());
  EXPECT_EQ("", i.AsString());
  EXPECT_EQ(Value(int64_t{42}), i);
  EXPECT_NE(Value("hello "), s);
}

// Index maintenance across updates must not leave dangling entries.
TEST_F(DbTest, IndexUpdatedOnRekey) {
  table_->CreateIndex("name");
  size_t row = table_->Append({"old", 1, ""});
  table_->Update(row, 0, Value("new"));
  EXPECT_TRUE(table_->Match({Condition{0, Condition::Op::kEq, Value("old")}}).empty());
  ASSERT_EQ(1u, table_->Match({Condition{0, Condition::Op::kEq, Value("new")}}).size());
}

TEST_F(DbTest, IndexCreationOnPopulatedTable) {
  for (int i = 0; i < 20; ++i) {
    table_->Append({"name" + std::to_string(i % 5), i, ""});
  }
  table_->CreateIndex("name");
  EXPECT_EQ(4u, table_->Match({Condition{0, Condition::Op::kEq, Value("name2")}}).size());
}

}  // namespace
}  // namespace moira
