// Unit and property tests for the relational database engine (paper section
// 5.2's INGRES substitute).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/clock.h"
#include "src/common/strutil.h"
#include "src/db/database.h"
#include "src/db/exec.h"

namespace moira {
namespace {

TableSchema PeopleSchema() {
  return TableSchema{"people",
                     {{"name", ColumnType::kString},
                      {"uid", ColumnType::kInt},
                      {"shell", ColumnType::kString}}};
}

class DbTest : public ::testing::Test {
 protected:
  DbTest() : clock_(1000), db_(&clock_) { table_ = db_.CreateTable(PeopleSchema()); }

  SimulatedClock clock_;
  Database db_;
  Table* table_;
};

TEST_F(DbTest, AppendAndRead) {
  size_t row = table_->Append({"alice", 100, "/bin/csh"});
  EXPECT_TRUE(table_->IsLive(row));
  EXPECT_EQ("alice", table_->Cell(row, 0).AsString());
  EXPECT_EQ(100, table_->Cell(row, 1).AsInt());
  EXPECT_EQ(1u, table_->LiveCount());
}

TEST_F(DbTest, ColumnIndexLookup) {
  EXPECT_EQ(0, table_->ColumnIndex("name"));
  EXPECT_EQ(1, table_->ColumnIndex("uid"));
  EXPECT_EQ(-1, table_->ColumnIndex("nope"));
}

TEST_F(DbTest, UpdateCell) {
  size_t row = table_->Append({"alice", 100, "/bin/csh"});
  table_->Update(row, 2, Value("/bin/sh"));
  EXPECT_EQ("/bin/sh", table_->Cell(row, 2).AsString());
}

TEST_F(DbTest, DeleteTombstonesRow) {
  size_t a = table_->Append({"alice", 100, "/bin/csh"});
  size_t b = table_->Append({"bob", 101, "/bin/sh"});
  table_->Delete(a);
  EXPECT_FALSE(table_->IsLive(a));
  EXPECT_TRUE(table_->IsLive(b));
  EXPECT_EQ(1u, table_->LiveCount());
  // b's index is stable across a's deletion.
  EXPECT_EQ("bob", table_->Cell(b, 0).AsString());
}

TEST_F(DbTest, MatchEquality) {
  table_->Append({"alice", 100, "/bin/csh"});
  table_->Append({"bob", 101, "/bin/sh"});
  table_->Append({"alice", 102, "/bin/sh"});
  auto rows = table_->Match({Condition{0, Condition::Op::kEq, Value("alice")}});
  EXPECT_EQ(2u, rows.size());
  rows = table_->Match({Condition{1, Condition::Op::kEq, Value(int64_t{101})}});
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ("bob", table_->Cell(rows[0], 0).AsString());
}

TEST_F(DbTest, MatchConjunction) {
  table_->Append({"alice", 100, "/bin/csh"});
  table_->Append({"alice", 101, "/bin/sh"});
  auto rows = table_->Match({Condition{0, Condition::Op::kEq, Value("alice")},
                             Condition{2, Condition::Op::kEq, Value("/bin/sh")}});
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(101, table_->Cell(rows[0], 1).AsInt());
}

TEST_F(DbTest, MatchWildcardAndCaseInsensitive) {
  table_->Append({"Kermit.MIT.EDU", 1, ""});
  table_->Append({"gonzo.mit.edu", 2, ""});
  auto rows = table_->Match({Condition{0, Condition::Op::kWildNoCase, Value("*.mit.edu")}});
  EXPECT_EQ(2u, rows.size());
  rows = table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("KERMIT.mit.edu")}});
  EXPECT_EQ(1u, rows.size());
}

TEST_F(DbTest, IndexedMatchEqualsScan) {
  // Property: Match through an index returns the same rows as an unindexed
  // scan, across appends, updates, and deletes.
  Table* indexed = db_.CreateTable(TableSchema{
      "indexed", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  indexed->CreateIndex("k");
  Table* plain = db_.CreateTable(TableSchema{
      "plain", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  auto mutate = [&](Table* t) {
    for (int i = 0; i < 200; ++i) {
      t->Append({"k" + std::to_string(i % 17), i});
    }
    for (size_t i = 0; i < 200; i += 3) {
      t->Delete(i);
    }
    for (size_t i = 1; i < 200; i += 7) {
      if (t->IsLive(i)) {
        t->Update(i, 0, Value("rekeyed"));
      }
    }
  };
  mutate(indexed);
  mutate(plain);
  for (const char* key : {"k0", "k5", "k16", "rekeyed", "missing"}) {
    auto a = indexed->Match({Condition{0, Condition::Op::kEq, Value(key)}});
    auto b = plain->Match({Condition{0, Condition::Op::kEq, Value(key)}});
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(b, a) << "key " << key;
  }
}

TEST_F(DbTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    table_->Append({"u" + std::to_string(i), i, ""});
  }
  int visited = 0;
  table_->Scan([&](size_t, const Row&) { return ++visited < 3; });
  EXPECT_EQ(3, visited);
  // Every row a Scan hands to its visitor counts as emitted — including on
  // an early stop, where only the visited prefix reached the caller.
  EXPECT_EQ(3, table_->stats().rows_emitted);
}

TEST_F(DbTest, StatsTrackMutations) {
  clock_.Set(2000);
  size_t row = table_->Append({"a", 1, ""});
  EXPECT_EQ(1, table_->stats().appends);
  EXPECT_EQ(2000, table_->stats().modtime);
  clock_.Set(3000);
  table_->Update(row, 1, Value(int64_t{2}));
  EXPECT_EQ(1, table_->stats().updates);
  EXPECT_EQ(3000, table_->stats().modtime);
  clock_.Set(4000);
  table_->Delete(row);
  EXPECT_EQ(1, table_->stats().deletes);
  EXPECT_EQ(4000, table_->stats().modtime);
}

TEST_F(DbTest, DatabaseLastModified) {
  EXPECT_EQ(0, db_.LastModified());
  clock_.Set(5555);
  table_->Append({"x", 1, ""});
  EXPECT_EQ(5555, db_.LastModified());
}

TEST_F(DbTest, DuplicateTableRejected) {
  EXPECT_EQ(nullptr, db_.CreateTable(PeopleSchema()));
}

TEST_F(DbTest, TableNamesInCreationOrder) {
  db_.CreateTable(TableSchema{"zeta", {{"a", ColumnType::kInt}}});
  db_.CreateTable(TableSchema{"alpha", {{"a", ColumnType::kInt}}});
  std::vector<std::string> names = db_.TableNames();
  ASSERT_EQ(3u, names.size());
  EXPECT_EQ("people", names[0]);
  EXPECT_EQ("zeta", names[1]);
  EXPECT_EQ("alpha", names[2]);
}

TEST_F(DbTest, ClearAllRowsKeepsSchemas) {
  table_->Append({"a", 1, ""});
  db_.ClearAllRows();
  EXPECT_EQ(0u, table_->LiveCount());
  EXPECT_NE(nullptr, db_.GetTable("people"));
}

TEST(ValueTest, TypeAndConversions) {
  Value i{int64_t{42}};
  Value s{"hello"};
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ("42", i.ToString());
  EXPECT_EQ("hello", s.ToString());
  EXPECT_EQ(0, s.AsInt());
  EXPECT_EQ("", i.AsString());
  EXPECT_EQ(Value(int64_t{42}), i);
  EXPECT_NE(Value("hello "), s);
}

// Index maintenance across updates must not leave dangling entries.
TEST_F(DbTest, IndexUpdatedOnRekey) {
  table_->CreateIndex("name");
  size_t row = table_->Append({"old", 1, ""});
  table_->Update(row, 0, Value("new"));
  EXPECT_TRUE(table_->Match({Condition{0, Condition::Op::kEq, Value("old")}}).empty());
  ASSERT_EQ(1u, table_->Match({Condition{0, Condition::Op::kEq, Value("new")}}).size());
}

TEST_F(DbTest, IndexCreationOnPopulatedTable) {
  for (int i = 0; i < 20; ++i) {
    table_->Append({"name" + std::to_string(i % 5), i, ""});
  }
  table_->CreateIndex("name");
  EXPECT_EQ(4u, table_->Match({Condition{0, Condition::Op::kEq, Value("name2")}}).size());
}

// Regression: with several equality-indexable conditions the planner must
// probe the index with the most distinct keys, not the first one declared.
// (The pre-planner Table::FindIndexFor took whichever index it saw first,
// so a 2-key "shell" index could swallow a lookup the unique "name" index
// answers in one row.)
TEST_F(DbTest, PlannerPicksMostSelectiveIndex) {
  table_->CreateIndex("shell");  // declared first, nearly useless: 2 keys
  table_->CreateIndex("name");   // unique
  for (int i = 0; i < 100; ++i) {
    table_->Append({"user" + std::to_string(i), i, i % 2 ? "/bin/csh" : "/bin/sh"});
  }
  std::vector<Condition> conds = {Condition{2, Condition::Op::kEq, Value("/bin/csh")},
                                  Condition{0, Condition::Op::kEq, Value("user41")}};
  AccessPath path = PlanAccess(*table_, conds);
  EXPECT_EQ(AccessPath::Kind::kIndexEq, path.kind);
  EXPECT_EQ(1u, path.cond_pos) << "must serve the name condition, not shell";

  int64_t examined_before = table_->stats().rows_examined;
  std::vector<size_t> rows = table_->Match(conds);
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(41, table_->Cell(rows[0], 1).AsInt());
  // A unique-index probe fetches one row; the shell index would fetch 50.
  EXPECT_EQ(1, table_->stats().rows_examined - examined_before);
}

TEST_F(DbTest, PlannerUsesFoldedIndexForNoCase) {
  table_->CreateFoldedIndex("name");
  table_->Append({"Kermit", 1, ""});
  table_->Append({"gonzo", 2, ""});
  std::vector<Condition> conds = {Condition{0, Condition::Op::kEqNoCase, Value("KERMIT")}};
  AccessPath path = PlanAccess(*table_, conds);
  EXPECT_EQ(AccessPath::Kind::kIndexEq, path.kind);
  EXPECT_TRUE(path.skip_cond) << "folded probe fully answers kEqNoCase";
  int64_t hits_before = table_->stats().index_hits;
  ASSERT_EQ(1u, table_->Match(conds).size());
  EXPECT_EQ(1, table_->stats().index_hits - hits_before);
}

TEST_F(DbTest, PlannerPrefixPrunesWildcards) {
  table_->CreateIndex("name");
  for (int i = 0; i < 500; ++i) {
    table_->Append({"host" + std::to_string(i) + ".mit.edu", i, ""});
  }
  std::vector<Condition> conds = {Condition{0, Condition::Op::kWild, Value("host42?.*")}};
  AccessPath path = PlanAccess(*table_, conds);
  EXPECT_EQ(AccessPath::Kind::kIndexPrefix, path.kind);
  EXPECT_EQ("host42", path.lower);

  int64_t examined_before = table_->stats().rows_examined;
  // host42.mit.edu doesn't match (no digit before '.'), host420..host429 do.
  std::vector<size_t> rows = table_->Match(conds);
  EXPECT_EQ(10u, rows.size());
  // The range touches the 11 "host42"-prefixed keys, not all 500 rows.
  EXPECT_EQ(11, table_->stats().rows_examined - examined_before);
  // Prefix results come back in storage order like every other path.
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST_F(DbTest, IntColumnWildcardNotPrefixPruned) {
  table_->CreateIndex("uid");
  table_->Append({"a", 123, ""});
  table_->Append({"b", 456, ""});
  // "12*" has a literal prefix but uid keys are ints; the planner must not
  // build a string range over an int index.
  std::vector<Condition> conds = {Condition{1, Condition::Op::kWild, Value("12*")}};
  AccessPath path = PlanAccess(*table_, conds);
  EXPECT_EQ(AccessPath::Kind::kFullScan, path.kind);
  EXPECT_EQ(1u, table_->Match(conds).size());
}

TEST_F(DbTest, AccessPathCountersDistinguishPaths) {
  table_->CreateIndex("name");
  table_->Append({"alice", 1, "/bin/sh"});
  table_->Append({"bob", 2, "/bin/csh"});

  table_->Match({Condition{0, Condition::Op::kEq, Value("alice")}});
  EXPECT_EQ(1, table_->stats().index_hits);
  table_->Match({Condition{0, Condition::Op::kWild, Value("ali*")}});
  EXPECT_EQ(1, table_->stats().prefix_scans);
  table_->Match({Condition{2, Condition::Op::kEq, Value("/bin/sh")}});
  EXPECT_EQ(1, table_->stats().full_scans);
  EXPECT_EQ(3, table_->stats().rows_emitted);

  // Raw storage sweeps count as full scans too, and every visited row is
  // emitted (a sweep has no predicate), so selectivity ratios stay honest
  // for scan-heavy callers.
  table_->Scan([](size_t, const Row&) { return true; });
  EXPECT_EQ(2, table_->stats().full_scans);
  EXPECT_EQ(5, table_->stats().rows_emitted);

  table_->CreateIndex("uid");
  table_->Match({Condition{1, Condition::Op::kLt, Value(int64_t{2}), Value()}});
  EXPECT_EQ(1, table_->stats().range_scans);
}

TEST_F(DbTest, UpdateRowKeepsIndexesConsistent) {
  table_->CreateIndex("name");
  table_->CreateFoldedIndex("name");
  size_t row = table_->Append({"Old", 1, ""});
  table_->Append({"other", 2, ""});
  table_->UpdateRow(row, {"New", 3, "/bin/sh"});
  EXPECT_TRUE(table_->Match({Condition{0, Condition::Op::kEq, Value("Old")}}).empty());
  EXPECT_TRUE(table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("old")}}).empty());
  ASSERT_EQ(1u, table_->Match({Condition{0, Condition::Op::kEq, Value("New")}}).size());
  ASSERT_EQ(1u, table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("NEW")}}).size());
}

TEST_F(DbTest, DeleteRemovesIndexEntries) {
  table_->CreateIndex("name");
  table_->CreateFoldedIndex("name");
  size_t a = table_->Append({"dup", 1, ""});
  table_->Append({"dup", 2, ""});
  table_->Delete(a);
  auto rows = table_->Match({Condition{0, Condition::Op::kEq, Value("dup")}});
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(2, table_->Cell(rows[0], 1).AsInt());
  rows = table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("DUP")}});
  ASSERT_EQ(1u, rows.size());
}

TEST_F(DbTest, ClearAllRowsEmptiesIndexes) {
  table_->CreateIndex("name");
  table_->CreateFoldedIndex("name");
  table_->Append({"alice", 1, ""});
  db_.ClearAllRows();
  EXPECT_TRUE(table_->Match({Condition{0, Condition::Op::kEq, Value("alice")}}).empty());
  EXPECT_TRUE(table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("ALICE")}}).empty());
  for (const IndexDesc& desc : table_->IndexDescs()) {
    EXPECT_EQ(0u, desc.entries);
    EXPECT_EQ(0u, desc.distinct_keys);
  }
  // The table is fully usable after the wipe.
  table_->Append({"alice", 1, ""});
  EXPECT_EQ(1u, table_->Match({Condition{0, Condition::Op::kEqNoCase, Value("Alice")}}).size());
}

TEST_F(DbTest, IndexCardinalityTracksLiveKeys) {
  table_->CreateIndex("name");
  size_t a = table_->Append({"x", 1, ""});
  table_->Append({"y", 2, ""});
  table_->Append({"y", 3, ""});
  ASSERT_EQ(1u, table_->IndexDescs().size());
  EXPECT_EQ(2u, table_->IndexDescs()[0].distinct_keys);
  EXPECT_EQ(3u, table_->IndexDescs()[0].entries);
  table_->Delete(a);
  EXPECT_EQ(1u, table_->IndexDescs()[0].distinct_keys);
  table_->Update(1, 0, Value("z"));
  EXPECT_EQ(2u, table_->IndexDescs()[0].distinct_keys);
}

// --- ordered-range predicates (kLt/kLe/kGt/kGe/kBetween) ---

TEST_F(DbTest, PlannerPlansOrderedRangeScan) {
  table_->CreateIndex("uid");
  for (int i = 0; i < 100; ++i) {
    table_->Append({"u" + std::to_string(i), i, ""});
  }
  std::vector<Condition> conds = {
      Condition{1, Condition::Op::kGe, Value(int64_t{40}), Value()},
      Condition{1, Condition::Op::kLt, Value(int64_t{50}), Value()}};
  AccessPath path = PlanAccess(*table_, conds);
  ASSERT_EQ(AccessPath::Kind::kIndexRange, path.kind);
  EXPECT_TRUE(path.range_lower.present);
  EXPECT_TRUE(path.range_lower.inclusive);
  EXPECT_EQ(Value(int64_t{40}), path.range_lower.key);
  EXPECT_TRUE(path.range_upper.present);
  EXPECT_FALSE(path.range_upper.inclusive);
  EXPECT_EQ(Value(int64_t{50}), path.range_upper.key);
  EXPECT_EQ(2u, path.range_conds.size()) << "both conditions absorbed, no residual";

  int64_t examined_before = table_->stats().rows_examined;
  std::vector<size_t> rows = table_->Match(conds);
  EXPECT_EQ(10u, rows.size());
  EXPECT_EQ(1, table_->stats().range_scans);
  // The scan touches only the 10 keys in [40, 50), not all 100 rows.
  EXPECT_EQ(10, table_->stats().rows_examined - examined_before);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST_F(DbTest, PlannerIntersectsRangeConditionsToTightestWindow) {
  table_->CreateIndex("uid");
  for (int i = 0; i < 100; ++i) {
    table_->Append({"u", i, ""});
  }
  // uid >= 10, uid > 19, uid <= 90, uid in [0, 30] intersect to (19, 30].
  std::vector<Condition> conds = {
      Condition{1, Condition::Op::kGe, Value(int64_t{10}), Value()},
      Condition{1, Condition::Op::kGt, Value(int64_t{19}), Value()},
      Condition{1, Condition::Op::kLe, Value(int64_t{90}), Value()},
      Condition{1, Condition::Op::kBetween, Value(int64_t{0}), Value(int64_t{30})}};
  AccessPath path = PlanAccess(*table_, conds);
  ASSERT_EQ(AccessPath::Kind::kIndexRange, path.kind);
  EXPECT_EQ(Value(int64_t{19}), path.range_lower.key);
  EXPECT_FALSE(path.range_lower.inclusive);
  EXPECT_EQ(Value(int64_t{30}), path.range_upper.key);
  EXPECT_TRUE(path.range_upper.inclusive);
  EXPECT_EQ(4u, path.range_conds.size()) << "every range condition absorbed";
  EXPECT_EQ(11u, table_->Match(conds).size());  // uids 20..30
}

// Regression: tightening used to AND the old bound's inclusivity into the new
// one even when the new key was strictly tighter, so `uid > 5 AND uid >= 10`
// planned an exclusive lower bound at 10 and silently dropped uid == 10 (the
// absorbed conditions run no residual check).  Same defect mirrored on the
// upper side.
TEST_F(DbTest, TighterInclusiveBoundKeepsItsInclusivity) {
  table_->CreateIndex("uid");
  for (int i = 0; i < 30; ++i) {
    table_->Append({"u", i, ""});
  }
  // kGt then kGe with a strictly larger key: bound is inclusive-at-10.
  std::vector<Condition> lower_conds = {
      Condition{1, Condition::Op::kGt, Value(int64_t{5}), Value()},
      Condition{1, Condition::Op::kGe, Value(int64_t{10}), Value()}};
  AccessPath lower_path = PlanAccess(*table_, lower_conds);
  ASSERT_EQ(AccessPath::Kind::kIndexRange, lower_path.kind);
  EXPECT_EQ(Value(int64_t{10}), lower_path.range_lower.key);
  EXPECT_TRUE(lower_path.range_lower.inclusive);
  EXPECT_EQ(20u, table_->Match(lower_conds).size());  // uids 10..29, 10 included

  // kLt then kLe with a strictly smaller key: bound is inclusive-at-10.
  std::vector<Condition> upper_conds = {
      Condition{1, Condition::Op::kLt, Value(int64_t{20}), Value()},
      Condition{1, Condition::Op::kLe, Value(int64_t{10}), Value()}};
  AccessPath upper_path = PlanAccess(*table_, upper_conds);
  ASSERT_EQ(AccessPath::Kind::kIndexRange, upper_path.kind);
  EXPECT_EQ(Value(int64_t{10}), upper_path.range_upper.key);
  EXPECT_TRUE(upper_path.range_upper.inclusive);
  EXPECT_EQ(11u, table_->Match(upper_conds).size());  // uids 0..10, 10 included

  // Equal keys still AND: x >= 7 AND x > 7 is exclusive-at-7.
  std::vector<Condition> equal_conds = {
      Condition{1, Condition::Op::kGe, Value(int64_t{7}), Value()},
      Condition{1, Condition::Op::kGt, Value(int64_t{7}), Value()}};
  AccessPath equal_path = PlanAccess(*table_, equal_conds);
  ASSERT_EQ(AccessPath::Kind::kIndexRange, equal_path.kind);
  EXPECT_FALSE(equal_path.range_lower.inclusive);
  EXPECT_EQ(22u, table_->Match(equal_conds).size());  // uids 8..29
}

TEST_F(DbTest, RangeScanAppliesResidualPredicates) {
  table_->CreateIndex("uid");
  for (int i = 0; i < 100; ++i) {
    table_->Append({i % 2 ? "odd" : "even", i, ""});
  }
  std::vector<Condition> conds = {
      Condition{1, Condition::Op::kBetween, Value(int64_t{10}), Value(int64_t{19})},
      Condition{0, Condition::Op::kEq, Value("odd"), Value()}};
  AccessPath path = PlanAccess(*table_, conds);
  ASSERT_EQ(AccessPath::Kind::kIndexRange, path.kind);
  ASSERT_EQ(1u, path.range_conds.size());
  EXPECT_EQ(0u, path.range_conds[0]) << "only the window condition is absorbed";
  std::vector<size_t> rows = table_->Match(conds);
  EXPECT_EQ(5u, rows.size());
  for (size_t row : rows) {
    EXPECT_EQ("odd", table_->Cell(row, 0).AsString());
  }
}

TEST_F(DbTest, EqualityProbeBeatsRangeScan) {
  table_->CreateIndex("name");
  table_->CreateIndex("uid");
  for (int i = 0; i < 50; ++i) {
    table_->Append({"user" + std::to_string(i), i, ""});
  }
  // With both an equality and a range condition indexable, the probe wins:
  // one key beats a window.
  std::vector<Condition> conds = {
      Condition{1, Condition::Op::kGe, Value(int64_t{0}), Value()},
      Condition{0, Condition::Op::kEq, Value("user7"), Value()}};
  AccessPath path = PlanAccess(*table_, conds);
  EXPECT_EQ(AccessPath::Kind::kIndexEq, path.kind);
  ASSERT_EQ(1u, table_->Match(conds).size());
}

TEST_F(DbTest, ContradictoryRangeWindowMatchesNothing) {
  table_->CreateIndex("uid");
  for (int i = 0; i < 10; ++i) {
    table_->Append({"u", i, ""});
  }
  // uid > 5 AND uid < 5: empty, and must not derive inverted iterators.
  EXPECT_TRUE(table_->Match({Condition{1, Condition::Op::kGt, Value(int64_t{5}), Value()},
                             Condition{1, Condition::Op::kLt, Value(int64_t{5}), Value()}})
                  .empty());
  // Touching bounds with one exclusive end: still empty.
  EXPECT_TRUE(table_->Match({Condition{1, Condition::Op::kGe, Value(int64_t{5}), Value()},
                             Condition{1, Condition::Op::kLt, Value(int64_t{5}), Value()}})
                  .empty());
  // Both ends inclusive on the same key: exactly that key.
  EXPECT_EQ(1u, table_->Match({Condition{1, Condition::Op::kGe, Value(int64_t{5}), Value()},
                               Condition{1, Condition::Op::kLe, Value(int64_t{5}), Value()}})
                    .size());
}

TEST_F(DbTest, FoldedIndexNotUsedForStringRange) {
  table_->CreateFoldedIndex("name");
  table_->Append({"Apple", 1, ""});
  table_->Append({"banana", 2, ""});
  table_->Append({"Cherry", 3, ""});
  // Folded keys are lowercased, which reorders them relative to the operand
  // ("Apple" < "B" but "apple" > "B"); the planner must fall back to a scan.
  std::vector<Condition> conds = {Condition{0, Condition::Op::kGe, Value("B"), Value()}};
  AccessPath path = PlanAccess(*table_, conds);
  EXPECT_EQ(AccessPath::Kind::kFullScan, path.kind);
  EXPECT_EQ(2u, table_->Match(conds).size());  // banana, Cherry
}

TEST_F(DbTest, SelectorRangeHelpers) {
  table_->CreateIndex("uid");
  for (int i = 0; i < 20; ++i) {
    table_->Append({"u" + std::to_string(i), i, ""});
  }
  EXPECT_EQ(3u, From(table_).WhereLt("uid", Value(int64_t{3})).Count());
  EXPECT_EQ(4u, From(table_).WhereLe("uid", Value(int64_t{3})).Count());
  EXPECT_EQ(3u, From(table_).WhereGt("uid", Value(int64_t{16})).Count());
  EXPECT_EQ(4u, From(table_).WhereGe("uid", Value(int64_t{16})).Count());
  EXPECT_EQ(5u, From(table_).WhereBetween("uid", Value(int64_t{3}), Value(int64_t{7})).Count());
  EXPECT_EQ(5, table_->stats().range_scans) << "each helper ran as a range scan";
}

// Regression: an update re-inserts the row's index entry at the end of its
// multimap equal range, so an equality probe used to return rows in
// index-insertion order while the prefix and scan paths return storage
// order.  Result order must not depend on the plan chosen.
TEST_F(DbTest, EqualityProbeResultOrderIsPlanIndependent) {
  Table* indexed = db_.CreateTable(TableSchema{
      "ordered", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  indexed->CreateIndex("k");
  Table* plain = db_.CreateTable(TableSchema{
      "plain", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  for (Table* t : {indexed, plain}) {
    t->Append({"dup", 0});
    t->Append({"dup", 1});
    t->Append({"dup", 2});
    // Rewriting row 0 moves its entry to the end of the "dup" equal range.
    t->Update(0, 1, Value(int64_t{9}));
  }
  std::vector<Condition> conds = {Condition{0, Condition::Op::kEq, Value("dup"), Value()}};
  std::vector<size_t> via_probe = indexed->Match(conds);
  std::vector<size_t> via_scan = plain->Match(conds);
  EXPECT_TRUE(std::is_sorted(via_probe.begin(), via_probe.end()));
  EXPECT_EQ(via_scan, via_probe);
}

TEST_F(DbTest, EqNoCaseOnIntColumnFallsBackToEquality) {
  table_->Append({"a", 42, ""});
  std::vector<Condition> conds = {
      Condition{1, Condition::Op::kEqNoCase, Value(int64_t{42}), Value()}};
  // Case only exists for strings; against an int column this must behave as
  // exact equality, not silently match nothing.
  ASSERT_EQ(1u, table_->Match(conds).size());
  EXPECT_TRUE(
      table_->Match({Condition{1, Condition::Op::kEqNoCase, Value(int64_t{7}), Value()}})
          .empty());
  // Same through a folded index: FoldCaseKey passes ints through unchanged.
  table_->CreateFoldedIndex("uid");
  ASSERT_EQ(1u, table_->Match(conds).size());
}

using DbDeathTest = DbTest;

TEST_F(DbDeathTest, SelectorUnknownColumnAbortsInAllBuilds) {
  // An unresolved column would silently drop the predicate (and index out of
  // bounds) in NDEBUG builds; Selector aborts instead, assert or no assert.
  EXPECT_DEATH(From(table_).WhereEq("no_such_column", Value(int64_t{1})), "no column");
  EXPECT_DEATH(From(table_).WhereGe("no_such_column", Value(int64_t{1})), "no column");
  EXPECT_DEATH(From(table_).Join(table_, "name", "no_such_column"), "no column");
  EXPECT_DEATH(From(table_).Join(table_, "no_such_column", "name"), "no column");
}

// Property: across a randomized mutation history, every Match — equality,
// folded equality, wildcard, folded wildcard — agrees with a brute-force
// scan that evaluates the predicates directly.
TEST_F(DbTest, RandomizedIndexConsistency) {
  Table* t = db_.CreateTable(TableSchema{
      "rand", {{"k", ColumnType::kString}, {"v", ColumnType::kInt}}});
  t->CreateIndex("k");
  t->CreateFoldedIndex("k");
  t->CreateIndex("v");

  uint64_t rng = 0x9e3779b97f4a7c15ull;  // deterministic: no seed plumbing
  auto next = [&rng](uint64_t bound) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return (rng >> 33) % bound;
  };
  auto random_key = [&next] {
    static const char* stems[] = {"Alpha", "beta", "GAMMA", "delta"};
    return std::string(stems[next(4)]) + std::to_string(next(25));
  };

  for (int step = 0; step < 2000; ++step) {
    switch (next(4)) {
      case 0:
        t->Append({random_key(), static_cast<int64_t>(next(50))});
        break;
      case 1: {
        if (t->SlotCount() == 0) break;
        size_t row = next(t->SlotCount());
        if (t->IsLive(row)) t->Update(row, 0, Value(random_key()));
        break;
      }
      case 2: {
        if (t->SlotCount() == 0) break;
        size_t row = next(t->SlotCount());
        if (t->IsLive(row)) {
          t->UpdateRow(row, {random_key(), static_cast<int64_t>(next(50))});
        }
        break;
      }
      default: {
        if (t->SlotCount() == 0) break;
        size_t row = next(t->SlotCount());
        if (t->IsLive(row)) t->Delete(row);
        break;
      }
    }
  }

  auto brute_force = [&](const std::vector<Condition>& conds) {
    std::vector<size_t> out;
    for (size_t row = 0; row < t->SlotCount(); ++row) {
      if (!t->IsLive(row)) continue;
      bool ok = true;
      for (const Condition& c : conds) {
        const Value& cell = t->Cell(row, c.column);
        switch (c.op) {
          case Condition::Op::kEq:
            ok = cell == c.operand;
            break;
          case Condition::Op::kEqNoCase:
            ok = EqualsIgnoreCase(cell.AsString(), c.operand.AsString());
            break;
          case Condition::Op::kWild:
            ok = WildcardMatch(c.operand.AsString(), cell.ToString());
            break;
          case Condition::Op::kWildNoCase:
            ok = WildcardMatch(c.operand.AsString(), cell.ToString(),
                               /*fold_case=*/true);
            break;
          case Condition::Op::kLt:
            ok = cell < c.operand;
            break;
          case Condition::Op::kLe:
            ok = !(c.operand < cell);
            break;
          case Condition::Op::kGt:
            ok = c.operand < cell;
            break;
          case Condition::Op::kGe:
            ok = !(cell < c.operand);
            break;
          case Condition::Op::kBetween:
            ok = !(cell < c.operand) && !(c.operand2 < cell);
            break;
          case Condition::Op::kNe:
            ok = cell != c.operand;
            break;
          case Condition::Op::kAnyBits:
            ok = cell.is_int() && c.operand.is_int() &&
                 (cell.AsInt() & c.operand.AsInt()) != 0;
            break;
          case Condition::Op::kIn:
            ok = std::binary_search(c.operand_set.begin(), c.operand_set.end(), cell);
            break;
        }
        if (!ok) break;
      }
      if (ok) out.push_back(row);
    }
    return out;
  };
  auto check = [&](std::vector<Condition> conds, const char* what) {
    std::vector<size_t> via_planner = t->Match(conds);
    std::sort(via_planner.begin(), via_planner.end());
    EXPECT_EQ(brute_force(conds), via_planner) << what;
  };

  for (const char* probe : {"Alpha3", "beta17", "GAMMA0", "delta24", "missing9"}) {
    check({Condition{0, Condition::Op::kEq, Value(probe)}}, "kEq");
    check({Condition{0, Condition::Op::kEqNoCase, Value(ToUpperCopy(probe))}}, "kEqNoCase");
  }
  for (const char* pattern : {"Alpha*", "beta1?", "GAMMA*", "*2", "de*a5"}) {
    check({Condition{0, Condition::Op::kWild, Value(pattern)}}, "kWild");
    check({Condition{0, Condition::Op::kWildNoCase, Value(pattern)}}, "kWildNoCase");
  }
  for (int64_t v : {int64_t{0}, int64_t{25}, int64_t{49}}) {
    check({Condition{1, Condition::Op::kEq, Value(v)},
           Condition{0, Condition::Op::kWildNoCase, Value("alpha*")}},
          "conjunction");
  }
  // Ordered-range predicates: int windows ride the v index, string bounds
  // ride the exact k index (the folded one is skipped for string ranges).
  // The mutation history above already left tombstones and duplicate keys.
  for (int64_t v : {int64_t{0}, int64_t{10}, int64_t{25}, int64_t{49}}) {
    check({Condition{1, Condition::Op::kLt, Value(v), Value()}}, "kLt");
    check({Condition{1, Condition::Op::kLe, Value(v), Value()}}, "kLe");
    check({Condition{1, Condition::Op::kGt, Value(v), Value()}}, "kGt");
    check({Condition{1, Condition::Op::kGe, Value(v), Value()}}, "kGe");
    check({Condition{1, Condition::Op::kBetween, Value(v), Value(v + 15)}}, "kBetween");
    check({Condition{1, Condition::Op::kGe, Value(v), Value()},
           Condition{1, Condition::Op::kLt, Value(v + 10), Value()}},
          "intersected window");
    check({Condition{1, Condition::Op::kGe, Value(v), Value()},
           Condition{0, Condition::Op::kWild, Value("beta*"), Value()}},
          "range plus residual");
  }
  for (const char* bound : {"Alpha", "beta2", "GAMMA10", "delta", "zzz"}) {
    check({Condition{0, Condition::Op::kGe, Value(bound), Value()}}, "string kGe");
    check({Condition{0, Condition::Op::kLt, Value(bound), Value()}}, "string kLt");
    check({Condition{0, Condition::Op::kBetween, Value("A"), Value(bound)}},
          "string kBetween");
  }
}

// --- cost-based join planning ---

// fact: 60 rows fanning out over 3 keys; dim: one row per key, with a
// unique indexed name column that makes a dim-side equality maximally
// selective.
class JoinPlanTest : public ::testing::Test {
 protected:
  JoinPlanTest() : clock_(1000), db_(&clock_) {
    fact_ = db_.CreateTable(TableSchema{
        "fact", {{"key", ColumnType::kInt}, {"tag", ColumnType::kString}}});
    dim_ = db_.CreateTable(TableSchema{
        "dim", {{"key", ColumnType::kInt}, {"name", ColumnType::kString}}});
    fact_->CreateIndex("key");
    dim_->CreateIndex("key");
    dim_->CreateIndex("name");
    for (int i = 0; i < 60; ++i) {
      fact_->Append({i % 3, "t" + std::to_string(i)});
    }
    for (int k = 0; k < 3; ++k) {
      dim_->Append({k, "name" + std::to_string(k)});
    }
  }

  using Tuples = std::vector<std::vector<size_t>>;
  static Tuples Collect(Selector& s) {
    Tuples out;
    s.Emit([&](const std::vector<size_t>& rows) { out.push_back(rows); });
    return out;
  }

  SimulatedClock clock_;
  Database db_;
  Table* fact_;
  Table* dim_;
};

TEST_F(JoinPlanTest, PlannedOrderStartsFromSelectiveStage) {
  // name is unique on dim (est 1 row) vs. 60 unconditioned fact rows: the
  // planner must start from the tail and probe fact in reverse.
  Selector s = From(fact_).Join(dim_, "key", "key").WhereEq("name", Value("name1"));
  EXPECT_EQ((std::vector<size_t>{1, 0}), s.PlannedJoinOrder());
  // Forcing naive execution restores the declared left-to-right order.
  EXPECT_EQ((std::vector<size_t>{0, 1}),
            From(fact_).Join(dim_, "key", "key").WhereEq("name", Value("name1"))
                .ForceNaiveJoin().PlannedJoinOrder());
  // Without the selective tail predicate, dim (3 rows) still beats fact (60).
  EXPECT_EQ((std::vector<size_t>{1, 0}),
            From(fact_).Join(dim_, "key", "key").PlannedJoinOrder());
}

TEST_F(JoinPlanTest, ReorderedJoinMatchesNaiveAndSavesWork) {
  auto run = [&](bool naive) {
    Selector s = From(fact_).Join(dim_, "key", "key").WhereEq("name", Value("name1"));
    if (naive) s.ForceNaiveJoin();
    return Collect(s);
  };
  const int64_t reorders_before = fact_->stats().join_reorders;
  const int64_t examined_before = fact_->stats().rows_examined;
  Tuples cost_based = run(/*naive=*/false);
  const int64_t cost_examined = fact_->stats().rows_examined - examined_before;
  EXPECT_EQ(reorders_before + 1, fact_->stats().join_reorders);

  const int64_t naive_before = fact_->stats().rows_examined;
  Tuples naive = run(/*naive=*/true);
  const int64_t naive_examined = fact_->stats().rows_examined - naive_before;

  // Identical tuple sequences (not just multisets): emission order is
  // restored to the left-to-right nested-loop order after reordering.
  EXPECT_EQ(naive, cost_based);
  ASSERT_EQ(20u, cost_based.size());
  // Reverse execution probes fact's key index for the single surviving dim
  // row instead of scanning all 60 fact rows first.
  EXPECT_LT(cost_examined, naive_examined);
}

TEST_F(JoinPlanTest, BatchedProbesCollapseDuplicateKeys) {
  // Five outer rows but only two distinct join keys: the batched probe
  // plans once, probes twice, and answers the other three from the cache.
  Table* small = db_.CreateTable(TableSchema{
      "small", {{"key", ColumnType::kInt}, {"w", ColumnType::kInt}}});
  for (int64_t k : {1, 1, 1, 2, 2}) small->Append({k, k * 10});

  const int64_t hits_before = fact_->stats().probe_cache_hits;
  const int64_t probes_before = fact_->stats().index_hits;
  Selector s = From(small).Join(fact_, "key", "key");
  Tuples got = Collect(s);
  EXPECT_EQ(5u * 20u, got.size());  // each key matches 20 fact rows
  EXPECT_EQ(hits_before + 3, fact_->stats().probe_cache_hits);
  EXPECT_EQ(probes_before + 2, fact_->stats().index_hits);

  // The naive path probes once per outer row and never hits the cache.
  Selector naive = From(small).Join(fact_, "key", "key");
  naive.ForceNaiveJoin();
  const int64_t naive_probes_before = fact_->stats().index_hits;
  EXPECT_EQ(got, Collect(naive));
  EXPECT_EQ(hits_before + 3, fact_->stats().probe_cache_hits);
  EXPECT_EQ(naive_probes_before + 5, fact_->stats().index_hits);
}

TEST_F(JoinPlanTest, ThreeStageChainReordersAroundSelectiveMiddle) {
  // wide(60) -> dim(3, unique name eq) -> fact(60): the middle stage is the
  // cheapest start; both neighbours are then probed in reverse/forward.
  Table* wide = db_.CreateTable(TableSchema{
      "wide", {{"key", ColumnType::kInt}, {"pad", ColumnType::kString}}});
  wide->CreateIndex("key");
  for (int i = 0; i < 60; ++i) wide->Append({i % 3, "p"});

  Selector s = From(wide)
                   .Join(dim_, "key", "key")
                   .WhereEq("name", Value("name2"))
                   .Join(fact_, "key", "key");
  EXPECT_EQ((std::vector<size_t>{1, 0, 2}), s.PlannedJoinOrder());
  Tuples cost_based = Collect(s);

  Selector naive = From(wide)
                       .Join(dim_, "key", "key")
                       .WhereEq("name", Value("name2"))
                       .Join(fact_, "key", "key");
  naive.ForceNaiveJoin();
  EXPECT_EQ(Collect(naive), cost_based);
  ASSERT_EQ(20u * 20u, cost_based.size());
}

TEST_F(JoinPlanTest, JoinSkipsTombstonedRows) {
  Table* small = db_.CreateTable(TableSchema{
      "small", {{"key", ColumnType::kInt}, {"w", ColumnType::kInt}}});
  std::vector<size_t> rows;
  for (int64_t k : {0, 1, 2}) rows.push_back(small->Append({k, k}));
  small->Delete(rows[1]);
  dim_->Delete(dim_->Match({Condition{0, Condition::Op::kEq, Value(int64_t{2}),
                                      Value()}})[0]);

  Selector s = From(small).Join(dim_, "key", "key");
  Tuples got = Collect(s);
  Selector naive = From(small).Join(dim_, "key", "key");
  naive.ForceNaiveJoin();
  EXPECT_EQ(Collect(naive), got);
  // Only small key 0 survives: key 1's outer row and key 2's dim row are
  // tombstoned.
  ASSERT_EQ(1u, got.size());
  EXPECT_EQ(rows[0], got[0][0]);
}

TEST_F(JoinPlanTest, RowsDedupIsOrderIndependent) {
  // Each fact key matches 20 dim-side... inverted: each dim row matches 20
  // fact rows, so base rows repeat; under reordering the repeats need not be
  // adjacent in probe order.  Rows() must still return each base row once,
  // in storage order.
  Selector s = From(dim_).Join(fact_, "key", "key");
  std::vector<size_t> rows = s.Rows();
  ASSERT_EQ(3u, rows.size());
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_EQ(rows.end(), std::adjacent_find(rows.begin(), rows.end()));
  Selector naive = From(dim_).Join(fact_, "key", "key");
  naive.ForceNaiveJoin();
  EXPECT_EQ(rows, naive.Rows());
}

TEST_F(JoinPlanTest, EstimateMatchRowsRanksPaths) {
  // Unconditioned: every live row.
  EXPECT_DOUBLE_EQ(60.0, EstimateMatchRows(*fact_, {}));
  // Equality on an indexed column: entries / distinct keys.
  EXPECT_DOUBLE_EQ(20.0, EstimateMatchRows(
      *fact_, {Condition{0, Condition::Op::kEq, Value(int64_t{1}), Value()}}));
  EXPECT_DOUBLE_EQ(1.0, EstimateMatchRows(
      *dim_, {Condition{1, Condition::Op::kEq, Value("name1"), Value()}}));
  // Unindexed residual: half the table.
  EXPECT_DOUBLE_EQ(30.0, EstimateMatchRows(
      *fact_, {Condition{1, Condition::Op::kEq, Value("t7"), Value()}}));
}

}  // namespace
}  // namespace moira
