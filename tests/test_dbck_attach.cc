// Tests for the dbck consistency checker (paper section 5.9.1) and the
// attach client (paper section 5.8.2).
#include "src/backup/dbck.h"
#include "src/client/attach.h"
#include "src/dcm/generators.h"
#include "src/hesiod/resolver.h"
#include "src/sim/population.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class DbckTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    logins_ = builder.active_logins();
  }

  // Findings whose description mentions `needle`.
  static int Count(const std::vector<DbckIssue>& issues, std::string_view table) {
    int n = 0;
    for (const DbckIssue& issue : issues) {
      if (issue.table == table) {
        ++n;
      }
    }
    return n;
  }

  std::vector<std::string> logins_;
};

TEST_F(DbckTest, FreshSiteIsConsistent) {
  DbConsistencyChecker dbck(mc_.get());
  std::vector<DbckIssue> issues = dbck.Check();
  for (const DbckIssue& issue : issues) {
    ADD_FAILURE() << issue.table << ": " << issue.description;
  }
}

TEST_F(DbckTest, DetectsDanglingMember) {
  mc_->members()->Append({Value(int64_t{999999}), Value("USER"), Value(int64_t{888888})});
  DbConsistencyChecker dbck(mc_.get());
  EXPECT_GE(Count(dbck.Check(), "members"), 1);
}

TEST_F(DbckTest, DetectsDanglingQuotaAndBadAllocation) {
  // Delete a user out from under their quota by raw table surgery (the kind
  // of damage a partial restore leaves).
  RowRef user = mc_->UserByLogin(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, user.code);
  mc_->users()->Delete(user.row);
  DbConsistencyChecker dbck(mc_.get());
  std::vector<DbckIssue> issues = dbck.Check();
  EXPECT_GE(Count(issues, "nfsquota"), 1);   // quota for missing user
  EXPECT_GE(Count(issues, "members"), 1);    // their group membership dangles
  EXPECT_GE(Count(issues, "filesys"), 1);    // their home filesystem's owner
}

TEST_F(DbckTest, DetectsBrokenPobox) {
  RowRef user = mc_->UserByLogin(logins_[1]);
  MoiraContext::SetCell(mc_->users(), user.row, "pop_id", Value(int64_t{424242}));
  DbConsistencyChecker dbck(mc_.get());
  EXPECT_GE(Count(dbck.Check(), "users"), 1);
}

TEST_F(DbckTest, DetectsAllocationDrift) {
  Table* phys = mc_->nfsphys();
  size_t row = 0;
  phys->Scan([&](size_t r, const Row&) {
    row = r;
    return false;
  });
  MoiraContext::SetCell(phys, row, "allocated",
                        Value(MoiraContext::IntCell(phys, row, "allocated") + 1000));
  DbConsistencyChecker dbck(mc_.get());
  EXPECT_EQ(1, Count(dbck.Check(), "nfsphys"));
}

TEST_F(DbckTest, RepairFixesTheRepairable) {
  // Inflict a spread of damage.
  RowRef user = mc_->UserByLogin(logins_[0]);
  mc_->users()->Delete(user.row);
  mc_->members()->Append({Value(int64_t{999999}), Value("USER"), Value(int64_t{888888})});
  RowRef broken_box = mc_->UserByLogin(logins_[1]);
  MoiraContext::SetCell(mc_->users(), broken_box.row, "pop_id", Value(int64_t{424242}));
  mc_->mcmap()->Append({Value(int64_t{777777}), Value(int64_t{666666})});
  DbConsistencyChecker dbck(mc_.get());
  int repairs = dbck.Repair();
  EXPECT_GT(repairs, 0);
  // Everything repairable is gone; what remains is flagged non-repairable
  // (the deleted user's filesystem ownership needs human judgement).
  for (const DbckIssue& issue : dbck.Check()) {
    EXPECT_FALSE(issue.repairable) << issue.table << ": " << issue.description;
  }
  // A second repair pass finds nothing to do.
  EXPECT_EQ(0, dbck.Repair());
}

TEST_F(DbckTest, RepairedPoboxIsNone) {
  RowRef user = mc_->UserByLogin(logins_[2]);
  MoiraContext::SetCell(mc_->users(), user.row, "pop_id", Value(int64_t{424242}));
  DbConsistencyChecker dbck(mc_.get());
  dbck.Repair();
  user = mc_->UserByLogin(logins_[2]);
  EXPECT_EQ("NONE", MoiraContext::StrCell(mc_->users(), user.row, "potype"));
}

class AttachTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    logins_ = builder.active_logins();
    GeneratorResult result;
    ASSERT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &result));
    for (const auto& [name, contents] : result.common.members()) {
      ASSERT_GE(hesiod_.LoadDb(contents), 0);
    }
    protocol_ = std::make_unique<HesiodProtocolServer>(&hesiod_);
    resolver_ = std::make_unique<HesiodResolver>(
        [this](std::string_view packet) { return protocol_->HandleQuery(packet); });
  }

  std::vector<std::string> logins_;
  HesiodServer hesiod_;
  std::unique_ptr<HesiodProtocolServer> protocol_;
  std::unique_ptr<HesiodResolver> resolver_;
};

TEST_F(AttachTest, ParseFilsysEntryFormats) {
  std::optional<FilsysEntry> nfs =
      ParseFilsysEntry("NFS /mit/aab charon w /mit/aab");
  ASSERT_TRUE(nfs.has_value());
  EXPECT_EQ("NFS", nfs->type);
  EXPECT_EQ("/mit/aab", nfs->remote);
  EXPECT_EQ("charon", nfs->server);
  EXPECT_EQ("w", nfs->access);
  EXPECT_EQ("/mit/aab", nfs->mount);
  EXPECT_TRUE(ParseFilsysEntry("RVD ade helen r /mnt/ade").has_value());
  EXPECT_FALSE(ParseFilsysEntry("AFS /x y r /z").has_value());
  EXPECT_FALSE(ParseFilsysEntry("NFS missing fields").has_value());
}

TEST_F(AttachTest, AttachesHomeLockerViaHesiod) {
  AttachClient attach(resolver_.get());
  FilsysEntry entry;
  ASSERT_EQ(MR_SUCCESS, attach.Attach(logins_[0], &entry));
  EXPECT_EQ("NFS", entry.type);
  EXPECT_EQ("/mit/" + logins_[0], entry.mount);
  EXPECT_EQ("w", entry.access);
  EXPECT_EQ(1u, attach.attach_count());
  EXPECT_NE(nullptr, attach.Attached(logins_[0]));
}

TEST_F(AttachTest, DoubleAttachAndMountConflict) {
  AttachClient attach(resolver_.get());
  ASSERT_EQ(MR_SUCCESS, attach.Attach(logins_[0]));
  EXPECT_EQ(MR_IN_USE, attach.Attach(logins_[0]));
  // A different locker at a different mount point is fine.
  EXPECT_EQ(MR_SUCCESS, attach.Attach(logins_[1]));
  EXPECT_EQ(2u, attach.attach_count());
}

TEST_F(AttachTest, UnknownLockerFails) {
  AttachClient attach(resolver_.get());
  EXPECT_EQ(MR_FILESYS, attach.Attach("no-such-locker"));
}

TEST_F(AttachTest, DetachFreesMountPoint) {
  AttachClient attach(resolver_.get());
  ASSERT_EQ(MR_SUCCESS, attach.Attach(logins_[0]));
  ASSERT_EQ(MR_SUCCESS, attach.Detach(logins_[0]));
  EXPECT_EQ(MR_NO_MATCH, attach.Detach(logins_[0]));
  EXPECT_EQ(MR_SUCCESS, attach.Attach(logins_[0]));
}

}  // namespace
}  // namespace moira
