// Tests for the servers / serverhosts queries driving the DCM (paper
// section 7.0.4).
#include "tests/test_env.h"

namespace moira {
namespace {

class ServerQueriesTest : public MoiraEnv {
 protected:
  void SetUp() override {
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"suomi.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"kiwi.mit.edu", "VAX"}));
    ASSERT_EQ(MR_SUCCESS,
              RunRoot("add_server_info", {"hesiod", "360", "/tmp/hesiod.out", "hesiod.sh",
                                          "REPLICAT", "1", "NONE", "NONE"}));
  }
};

TEST_F(ServerQueriesTest, AddUppercasesAndValidates) {
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"HESIOD"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("HESIOD", tuples[0][0]);
  EXPECT_EQ("360", tuples[0][1]);
  EXPECT_EQ("/tmp/hesiod.out", tuples[0][2]);
  EXPECT_EQ("REPLICAT", tuples[0][6]);
  // Lowercase lookup also works (names are upper-cased before comparing).
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"hesiod"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_server_info", {"HESIOD", "1", "", "", "UNIQUE", "1",
                                                   "NONE", "NONE"}));
  EXPECT_EQ(MR_TYPE, RunRoot("add_server_info", {"NEW", "1", "", "", "SOMETIMES", "1",
                                                 "NONE", "NONE"}));
  EXPECT_EQ(MR_ACE, RunRoot("add_server_info", {"NEW", "1", "", "", "UNIQUE", "1", "USER",
                                                "ghost"}));
}

TEST_F(ServerQueriesTest, UpdateAndResetError) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_info",
                                {"HESIOD", "720", "/tmp/h2.out", "h2.sh", "REPLICAT", "0",
                                 "NONE", "NONE"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"HESIOD"}, &tuples));
  EXPECT_EQ("720", tuples[0][1]);
  EXPECT_EQ("0", tuples[0][7]);  // disabled
  // DCM-internal flags, including a hard error.
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_server_internal_flags",
                                {"HESIOD", "1000", "2000", "0", "5", "boom"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"HESIOD"}, &tuples));
  EXPECT_EQ("1000", tuples[0][4]);
  EXPECT_EQ("2000", tuples[0][5]);
  EXPECT_EQ("5", tuples[0][9]);
  EXPECT_EQ("boom", tuples[0][10]);
  // reset_server_error clears harderror and pulls dfcheck back to dfgen.
  ASSERT_EQ(MR_SUCCESS, RunRoot("reset_server_error", {"HESIOD"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"HESIOD"}, &tuples));
  EXPECT_EQ("0", tuples[0][9]);
  EXPECT_EQ("1000", tuples[0][5]);
}

TEST_F(ServerQueriesTest, QualifiedGetServer) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info", {"NFS", "720", "", "", "UNIQUE", "0",
                                                    "NONE", "NONE"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("qualified_get_server", {"TRUE", "DONTCARE", "DONTCARE"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("HESIOD", tuples[0][0]);
  EXPECT_EQ(MR_TYPE, RunRoot("qualified_get_server", {"MAYBE", "TRUE", "TRUE"}));
}

TEST_F(ServerQueriesTest, ServerHostLifecycle) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "7", "9", "extra"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_server_host_info",
                               {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  EXPECT_EQ(MR_SERVICE, RunRoot("add_server_host_info",
                                {"GHOST", "suomi.mit.edu", "1", "0", "0", ""}));
  EXPECT_EQ(MR_MACHINE, RunRoot("add_server_host_info",
                                {"HESIOD", "ghost.mit.edu", "1", "0", "0", ""}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"HESIOD", "*"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("SUOMI.MIT.EDU", tuples[0][1]);
  EXPECT_EQ("7", tuples[0][10]);
  EXPECT_EQ("9", tuples[0][11]);
  EXPECT_EQ("extra", tuples[0][12]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "8", "9", "e2"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"HESIOD", "SUOMI*"}, &tuples));
  EXPECT_EQ("8", tuples[0][10]);
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_server_host_info", {"HESIOD", "suomi.mit.edu"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("delete_server_host_info", {"HESIOD", "suomi.mit.edu"}));
}

TEST_F(ServerQueriesTest, ServerHostInternalFlagsAndOverride) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("set_server_host_internal",
                    {"HESIOD", "suomi.mit.edu", "0", "1", "0", "0", "", "111", "222"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"HESIOD", "*"}, &tuples));
  EXPECT_EQ("1", tuples[0][4]);   // success
  EXPECT_EQ("111", tuples[0][8]);  // lasttry
  EXPECT_EQ("222", tuples[0][9]);  // lastsuccess
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_server_host_override", {"HESIOD", "suomi.mit.edu"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"HESIOD", "*"}, &tuples));
  EXPECT_EQ("1", tuples[0][3]);  // override
  ASSERT_EQ(MR_SUCCESS, RunRoot("reset_server_host_error", {"HESIOD", "suomi.mit.edu"}));
}

TEST_F(ServerQueriesTest, UpdateBlockedWhileInProgress) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("set_server_host_internal",
                    {"HESIOD", "suomi.mit.edu", "0", "0", "1", "0", "", "0", "0"}));
  EXPECT_EQ(MR_IN_USE, RunRoot("update_server_host_info",
                               {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_server_host_info", {"HESIOD", "suomi.mit.edu"}));
}

TEST_F(ServerQueriesTest, DeleteServerBlockedByHosts) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_server_info", {"HESIOD"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_server_host_info", {"HESIOD", "suomi.mit.edu"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_server_info", {"HESIOD"}));
  EXPECT_EQ(MR_SERVICE, RunRoot("delete_server_info", {"HESIOD"}));
}

TEST_F(ServerQueriesTest, GetServerLocationsIsWorldReadable) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "kiwi.mit.edu", "1", "0", "0", ""}));
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, Run("", "get_server_locations", {"HES*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
}

TEST_F(ServerQueriesTest, QualifiedGetServerHost) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "suomi.mit.edu", "1", "0", "0", ""}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"HESIOD", "kiwi.mit.edu", "0", "0", "0", ""}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("qualified_get_server_host",
                    {"HESIOD", "TRUE", "DONTCARE", "DONTCARE", "DONTCARE", "DONTCARE"},
                    &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("SUOMI.MIT.EDU", tuples[0][1]);
}

TEST_F(ServerQueriesTest, ServiceAceHolderMayManage) {
  AddActiveUser("svcmgr", 200);
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info", {"MINE", "60", "/t", "s", "UNIQUE", "1",
                                                    "USER", "svcmgr"}));
  EXPECT_EQ(MR_SUCCESS, Run("svcmgr", "get_server_info", {"MINE"}));
  EXPECT_EQ(MR_SUCCESS, Run("svcmgr", "add_server_host_info",
                            {"MINE", "suomi.mit.edu", "1", "0", "0", ""}));
  EXPECT_EQ(MR_SUCCESS, Run("svcmgr", "set_server_host_override",
                            {"MINE", "suomi.mit.edu"}));
  AddActiveUser("intruder", 201);
  EXPECT_EQ(MR_PERM, Run("intruder", "get_server_info", {"MINE"}));
  EXPECT_EQ(MR_PERM, Run("intruder", "update_server_info",
                         {"MINE", "1", "", "", "UNIQUE", "1", "NONE", "NONE"}));
}

}  // namespace
}  // namespace moira
