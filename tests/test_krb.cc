// Tests for the crypt() substitute, the PCBC block cipher, and the simulated
// Kerberos realm (paper sections 5.9.2 and 5.10).
#include <gtest/gtest.h>

#include "src/comerr/moira_errors.h"
#include "src/common/clock.h"
#include "src/krb/block_cipher.h"
#include "src/krb/crypt.h"
#include "src/krb/kerberos.h"

namespace moira {
namespace {

TEST(Crypt, OutputFormat) {
  std::string out = Crypt("secret", "ab");
  ASSERT_EQ(13u, out.size());
  EXPECT_EQ('a', out[0]);
  EXPECT_EQ('b', out[1]);
  for (char c : out) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '/') << c;
  }
}

TEST(Crypt, DeterministicAndSaltSensitive) {
  EXPECT_EQ(Crypt("secret", "ab"), Crypt("secret", "ab"));
  EXPECT_NE(Crypt("secret", "ab"), Crypt("secret", "cd"));
  EXPECT_NE(Crypt("secret", "ab"), Crypt("secret2", "ab"));
}

TEST(Crypt, ShortSaltDefaults) {
  std::string out = Crypt("x", "");
  EXPECT_EQ('.', out[0]);
  EXPECT_EQ('.', out[1]);
}

TEST(HashMitId, UsesNameInitialsAsSalt) {
  // The paper: last seven digits hashed, salted with the first letters of
  // the first and last names.
  std::string hash = HashMitId("123-45-6789", "Harmon", "Fowler");
  EXPECT_EQ('H', hash[0]);
  EXPECT_EQ('F', hash[1]);
  // Hyphens are stripped; only the last 7 digits matter.
  EXPECT_EQ(hash, HashMitId("123456789", "Harmon", "Fowler"));
  EXPECT_EQ(hash, HashMitId("993456789", "Harmon", "Fowler"));
  EXPECT_NE(hash, HashMitId("123456788", "Harmon", "Fowler"));
}

TEST(BlockCipher, RoundTripsVariousLengths) {
  uint64_t key = DeriveBlockKey("some key");
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    std::string plain(len, '\0');
    for (size_t i = 0; i < len; ++i) {
      plain[i] = static_cast<char>(i * 31 + 7);
    }
    std::string cipher = PcbcEncrypt(key, plain);
    auto back = PcbcDecrypt(key, cipher);
    ASSERT_TRUE(back.has_value()) << len;
    EXPECT_EQ(plain, *back) << len;
  }
}

TEST(BlockCipher, WrongKeyGarbles) {
  uint64_t key = DeriveBlockKey("right");
  std::string cipher = PcbcEncrypt(key, "attack at dawn, the usual spot");
  auto back = PcbcDecrypt(DeriveBlockKey("wrong"), cipher);
  // Either framing breaks (nullopt) or the plaintext is garbage.
  if (back.has_value()) {
    EXPECT_NE("attack at dawn, the usual spot", *back);
  }
}

TEST(BlockCipher, TamperPropagates) {
  uint64_t key = DeriveBlockKey("k");
  std::string plain = "0123456789abcdef0123456789abcdef";
  std::string cipher = PcbcEncrypt(key, plain);
  cipher[4] ^= 0x40;  // flip a bit in the first block (the length header)
  auto back = PcbcDecrypt(key, cipher);
  if (back.has_value()) {
    EXPECT_NE(plain, *back);
  }
}

TEST(BlockCipher, CiphertextDiffersFromPlaintext) {
  uint64_t key = DeriveBlockKey("k");
  std::string plain = "plaintext plaintext plaintext";
  std::string cipher = PcbcEncrypt(key, plain);
  EXPECT_EQ(std::string::npos, cipher.find("plaintext"));
}

TEST(BlockCipher, RejectsBadFraming) {
  EXPECT_FALSE(PcbcDecrypt(1, "short").has_value());
  EXPECT_FALSE(PcbcDecrypt(1, std::string(12, 'x')).has_value());
}

class KerberosTest : public ::testing::Test {
 protected:
  KerberosTest() : clock_(1000000), realm_(&clock_) {
    realm_.AddPrincipal("jrandom", "hunter2");
    service_key_ = realm_.RegisterService("moira");
  }

  SimulatedClock clock_;
  KerberosRealm realm_;
  uint64_t service_key_;
};

TEST_F(KerberosTest, PrincipalLifecycle) {
  EXPECT_TRUE(realm_.HasPrincipal("jrandom"));
  EXPECT_EQ(MR_EXISTS, realm_.AddPrincipal("jrandom", "x"));
  EXPECT_EQ(MR_SUCCESS, realm_.SetPassword("jrandom", "new"));
  EXPECT_EQ(MR_KRB_NO_PRINC, realm_.SetPassword("nobody", "x"));
  EXPECT_EQ(MR_SUCCESS, realm_.DeletePrincipal("jrandom"));
  EXPECT_EQ(MR_KRB_NO_PRINC, realm_.DeletePrincipal("jrandom"));
}

TEST_F(KerberosTest, InitialTicketsRequireCorrectPassword) {
  Ticket ticket;
  EXPECT_EQ(MR_KRB_BAD_PASSWORD,
            realm_.GetInitialTickets("jrandom", "wrong", "moira", &ticket));
  EXPECT_EQ(MR_KRB_NO_PRINC, realm_.GetInitialTickets("ghost", "x", "moira", &ticket));
  EXPECT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  EXPECT_EQ("jrandom", ticket.client);
  EXPECT_EQ("moira", ticket.service);
  EXPECT_FALSE(ticket.sealed.empty());
}

TEST_F(KerberosTest, AuthenticatorVerifies) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  ServiceVerifier verifier("moira", service_key_, &clock_);
  VerifiedIdentity identity;
  EXPECT_EQ(MR_SUCCESS, verifier.Verify(realm_.MakeAuthenticator(ticket), &identity));
  EXPECT_EQ("jrandom", identity.principal);
  EXPECT_EQ(ticket.session_key, identity.session_key);
}

TEST_F(KerberosTest, ReplayDetected) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  ServiceVerifier verifier("moira", service_key_, &clock_);
  std::string authenticator = realm_.MakeAuthenticator(ticket);
  VerifiedIdentity identity;
  EXPECT_EQ(MR_SUCCESS, verifier.Verify(authenticator, &identity));
  // "safe from ... replay of transactions" (paper section 4).
  EXPECT_EQ(MR_KRB_REPLAY, verifier.Verify(authenticator, &identity));
}

TEST_F(KerberosTest, FreshAuthenticatorsKeepWorking) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  ServiceVerifier verifier("moira", service_key_, &clock_);
  VerifiedIdentity identity;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(MR_SUCCESS, verifier.Verify(realm_.MakeAuthenticator(ticket), &identity));
  }
}

TEST_F(KerberosTest, ExpiredTicketRejected) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  ServiceVerifier verifier("moira", service_key_, &clock_);
  clock_.Advance(KerberosRealm::kDefaultLifetime + 1);
  VerifiedIdentity identity;
  EXPECT_EQ(MR_KRB_TKT_EXPIRED, verifier.Verify(realm_.MakeAuthenticator(ticket), &identity));
}

TEST_F(KerberosTest, SkewedAuthenticatorRejected) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  std::string authenticator = realm_.MakeAuthenticator(ticket);
  ServiceVerifier verifier("moira", service_key_, &clock_);
  clock_.Advance(KerberosRealm::kMaxSkew + 60);  // authenticator is now stale
  VerifiedIdentity identity;
  EXPECT_EQ(MR_KRB_TKT_EXPIRED, verifier.Verify(authenticator, &identity));
}

TEST_F(KerberosTest, WrongServiceCannotOpenTicket) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  uint64_t other_key = realm_.RegisterService("other");
  ServiceVerifier verifier("other", other_key, &clock_);
  VerifiedIdentity identity;
  EXPECT_EQ(MR_BAD_AUTH, verifier.Verify(realm_.MakeAuthenticator(ticket), &identity));
}

TEST_F(KerberosTest, GarbageAuthenticatorRejected) {
  ServiceVerifier verifier("moira", service_key_, &clock_);
  VerifiedIdentity identity;
  EXPECT_EQ(MR_BAD_AUTH, verifier.Verify("not an authenticator", &identity));
  EXPECT_EQ(MR_BAD_AUTH, verifier.Verify("", &identity));
}

TEST_F(KerberosTest, ReplayCacheExpires) {
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS, realm_.GetInitialTickets("jrandom", "hunter2", "moira", &ticket));
  ServiceVerifier verifier("moira", service_key_, &clock_);
  VerifiedIdentity identity;
  ASSERT_EQ(MR_SUCCESS, verifier.Verify(realm_.MakeAuthenticator(ticket), &identity));
  EXPECT_EQ(1u, verifier.replay_cache_size());
  clock_.Advance(KerberosRealm::kMaxSkew + 1);
  verifier.ExpireReplayCache();
  EXPECT_EQ(0u, verifier.replay_cache_size());
}

TEST(PackField, RoundTrips) {
  std::string buffer;
  PackField(&buffer, "hello");
  PackField(&buffer, "");
  PackField(&buffer, std::string("\0\x01binary", 8));
  std::string_view view(buffer);
  std::string a;
  std::string b;
  std::string c;
  ASSERT_TRUE(UnpackField(&view, &a));
  ASSERT_TRUE(UnpackField(&view, &b));
  ASSERT_TRUE(UnpackField(&view, &c));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ("hello", a);
  EXPECT_EQ("", b);
  EXPECT_EQ(std::string("\0\x01binary", 8), c);
}

TEST(PackField, TruncationFails) {
  std::string buffer;
  PackField(&buffer, "hello");
  std::string_view view = std::string_view(buffer).substr(0, buffer.size() - 1);
  std::string out;
  EXPECT_FALSE(UnpackField(&view, &out));
}

}  // namespace
}  // namespace moira
