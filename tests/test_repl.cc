// Tests for the journal-shipping replication layer (src/repl): journal
// sequence/durability semantics, replica catch-up and snapshot fallback,
// client read routing with read-your-writes tokens, failover promotion, and
// convergence under seeded faults.
#include <filesystem>
#include <fstream>
#include <memory>

#include "src/backup/backup.h"
#include "src/client/client.h"
#include "src/common/random.h"
#include "src/repl/repl_fault.h"
#include "src/repl/replica.h"
#include "src/repl/router.h"
#include "src/server/server.h"
#include "src/update/sim_host.h"
#include "tests/test_env.h"

namespace moira {
namespace {

namespace fs = std::filesystem;

fs::path TempDir(const char* name) {
  fs::path dir = fs::temp_directory_path() / "moira-test" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- Journal sequence, durability, and torn-write handling ---

TEST(JournalReplTest, SequenceNumbersAreMonotone) {
  Journal journal;
  EXPECT_EQ(1u, journal.Append(JournalEntry{0, 10, "p", "c", "q", {}}));
  EXPECT_EQ(2u, journal.Append(JournalEntry{0, 11, "p", "c", "q", {}}));
  EXPECT_EQ(2u, journal.last_seq());
  EXPECT_EQ(1u, journal.first_seq());
  EXPECT_EQ(0u, journal.base_seq());
}

TEST(JournalReplTest, EntriesFromSeqAndTruncation) {
  Journal journal;
  for (int i = 0; i < 10; ++i) {
    journal.Append(JournalEntry{0, 100 + i, "p", "c", "q" + std::to_string(i), {}});
  }
  EXPECT_EQ(4u, journal.EntriesFromSeq(7).size());
  EXPECT_EQ(2u, journal.EntriesFromSeq(7, 2).size());
  EXPECT_EQ("q6", journal.EntriesFromSeq(7)[0].query);
  // Prune the first six entries, as after a nightly backup.
  EXPECT_EQ(6u, journal.TruncateThrough(6));
  EXPECT_EQ(6u, journal.base_seq());
  EXPECT_EQ(7u, journal.first_seq());
  EXPECT_EQ(10u, journal.last_seq());
  // The retained tail is still streamable; the pruned range is not.
  EXPECT_EQ(4u, journal.EntriesFromSeq(7).size());
  // Appends continue the sequence.
  EXPECT_EQ(11u, journal.Append(JournalEntry{0, 200, "p", "c", "q", {}}));
}

TEST(JournalReplTest, ResetSequenceContinuesNumbering) {
  Journal journal;
  journal.ResetSequence(41);
  EXPECT_EQ(41u, journal.Append(JournalEntry{0, 10, "p", "c", "q", {}}));
  EXPECT_EQ(42u, journal.Append(JournalEntry{0, 11, "p", "c", "q", {}}));
}

TEST(JournalReplTest, AppendIsDurableBeforeAck) {
  fs::path dir = TempDir("repl-durable");
  std::string path = (dir / "journal").string();
  Journal journal;
  journal.SetFile(path);
  journal.Append(JournalEntry{0, 123, "p", "c", "q", {"a"}});
  // The stream is still open; the line must already be flushed to the file.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::optional<JournalEntry> entry = JournalEntry::FromLine(line);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(1u, entry->seq);
  EXPECT_EQ("q", entry->query);
}

TEST(JournalReplTest, TornTrailingLineSkippedOnReload) {
  fs::path dir = TempDir("repl-torn");
  std::string path = (dir / "journal").string();
  {
    Journal journal;
    journal.SetFile(path);
    journal.Append(JournalEntry{0, 100, "p", "c", "q1", {"x"}});
    journal.Append(JournalEntry{0, 101, "p", "c", "q2", {"y"}});
  }
  {
    // A crash mid-append leaves a torn final line.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "3:10";
  }
  Journal reloaded;
  EXPECT_EQ(2, reloaded.LoadFile(path));
  EXPECT_EQ(1, reloaded.corrupt_lines_skipped());
  ASSERT_EQ(2u, reloaded.entries().size());
  EXPECT_EQ(2u, reloaded.last_seq());
  EXPECT_EQ("q2", reloaded.entries()[1].query);
}

TEST(JournalReplTest, LineFuzzRoundTrip) {
  // Seeded fuzz over ToLine/FromLine: every generated entry survives the
  // round trip, whatever bytes land in its fields.
  SplitMix64 rng(0x5ca1ab1e);
  auto random_string = [&rng] {
    std::string s;
    const size_t len = rng.Below(12);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>(rng.Below(256));
    }
    return s;
  };
  for (int iter = 0; iter < 300; ++iter) {
    JournalEntry entry;
    entry.seq = rng.Below(1u << 30);
    entry.epoch = rng.Below(1u << 30);
    entry.when = static_cast<UnixTime>(rng.Below(1u << 30));
    entry.principal = random_string();
    entry.client = random_string();
    entry.tag = random_string();
    entry.query = random_string();
    const size_t argc = rng.Below(4);
    for (size_t i = 0; i < argc; ++i) {
      entry.args.push_back(random_string());
    }
    std::string line = entry.ToLine();
    ASSERT_EQ('\n', line.back());
    std::optional<JournalEntry> back = JournalEntry::FromLine(line);
    ASSERT_TRUE(back.has_value()) << "iter " << iter;
    EXPECT_EQ(entry.seq, back->seq) << "iter " << iter;
    EXPECT_EQ(entry.epoch, back->epoch) << "iter " << iter;
    EXPECT_EQ(entry.when, back->when) << "iter " << iter;
    EXPECT_EQ(entry.principal, back->principal) << "iter " << iter;
    EXPECT_EQ(entry.client, back->client) << "iter " << iter;
    EXPECT_EQ(entry.tag, back->tag) << "iter " << iter;
    EXPECT_EQ(entry.query, back->query) << "iter " << iter;
    EXPECT_EQ(entry.args, back->args) << "iter " << iter;
  }
  // Garbage-line pass: random bytes never crash the parser, and anything it
  // does accept is canonically stable (reserialize → reparse → identical),
  // so a replica replaying a corrupted stream cannot drift from a primary
  // that journalled the same line.
  for (int iter = 0; iter < 300; ++iter) {
    std::string garbage;
    const size_t len = rng.Below(40);
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.Below(256));
    }
    std::optional<JournalEntry> parsed = JournalEntry::FromLine(garbage);
    if (!parsed.has_value()) {
      continue;
    }
    std::optional<JournalEntry> again = JournalEntry::FromLine(parsed->ToLine());
    ASSERT_TRUE(again.has_value()) << "iter " << iter;
    EXPECT_EQ(parsed->ToLine(), again->ToLine()) << "iter " << iter;
  }
}

TEST(JournalReplTest, LoadFileRestoresBaseSeq) {
  // A journal file that starts past seq 1 was truncated/rotated before it
  // was written.  Reloading it must restore base_seq, or a restarted primary
  // passes the truncation check and streams a gapped range to replicas
  // instead of MR_REPL_TRUNCATED (see HandleReplFetch).
  fs::path dir = TempDir("repl-baseseq");
  std::string path = (dir / "journal").string();
  {
    std::ofstream out(path, std::ios::binary);
    for (uint64_t seq = 5; seq <= 8; ++seq) {
      out << JournalEntry{seq, 100, "p", "c", "q", {}}.ToLine();
    }
  }
  Journal reloaded;
  ASSERT_EQ(4, reloaded.LoadFile(path));
  EXPECT_EQ(4u, reloaded.base_seq());
  EXPECT_EQ(5u, reloaded.first_seq());
  EXPECT_EQ(8u, reloaded.last_seq());
  // A replica asking for the missing prefix hits the truncation guard.
  EXPECT_TRUE(1u <= reloaded.base_seq());
}

// --- Replication over the wire ---

class ReplTest : public MoiraEnv {
 protected:
  void SetUp() override {
    primary_ = std::make_unique<MoiraServer>(mc_.get(), realm_.get());
    realm_->AddPrincipal("root", "rootpw");
    realm_->AddPrincipal("jrandom", "hunter2");
    // Seed the test user through the wire: replicas replay history from the
    // journal, so every mutation since the seeded defaults must go through
    // the server to be visible to them.
    MrClient admin = MakeAdmin();
    ASSERT_EQ(MR_SUCCESS,
              admin.Query("add_user",
                          {"jrandom", "100", "/bin/csh", "Lastjrandom", "Firstjrandom",
                           "Q", "1", "hashjrandom", "G"},
                          [](Tuple) {}));
  }

  MrClient::Connector PrimaryConnector() {
    return [this] { return std::make_unique<LoopbackChannel>(primary_.get()); };
  }

  static MrClient::Connector HandlerConnector(MessageHandler* handler) {
    return [handler] { return std::make_unique<LoopbackChannel>(handler); };
  }

  std::unique_ptr<ReplicaServer> MakeReplica(const std::string& name,
                                             bool catch_up_on_read = true) {
    ReplicaOptions options;
    options.name = name;
    options.catch_up_on_read = catch_up_on_read;
    auto replica = std::make_unique<ReplicaServer>(realm_.get(), options);
    replica->SetPrimaryLink(PrimaryConnector(), "root", "rootpw");
    return replica;
  }

  // A root-authenticated client to the primary.
  MrClient MakeAdmin() {
    MrClient client(PrimaryConnector());
    client.SetKerberosIdentity(realm_.get(), "root", "rootpw");
    EXPECT_EQ(MR_SUCCESS, client.Connect());
    EXPECT_EQ(MR_SUCCESS, client.Auth("ops"));
    return client;
  }

  // An unauthenticated read client with a retry policy (so it transparently
  // reconnects after the target replica crashes and reboots).
  std::unique_ptr<MrClient> MakeReadClient(MessageHandler* handler) {
    auto client = std::make_unique<MrClient>(HandlerConnector(handler));
    RetryPolicy policy;
    policy.max_attempts = 2;
    policy.initial_backoff = 1;
    client->SetRetryPolicy(policy, &clock_);
    client->set_sleep_fn([this](UnixTime s) { clock_.Advance(s); });
    client->Connect();
    return client;
  }

  std::string PrimaryDump() { return BackupManager::DumpToString(*db_); }

  std::unique_ptr<MoiraServer> primary_;
};

TEST_F(ReplTest, CatchUpAppliesJournalAndConverges) {
  MrClient admin = MakeAdmin();
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"rep1.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS,
            admin.Query("update_user_shell", {"jrandom", "/bin/repl"}, [](Tuple) {}));
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(primary_->journal().last_seq(), replica->applied_seq());
  EXPECT_EQ(0u, replica->stats().apply_failures);
  EXPECT_EQ(0u, replica->stats().snapshot_loads);
  // Byte-identical state: same rows, same modby/modwith/modtime stamps.
  EXPECT_EQ(PrimaryDump(), BackupManager::DumpToString(replica->db()));
  // The replica serves the read.
  std::unique_ptr<MrClient> reader = MakeReadClient(replica.get());
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, reader->Query("get_machine", {"REP1.MIT.EDU"}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());
  // The primary saw the replica and reports zero lag.
  ASSERT_EQ(1u, primary_->replicas().count("r1"));
  EXPECT_EQ(replica->applied_seq(), primary_->replicas().at("r1").applied_seq);
}

TEST_F(ReplTest, ReplicaRefusesMutations) {
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  std::unique_ptr<MrClient> client = MakeReadClient(replica.get());
  EXPECT_EQ(MR_REPL_READONLY,
            client->Query("add_machine", {"nope.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(MR_REPL_READONLY,
            client->QueryAtSeq(0, "add_machine", {"nope.mit.edu", "VAX"}, [](Tuple) {}));
}

TEST_F(ReplTest, CatchUpAfterDisconnectResumesFromAppliedSeq) {
  MrClient admin = MakeAdmin();
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"a.mit.edu", "VAX"}, [](Tuple) {}));
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  const uint64_t applied_before = replica->applied_seq();
  // The link drops; the primary keeps moving.
  replica->DropLink();
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"b.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"c.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(applied_before + 2, replica->applied_seq());
  EXPECT_EQ(0u, replica->stats().snapshot_loads);  // incremental, not snapshot
  EXPECT_EQ(PrimaryDump(), BackupManager::DumpToString(replica->db()));
}

TEST_F(ReplTest, SnapshotFallbackAfterJournalTruncation) {
  MrClient admin = MakeAdmin();
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine",
                                      {"t" + std::to_string(i) + ".mit.edu", "VAX"},
                                      [](Tuple) {}));
  }
  // The journal prefix is pruned (post-backup) before the replica ever
  // connects: incremental fetch is impossible.
  primary_->journal().TruncateThrough(3);
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(1u, replica->stats().snapshot_loads);
  EXPECT_EQ(primary_->journal().last_seq(), replica->applied_seq());
  EXPECT_EQ(PrimaryDump(), BackupManager::DumpToString(replica->db()));
  // Incremental fetching resumes on top of the snapshot.
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"after.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(1u, replica->stats().snapshot_loads);
  EXPECT_EQ(PrimaryDump(), BackupManager::DumpToString(replica->db()));
}

TEST_F(ReplTest, RouterGivesReadYourWrites) {
  auto primary_client = std::make_unique<MrClient>(PrimaryConnector());
  primary_client->SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, primary_client->Connect());
  ASSERT_EQ(MR_SUCCESS, primary_client->Auth("ops"));
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  ReplicatedClient router(std::move(primary_client));
  router.AddReplica(MakeReadClient(replica.get()));
  // Write through the router: the token becomes the assigned journal seq.
  ASSERT_EQ(MR_SUCCESS, router.Query("add_machine", {"ryw.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(primary_->journal().last_seq(), router.write_token());
  // Immediately read it back.  The replica is behind but holds the link, so
  // it catches up on demand ("waits briefly") and serves the read itself.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, router.Query("get_machine", {"RYW.MIT.EDU"}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ(1u, router.stats().replica_reads);
  EXPECT_EQ(0u, router.stats().redirects);
  EXPECT_GE(replica->stats().read_catch_ups, 1u);
}

TEST_F(ReplTest, BehindReplicaRedirectsToPrimary) {
  auto primary_client = std::make_unique<MrClient>(PrimaryConnector());
  primary_client->SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, primary_client->Connect());
  ASSERT_EQ(MR_SUCCESS, primary_client->Auth("ops"));
  // This replica cannot catch up on demand: behind tokens redirect.
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1", /*catch_up_on_read=*/false);
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  ReplicatedClient router(std::move(primary_client));
  router.AddReplica(MakeReadClient(replica.get()));
  ASSERT_EQ(MR_SUCCESS, router.Query("add_machine", {"rd.mit.edu", "VAX"}, [](Tuple) {}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, router.Query("get_machine", {"RD.MIT.EDU"}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());  // read-your-writes held, via the primary
  EXPECT_EQ(1u, router.stats().redirects);
  EXPECT_EQ(1u, router.stats().primary_reads);
  EXPECT_EQ(1u, replica->stats().reads_behind);
  // Once the replica catches up, the same token is satisfiable locally.
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  ASSERT_EQ(MR_SUCCESS, router.Query("get_machine", {"RD.MIT.EDU"}, [](Tuple) {}));
  EXPECT_EQ(1u, router.stats().replica_reads);
}

TEST_F(ReplTest, CrashedReplicaSkippedThenRecoversViaSnapshot) {
  auto primary_client = std::make_unique<MrClient>(PrimaryConnector());
  primary_client->SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, primary_client->Connect());
  ASSERT_EQ(MR_SUCCESS, primary_client->Auth("ops"));
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  ReplicatedClient router(std::move(primary_client));
  router.AddReplica(MakeReadClient(replica.get()));
  ASSERT_EQ(MR_SUCCESS, router.Query("add_machine", {"cr.mit.edu", "VAX"}, [](Tuple) {}));
  replica->Crash();
  // Reads still succeed: the dead replica is skipped, the primary answers.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, router.Query("get_machine", {"CR.MIT.EDU"}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ(1u, router.stats().redirects);
  // Reboot: state was lost, so recovery is a snapshot transfer.
  replica->Restart();
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(1u, replica->stats().snapshot_loads);
  EXPECT_EQ(PrimaryDump(), BackupManager::DumpToString(replica->db()));
  // And the router serves from it again.
  ASSERT_EQ(MR_SUCCESS, router.Query("get_machine", {"CR.MIT.EDU"}, [](Tuple) {}));
  EXPECT_EQ(1u, router.stats().replica_reads);
}

TEST_F(ReplTest, FailoverPromotesMostCaughtUpAndContinuesSequence) {
  MrClient admin = MakeAdmin();
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine",
                                      {"f" + std::to_string(i) + ".mit.edu", "VAX"},
                                      [](Tuple) {}));
  }
  std::unique_ptr<ReplicaServer> lagging = MakeReplica("lagging");
  std::unique_ptr<ReplicaServer> current = MakeReplica("current");
  std::unique_ptr<ReplicaServer> dead = MakeReplica("dead");
  lagging->set_apply_limit(2);
  EXPECT_EQ(MR_MORE_DATA, lagging->CatchUp());
  ASSERT_EQ(MR_SUCCESS, current->CatchUp());
  ASSERT_EQ(MR_SUCCESS, dead->CatchUp());
  dead->Crash();  // most caught-up but not alive: ineligible
  std::vector<ReplicaServer*> all = {lagging.get(), current.get(), dead.get()};
  ReplicaServer* candidate = ChooseFailoverCandidate(all);
  ASSERT_EQ(current.get(), candidate);
  const uint64_t failover_seq = candidate->applied_seq();
  MoiraServer* promoted = candidate->Promote();
  EXPECT_TRUE(candidate->promoted());
  // The promoted replica accepts writes and extends the old sequence.
  MrClient writer(HandlerConnector(candidate));
  writer.SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, writer.Connect());
  ASSERT_EQ(MR_SUCCESS, writer.Auth("ops"));
  ASSERT_EQ(MR_SUCCESS, writer.Query("add_machine", {"post.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(1u, promoted->journal().entries().size());
  EXPECT_EQ(failover_seq + 1, promoted->journal().entries()[0].seq);
  ASSERT_EQ(1u, writer.last_fields().size());
  EXPECT_EQ(std::to_string(failover_seq + 1), writer.last_fields()[0]);
}

TEST_F(ReplTest, GetReplicaStatusIsPrivilegedAndReportsLag) {
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  MrClient admin = MakeAdmin();
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"lag.mit.edu", "VAX"}, [](Tuple) {}));
  MrClient pleb(PrimaryConnector());
  ASSERT_EQ(MR_SUCCESS, pleb.Connect());
  EXPECT_EQ(MR_PERM, pleb.Query("get_replica_status", {}, [](Tuple) {}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, admin.Query("get_replica_status", {}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());
  ASSERT_EQ(6u, tuples[0].size());
  EXPECT_EQ("r1", tuples[0][0]);
  EXPECT_EQ(std::to_string(replica->applied_seq()), tuples[0][1]);
  EXPECT_EQ(std::to_string(primary_->journal().last_seq()), tuples[0][2]);
  EXPECT_EQ("1", tuples[0][3]);  // one write behind
  EXPECT_EQ(std::to_string(primary_->journal().epoch()), tuples[0][5]);
}

TEST_F(ReplTest, ClientRetriesSurfaceAttemptsAndElapsed) {
  // A handler that answers nothing for the first two requests, then recovers:
  // the transport sees a dead connection each failed attempt.
  struct FlakyHandler final : MessageHandler {
    MoiraServer* inner;
    int failures_left = 2;
    explicit FlakyHandler(MoiraServer* s) : inner(s) {}
    std::string OnMessage(uint64_t conn_id, std::string_view payload) override {
      if (failures_left > 0) {
        --failures_left;
        return std::string();
      }
      return inner->OnMessage(conn_id, payload);
    }
    void OnConnect(uint64_t conn_id, std::string peer) override {
      inner->OnConnect(conn_id, std::move(peer));
    }
    void OnDisconnect(uint64_t conn_id) override { inner->OnDisconnect(conn_id); }
  } flaky(primary_.get());
  MrClient admin = MakeAdmin();
  ASSERT_EQ(MR_SUCCESS,
            admin.Query("add_machine", {"retry.mit.edu", "VAX"}, [](Tuple) {}));
  MrClient client(HandlerConnector(&flaky));
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 2;
  client.SetRetryPolicy(policy, &clock_);
  client.set_sleep_fn([this](UnixTime s) { clock_.Advance(s); });
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_SUCCESS, client.Query("get_machine", {"RETRY.MIT.EDU"}, [](Tuple) {}));
  EXPECT_EQ(3, client.last_rpc().attempts);
  EXPECT_GT(client.last_rpc().elapsed, 0);
  // A clean RPC reports a single attempt.
  EXPECT_EQ(MR_SUCCESS, client.Noop());
  EXPECT_EQ(1, client.last_rpc().attempts);
}

TEST_F(ReplTest, CatchUpRidesOutKdcOutageOnCachedTicket) {
  MrClient admin = MakeAdmin();
  std::unique_ptr<ReplicaServer> replica = MakeReplica("r1");
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());  // caches the link's ticket
  realm_->SetDown(true);
  replica->DropLink();  // force a reconnect + re-auth during the outage
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"kdc.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  EXPECT_EQ(primary_->journal().last_seq(), replica->applied_seq());
  // A brand-new replica has no cached ticket and cannot join mid-outage.
  std::unique_ptr<ReplicaServer> fresh = MakeReplica("r2");
  EXPECT_EQ(MR_NOT_CONNECTED, fresh->CatchUp());
  realm_->SetDown(false);
  EXPECT_EQ(MR_SUCCESS, fresh->CatchUp());
}

TEST_F(ReplTest, FaultPlanInjectsDirectoryOutagesDeterministically) {
  HostDirectory hosts;
  FaultPlanSpec spec;
  spec.seed = 7;
  spec.kdc_down_permille = 1000;
  spec.hesiod_down_permille = 1000;
  FaultPlan plan(spec);
  plan.ArmDirectories(realm_.get(), &hosts, /*pass=*/0);
  EXPECT_TRUE(realm_->down());
  EXPECT_TRUE(hosts.down());
  // A downed directory answers no lookups; tickets are refused.
  EXPECT_EQ(nullptr, hosts.Find("anything.mit.edu"));
  Ticket ticket;
  EXPECT_EQ(MR_KDC_UNAVAILABLE,
            realm_->GetInitialTickets("root", "rootpw", kMoiraServiceName, &ticket));
  // Zero permille always heals — same API, deterministic either way.
  FaultPlanSpec clear;
  clear.seed = 7;
  FaultPlan(clear).ArmDirectories(realm_.get(), &hosts, /*pass=*/1);
  EXPECT_FALSE(realm_->down());
  EXPECT_FALSE(hosts.down());
}

TEST_F(ReplTest, ConvergesByteIdenticalUnderSeededFaults) {
  MrClient admin = MakeAdmin();
  std::vector<std::unique_ptr<ReplicaServer>> replicas;
  std::vector<ReplicaServer*> raw;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(MakeReplica("fr" + std::to_string(i)));
    ASSERT_EQ(MR_SUCCESS, replicas.back()->CatchUp());
    raw.push_back(replicas.back().get());
  }
  ReplFaultSpec spec;
  spec.seed = 1988;
  spec.crash_permille = 250;
  spec.flap_permille = 300;
  spec.slow_permille = 300;
  spec.slow_apply_limit = 2;
  spec.kdc_down_permille = 200;
  ReplFaultPlan plan(spec);
  for (int round = 0; round < 12; ++round) {
    plan.ArmRound(raw, realm_.get(), round);
    clock_.Advance(30);
    for (int w = 0; w < 4; ++w) {
      std::string name = "m" + std::to_string(round) + "x" + std::to_string(w) + ".mit.edu";
      ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {name, "VAX"}, [](Tuple) {}));
    }
    ASSERT_EQ(MR_SUCCESS,
              admin.Query("update_user_shell", {"jrandom", "/bin/r" + std::to_string(round)},
                          [](Tuple) {}));
    for (ReplicaServer* replica : raw) {
      replica->CatchUp();  // crashed/limited replicas fall behind; that's the point
    }
  }
  // Heal everything and drain.
  realm_->SetDown(false);
  for (ReplicaServer* replica : raw) {
    if (replica->crashed()) {
      replica->Restart();
    }
    replica->set_apply_limit(0);
    ASSERT_EQ(MR_SUCCESS, replica->CatchUp());
  }
  const std::string golden = PrimaryDump();
  for (ReplicaServer* replica : raw) {
    EXPECT_EQ(replica->applied_seq(), primary_->journal().last_seq()) << replica->name();
    EXPECT_EQ(0u, replica->stats().apply_failures) << replica->name();
    EXPECT_EQ(golden, BackupManager::DumpToString(replica->db())) << replica->name();
  }
}

}  // namespace
}  // namespace moira
