// Quota engine tests (DESIGN.md "Quota engine"): live usage accounting,
// soft/hard limits with grace, the journalled sweep with deduplicated
// hard-limit notices, the seeded telemetry driver's fault oracle, the dbck
// quota pass, and replay determinism.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/backup/dbck.h"
#include "src/db/exec.h"
#include "src/dcm/cron.h"
#include "src/dcm/dcm.h"
#include "src/dcm/delta.h"
#include "src/nfsd/nfs_server.h"
#include "src/quota/quota.h"
#include "src/server/journal.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

// Mirrors gen_nfs.cc / queries_quota.cc: "/u1" -> "u1".
std::string Stem(const std::string& dir) {
  std::string out;
  for (char c : dir) {
    if (c == '/') {
      if (!out.empty()) {
        out += '_';
      }
    } else {
      out += c;
    }
  }
  return out.empty() ? "root" : out;
}

// Flattens a table to comparable strings (one per live row).
std::vector<std::string> DumpTable(Table* t) {
  std::vector<std::string> out;
  t->Scan([&](size_t, const Row& r) {
    std::string line;
    for (const Value& v : r) {
      line += (v.is_int() ? std::to_string(v.AsInt()) : v.AsString()) + "|";
    }
    out.push_back(std::move(line));
    return true;
  });
  return out;
}

class QuotaQueryTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    logins_ = builder.active_logins();
  }

  // A login's home-locker coordinates as a fileserver would report them.
  struct Locker {
    int64_t uid = 0;
    std::string machine;
    std::string partition;
  };

  Locker LockerFor(const std::string& login) {
    Locker l;
    RowRef user = mc_->UserByLogin(login);
    EXPECT_EQ(MR_SUCCESS, user.code) << login;
    l.uid = MoiraContext::IntCell(mc_->users(), user.row, "uid");
    RowRef fs = mc_->FilesysByLabel(login);
    EXPECT_EQ(MR_SUCCESS, fs.code) << login;
    int64_t phys_id = MoiraContext::IntCell(mc_->filesys(), fs.row, "phys_id");
    RowRef phys = mc_->ExactOne(mc_->nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS);
    EXPECT_EQ(MR_SUCCESS, phys.code);
    RowRef mach = mc_->ExactOne(
        mc_->machine(), "mach_id",
        Value(MoiraContext::IntCell(mc_->nfsphys(), phys.row, "mach_id")), MR_MACHINE);
    EXPECT_EQ(MR_SUCCESS, mach.code);
    l.machine = MoiraContext::StrCell(mc_->machine(), mach.row, "name");
    l.partition = Stem(MoiraContext::StrCell(mc_->nfsphys(), phys.row, "dir"));
    return l;
  }

  int32_t Report(const Locker& l, int64_t delta, int64_t seq) {
    return RunRoot("report_quota_usage",
                   {l.machine, l.partition, std::to_string(l.uid), std::to_string(delta),
                    std::to_string(seq)});
  }

  // get_quota_status's single tuple: (kind, name, usage, reports, quota,
  // soft, entries, soft_exceeded, grace_flagged, hard_noticed).
  Tuple Status(const std::string& kind, const std::string& name) {
    std::vector<Tuple> tuples;
    EXPECT_EQ(MR_SUCCESS, RunRoot("get_quota_status", {kind, name}, &tuples));
    EXPECT_EQ(1u, tuples.size());
    return tuples.empty() ? Tuple{} : tuples[0];
  }

  std::vector<std::string> logins_;
};

TEST_F(QuotaQueryTest, ReportAccumulatesIntoUsageAndRollups) {
  Locker l = LockerFor(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, Report(l, 120, 1));
  Tuple user = Status("USER", logins_[0]);
  EXPECT_EQ("120", user[2]);  // usage
  EXPECT_EQ("1", user[3]);    // reports
  EXPECT_EQ("300", user[4]);  // hard = site default
  EXPECT_EQ("300", user[5]);  // soft 0 means "soft = hard"
  EXPECT_EQ("1", user[6]);    // entries
  // Deltas accumulate; the filesystem rollup tracks the same number (a home
  // locker has a single quota holder).
  ASSERT_EQ(MR_SUCCESS, Report(l, -30, 2));
  EXPECT_EQ("90", Status("USER", logins_[0])[2]);
  EXPECT_EQ("90", Status("FILESYS", logins_[0])[2]);
  // Usage clamps at zero rather than going negative.
  ASSERT_EQ(MR_SUCCESS, Report(l, -1000, 3));
  EXPECT_EQ("0", Status("USER", logins_[0])[2]);
  EXPECT_EQ("0", Status("FILESYS", logins_[0])[2]);
}

TEST_F(QuotaQueryTest, StaleSequencesAreDeduplicatedPerMachine) {
  Locker l = LockerFor(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, Report(l, 120, 1));
  // Same and older sequences are absorbed without touching the accounting.
  EXPECT_EQ(MR_EXISTS, Report(l, 50, 1));
  EXPECT_EQ(MR_EXISTS, Report(l, 50, 0));
  EXPECT_EQ("120", Status("USER", logins_[0])[2]);
  EXPECT_EQ("1", Status("USER", logins_[0])[3]);
  // Sequences are per machine: another server's seq 1 still applies.
  for (const std::string& other : logins_) {
    Locker lo = LockerFor(other);
    if (lo.machine != l.machine) {
      EXPECT_EQ(MR_SUCCESS, Report(lo, 10, 1));
      return;
    }
  }
  FAIL() << "test site has only one NFS server";
}

TEST_F(QuotaQueryTest, ReportValidation) {
  Locker l = LockerFor(logins_[0]);
  Locker bad = l;
  bad.machine = "NO-SUCH-HOST.MIT.EDU";
  EXPECT_EQ(MR_MACHINE, Report(bad, 10, 1));
  bad = l;
  bad.partition = "u99";
  EXPECT_EQ(MR_NFSPHYS, Report(bad, 10, 1));
  bad = l;
  bad.uid = 999999;
  EXPECT_EQ(MR_USER, Report(bad, 10, 1));
  EXPECT_EQ(MR_INTEGER, RunRoot("report_quota_usage",
                                {l.machine, l.partition, std::to_string(l.uid),
                                 "not-a-number", "1"}));
  // None of the rejects were journalled state: seq 1 still applies cleanly.
  EXPECT_EQ(MR_SUCCESS, Report(l, 10, 1));
}

TEST_F(QuotaQueryTest, SetQuotaLimitsValidatesAndTracksAllocation) {
  const std::string& login = logins_[0];
  EXPECT_EQ(MR_QUOTA, RunRoot("set_quota_limits", {login, login, "400", "300"}));
  EXPECT_EQ(MR_QUOTA, RunRoot("set_quota_limits", {login, login, "0", "0"}));
  EXPECT_EQ(MR_QUOTA, RunRoot("set_quota_limits", {login, login, "-5", "300"}));
  EXPECT_EQ(MR_INTEGER, RunRoot("set_quota_limits", {login, login, "soft", "300"}));
  EXPECT_EQ(MR_FILESYS,
            RunRoot("set_quota_limits", {"no-such-fs", login, "100", "300"}));
  // logins_[1] holds no quota on logins_[0]'s filesystem.
  EXPECT_EQ(MR_NO_QUOTA,
            RunRoot("set_quota_limits", {login, logins_[1], "100", "300"}));
  // A valid update moves the partition allocation by the hard-limit delta.
  RowRef fs = mc_->FilesysByLabel(login);
  int64_t phys_id = MoiraContext::IntCell(mc_->filesys(), fs.row, "phys_id");
  RowRef phys = mc_->ExactOne(mc_->nfsphys(), "nfsphys_id", Value(phys_id), MR_NFSPHYS);
  int64_t before = MoiraContext::IntCell(mc_->nfsphys(), phys.row, "allocated");
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_quota_limits", {login, login, "100", "500"}));
  EXPECT_EQ(before + 200,
            MoiraContext::IntCell(mc_->nfsphys(), phys.row, "allocated"));
  Tuple status = Status("USER", login);
  EXPECT_EQ("500", status[4]);
  EXPECT_EQ("100", status[5]);
}

TEST_F(QuotaQueryTest, ListStatusAggregatesDirectMembersAtQueryTime) {
  Locker l0 = LockerFor(logins_[0]);
  Locker l1 = LockerFor(logins_[1]);
  ASSERT_EQ(MR_SUCCESS, Report(l0, 40, 100));
  int64_t seq = l1.machine == l0.machine ? 101 : 100;
  ASSERT_EQ(MR_SUCCESS, Report(l1, 25, seq));
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("add_list", {"quota-watchers", "1", "1", "0", "0", "0", "-1", "USER",
                                 logins_[0], "quota test list"}));
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("add_member_to_list", {"quota-watchers", "USER", logins_[0]}));
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("add_member_to_list", {"quota-watchers", "USER", logins_[1]}));
  Tuple list = Status("LIST", "quota-watchers");
  EXPECT_EQ("65", list[2]);   // 40 + 25
  EXPECT_EQ("600", list[4]);  // two default 300-unit hard limits
  EXPECT_EQ("2", list[6]);
  // Membership churn is visible immediately — no stale group rollup.
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("delete_member_from_list", {"quota-watchers", "USER", logins_[1]}));
  EXPECT_EQ("40", Status("LIST", "quota-watchers")[2]);
  EXPECT_EQ(MR_TYPE, RunRoot("get_quota_status", {"GROUP", "quota-watchers"}));
}

TEST_F(QuotaQueryTest, StatusSelfAccessAndSweepStatsPrivilege) {
  // A user may always ask about themselves, and only themselves.
  EXPECT_EQ(MR_SUCCESS, Run(logins_[0], "get_quota_status", {"USER", logins_[0]}));
  EXPECT_EQ(MR_PERM, Run(logins_[0], "get_quota_status", {"USER", logins_[1]}));
  EXPECT_EQ(MR_PERM, Run(logins_[0], "get_quota_status", {"FILESYS", logins_[0]}));
  EXPECT_EQ(MR_PERM, Run(logins_[0], "get_quota_sweep_stats", {}));
  std::vector<Tuple> stats;
  EXPECT_EQ(MR_SUCCESS, RunRoot("get_quota_sweep_stats", {}, &stats));
  EXPECT_EQ(7u, stats.size());
}

class QuotaSweepTest : public QuotaQueryTest {
 protected:
  void SetUp() override {
    QuotaQueryTest::SetUp();
    zephyr_ = std::make_unique<ZephyrBus>(&clock_);
  }

  int32_t JReport(const Locker& l, int64_t delta, int64_t seq) {
    return ExecuteJournaled(*mc_, &journal_, "root", "quota_ingest",
                            "report_quota_usage",
                            {l.machine, l.partition, std::to_string(l.uid),
                             std::to_string(delta), std::to_string(seq)});
  }

  QuotaSweepSummary Sweep(uint64_t* marker = nullptr) {
    return RunQuotaSweep(*mc_, &journal_, zephyr_.get(), marker);
  }

  size_t Notices() { return zephyr_->Matching(kQuotaZephyrClass, kQuotaZephyrInstance).size(); }

  Journal journal_;
  std::unique_ptr<ZephyrBus> zephyr_;
};

TEST_F(QuotaSweepTest, GraceLifecycleOnSimulatedClock) {
  const std::string& login = logins_[0];
  Locker l = LockerFor(login);
  ASSERT_EQ(MR_SUCCESS,
            ExecuteJournaled(*mc_, &journal_, "root", "test", "set_quota_limits",
                             {login, login, "100", "200"}));
  ASSERT_EQ(MR_SUCCESS, JReport(l, 150, 1));  // crosses soft, starts grace
  Tuple status = Status("USER", login);
  EXPECT_EQ("1", status[7]);  // soft_exceeded
  EXPECT_EQ("0", status[8]);  // grace not expired yet
  uint64_t marker = 0;
  QuotaSweepSummary s1 = Sweep(&marker);
  EXPECT_TRUE(s1.ran);
  EXPECT_EQ(0, s1.flagged);
  EXPECT_EQ(0, s1.notices);
  // The journal is idle but a grace window is running: the sweep must keep
  // firing, and flags once the (default 7-day) window expires.
  clock_.Advance(7 * kSecondsPerDay + kSecondsPerMinute);
  QuotaSweepSummary s2 = Sweep(&marker);
  EXPECT_TRUE(s2.ran);
  EXPECT_EQ(1, s2.flagged);
  EXPECT_EQ(0, s2.notices);
  EXPECT_EQ("1", Status("USER", login)[8]);
  // Nothing pending and nothing journalled since: now the sweep skips.
  QuotaSweepSummary s3 = Sweep(&marker);
  EXPECT_FALSE(s3.ran);
  // Dropping back to or below soft clears the stamp and the flag.
  ASSERT_EQ(MR_SUCCESS, JReport(l, -100, 2));
  status = Status("USER", login);
  EXPECT_EQ("0", status[7]);
  EXPECT_EQ("0", status[8]);
  QuotaSweepSummary s4 = Sweep(&marker);
  EXPECT_TRUE(s4.ran);  // the ingest dirtied the journal range
  EXPECT_EQ(0, s4.flagged);
  EXPECT_EQ(0u, Notices());
}

TEST_F(QuotaSweepTest, HardCrossingFiresExactlyOneNotice) {
  const std::string& login = logins_[0];
  Locker l = LockerFor(login);
  ASSERT_EQ(MR_SUCCESS,
            ExecuteJournaled(*mc_, &journal_, "root", "test", "set_quota_limits",
                             {login, login, "100", "200"}));
  ASSERT_EQ(MR_SUCCESS, JReport(l, 250, 1));
  QuotaSweepSummary s1 = Sweep();
  EXPECT_EQ(1, s1.notices);
  ASSERT_EQ(1u, Notices());
  ZephyrNotice notice = zephyr_->Matching(kQuotaZephyrClass, kQuotaZephyrInstance)[0];
  EXPECT_NE(std::string::npos, notice.message.find(login));
  EXPECT_NE(std::string::npos, notice.message.find("250/200"));
  // Re-sweeping while still over hard dedups instead of re-sending.
  QuotaSweepSummary s2 = Sweep();
  EXPECT_EQ(0, s2.notices);
  EXPECT_EQ(1, s2.deduped);
  ASSERT_EQ(MR_SUCCESS, JReport(l, 30, 2));  // 280, still over
  EXPECT_EQ(0, Sweep().notices);
  EXPECT_EQ(1u, Notices());
  // Flapping around hard (but staying above soft) stays deduplicated.
  ASSERT_EQ(MR_SUCCESS, JReport(l, -130, 3));  // 150: below hard, above soft
  EXPECT_EQ(0, Sweep().notices);
  ASSERT_EQ(MR_SUCCESS, JReport(l, 100, 4));  // 250 again
  EXPECT_EQ(0, Sweep().notices);
  EXPECT_EQ(1u, Notices());
  // Only a full recovery below soft re-arms the notice.
  ASSERT_EQ(MR_SUCCESS, JReport(l, -200, 5));  // 50, below soft
  EXPECT_EQ(0, Sweep().notices);
  ASSERT_EQ(MR_SUCCESS, JReport(l, 200, 6));  // 250, a fresh crossing
  EXPECT_EQ(1, Sweep().notices);
  EXPECT_EQ(2u, Notices());
}

TEST_F(QuotaSweepTest, SweepSkipsIdleJournalAndUnrelatedTraffic) {
  uint64_t marker = 0;
  // Empty journal, nothing pending: skip.
  EXPECT_FALSE(Sweep(&marker).ran);
  // Unrelated journalled churn does not wake the sweep.
  ASSERT_EQ(MR_SUCCESS,
            ExecuteJournaled(*mc_, &journal_, "root", "test", "add_user",
                             {"qsweepx", "9901", "/bin/csh", "Sweep", "Quota", "Q", "1",
                              "hashq", "G"}));
  EXPECT_FALSE(Sweep(&marker).ran);
  // A usage report is quota-relevant: the next pass runs.
  Locker l = LockerFor(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, JReport(l, 10, 1));
  EXPECT_TRUE(Sweep(&marker).ran);
  EXPECT_FALSE(Sweep(&marker).ran);
}

TEST_F(QuotaSweepTest, CronScheduledSweepUsesDirtySkip) {
  CronScheduler cron(&clock_);
  QuotaSweepSummary last;
  ScheduleQuotaSweep(&cron, mc_.get(), &journal_, zephyr_.get(), kSecondsPerDay, &last);
  // The first firing always sweeps (baseline); later idle firings skip.
  ASSERT_TRUE(cron.TriggerNow("quota_sweep"));
  EXPECT_TRUE(last.ran);
  ASSERT_TRUE(cron.TriggerNow("quota_sweep"));
  EXPECT_FALSE(last.ran);
  Locker l = LockerFor(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, JReport(l, 10, 1));
  ASSERT_TRUE(cron.TriggerNow("quota_sweep"));
  EXPECT_TRUE(last.ran);
}

TEST_F(QuotaSweepTest, ReplayProducesIdenticalQuotaState) {
  // Drive limits, ingest, grace expiry, and notices through the journal.
  const std::string& login = logins_[0];
  Locker l0 = LockerFor(login);
  Locker l1 = LockerFor(logins_[1]);
  ASSERT_EQ(MR_SUCCESS,
            ExecuteJournaled(*mc_, &journal_, "root", "test", "set_quota_limits",
                             {login, login, "100", "200"}));
  ASSERT_EQ(MR_SUCCESS, JReport(l0, 250, 1));
  int64_t seq1 = l1.machine == l0.machine ? 2 : 1;
  ASSERT_EQ(MR_SUCCESS, JReport(l1, 40, seq1));
  Sweep();
  clock_.Advance(8 * kSecondsPerDay);
  ASSERT_EQ(MR_SUCCESS, JReport(l0, -10, seq1 + 1));
  Sweep();
  // Rebuild the same site from scratch and replay the journal with the
  // clock pinned to each entry's timestamp, as a replica does.
  SimulatedClock clock2(568000000);
  auto db2 = std::make_unique<Database>(&clock2);
  CreateMoiraSchema(db2.get());
  SeedMoiraDefaults(db2.get());
  auto mc2 = std::make_unique<MoiraContext>(db2.get());
  KerberosRealm realm2(&clock2);
  SiteBuilder builder2(mc2.get(), &realm2);
  builder2.Build(TestSiteSpec());
  for (const JournalEntry& entry : journal_.entries()) {
    clock2.Set(entry.when);
    EXPECT_EQ(MR_SUCCESS,
              QueryRegistry::Instance().Execute(*mc2, entry.principal, entry.client,
                                                entry.query, entry.args, [](Tuple) {}));
  }
  EXPECT_EQ(DumpTable(mc_->quotausage()), DumpTable(mc2->quotausage()));
  EXPECT_EQ(DumpTable(mc_->quotarollup()), DumpTable(mc2->quotarollup()));
  EXPECT_EQ(DumpTable(mc_->nfsquota()), DumpTable(mc2->nfsquota()));
  EXPECT_EQ(DumpTable(mc_->values()), DumpTable(mc2->values()));
}

// A complete site with DCM-shipped fileservers, for the telemetry loop.
struct QuotaSite {
  SimulatedClock clock{568000000};
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;
  std::unique_ptr<KerberosRealm> realm;
  HostDirectory directory;
  std::vector<std::unique_ptr<SimHost>> hosts;
  std::unique_ptr<ZephyrBus> bus;
  std::unique_ptr<Dcm> dcm;
  std::map<std::string, std::unique_ptr<NfsServerSim>> servers;
  std::vector<std::string> logins;
  std::vector<std::string> nfs_names;
  Journal journal;

  QuotaSite() {
    RegisterMoiraErrorTable();
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get());
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
    realm = std::make_unique<KerberosRealm>(&clock);
    SiteBuilder builder(mc.get(), realm.get());
    builder.Build(TestSiteSpec());
    logins = builder.active_logins();
    nfs_names = builder.nfs_server_names();
    bus = std::make_unique<ZephyrBus>(&clock);
    hosts = CreateSimHosts(*mc, realm.get(), &directory);
    dcm = std::make_unique<Dcm>(mc.get(), realm.get(), bus.get(), &directory);
    ConfigureStandardServices(dcm.get());
    for (const std::string& name : nfs_names) {
      auto server = std::make_unique<NfsServerSim>(directory.Find(name));
      InstallNfsUpdateCommand(directory.Find(name), server.get());
      servers.emplace(name, std::move(server));
    }
    clock.Advance(kSecondsPerDay);
    dcm->RunOnce();  // ships credentials/.quotas/.dirs to every fileserver
  }

  QuotaTelemetryDriver MakeDriver(uint64_t seed) {
    QuotaTelemetryDriver driver(mc.get(), &journal, seed);
    for (const std::string& name : nfs_names) {
      driver.AttachServer(name, servers.at(name).get());
    }
    return driver;
  }
};

TEST(QuotaTelemetryTest, FaultyIngestConvergesToServerTruth) {
  QuotaSite site;
  QuotaTelemetryDriver driver = site.MakeDriver(7);
  QuotaFaultPlan faults;
  faults.duplicate_permille = 300;
  faults.defer_permille = 300;
  QuotaIngestStats total;
  for (int round = 0; round < 10; ++round) {
    QuotaIngestStats s = driver.RunRound(faults);
    total.applied += s.applied;
    total.deduped += s.deduped;
    total.rejected += s.rejected;
    site.clock.Advance(kSecondsPerHour);
  }
  // Flush rounds with a clean transport drain everything still pending.
  driver.RunRound({});
  driver.RunRound({});
  EXPECT_EQ(0, total.rejected);
  EXPECT_GT(total.applied, 0);
  EXPECT_GT(total.deduped, 0);  // the fault plan actually injected retries
  // Every server's usage map is the ground truth the accounting must match.
  int checked = 0;
  for (const std::string& name : site.nfs_names) {
    NfsServerSim& server = *site.servers.at(name);
    for (const auto& [uid, used] : server.usage()) {
      RowRef user = site.mc->UserByUid(uid);
      ASSERT_EQ(MR_SUCCESS, user.code);
      int64_t users_id = MoiraContext::IntCell(site.mc->users(), user.row, "users_id");
      Table* usage = site.mc->quotausage();
      std::vector<size_t> rows =
          From(usage).WhereEq("users_id", Value(users_id)).Rows();
      ASSERT_EQ(1u, rows.size()) << uid;
      EXPECT_EQ(used, MoiraContext::IntCell(usage, rows[0], "usage")) << uid;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(QuotaTelemetryTest, DuplicateDeliveryIsByteIdenticalToExactlyOnce) {
  // Two identical sites, one with at-least-once redelivery faults, one with
  // exactly-once transport.  The per-machine sequence check must make them
  // indistinguishable: same tables, same sweep output, same notices.
  QuotaSite faulty;
  QuotaSite clean;
  QuotaTelemetryDriver faulty_driver = faulty.MakeDriver(42);
  QuotaTelemetryDriver clean_driver = clean.MakeDriver(42);
  QuotaFaultPlan faults;
  faults.duplicate_permille = 500;
  uint64_t faulty_marker = 0;
  uint64_t clean_marker = 0;
  for (int round = 0; round < 9; ++round) {
    faulty_driver.RunRound(faults);
    clean_driver.RunRound({});
    faulty.clock.Advance(kSecondsPerHour);
    clean.clock.Advance(kSecondsPerHour);
    if (round % 3 == 2) {
      QuotaSweepSummary fs =
          RunQuotaSweep(*faulty.mc, &faulty.journal, faulty.bus.get(), &faulty_marker);
      QuotaSweepSummary cs =
          RunQuotaSweep(*clean.mc, &clean.journal, clean.bus.get(), &clean_marker);
      EXPECT_EQ(cs.ran, fs.ran);
      EXPECT_EQ(cs.notices, fs.notices);
      EXPECT_EQ(cs.flagged, fs.flagged);
    }
  }
  EXPECT_EQ(DumpTable(clean.mc->quotausage()), DumpTable(faulty.mc->quotausage()));
  EXPECT_EQ(DumpTable(clean.mc->quotarollup()), DumpTable(faulty.mc->quotarollup()));
  EXPECT_EQ(DumpTable(clean.mc->nfsquota()), DumpTable(faulty.mc->nfsquota()));
  // Zero missed and zero duplicate hard-limit notices, message for message.
  std::vector<ZephyrNotice> faulty_notices =
      faulty.bus->Matching(kQuotaZephyrClass, kQuotaZephyrInstance);
  std::vector<ZephyrNotice> clean_notices =
      clean.bus->Matching(kQuotaZephyrClass, kQuotaZephyrInstance);
  ASSERT_EQ(clean_notices.size(), faulty_notices.size());
  for (size_t i = 0; i < clean_notices.size(); ++i) {
    EXPECT_EQ(clean_notices[i].message, faulty_notices[i].message);
  }
  // The journals carry the same applied mutations (duplicates were never
  // journalled), so replicas of both sites converge too.
  ASSERT_EQ(clean.journal.entries().size(), faulty.journal.entries().size());
}

class NfsUsageSimTest : public MoiraEnv {
 protected:
  void SetUp() override {
    host_ = std::make_unique<SimHost>("NFS-TEST.MIT.EDU", realm_.get(), &clock_);
    server_ = std::make_unique<NfsServerSim>(host_.get());
  }

  int Apply(const std::string& quotas) {
    host_->WriteFileDirect("/site/moira/u1.quotas", quotas);
    return server_->ApplyMoiraFiles("/site/moira");
  }

  std::unique_ptr<SimHost> host_;
  std::unique_ptr<NfsServerSim> server_;
};

TEST_F(NfsUsageSimTest, QuotaForDistinguishesMissingFromZero) {
  ASSERT_EQ(0, Apply("5001 300\n5002 0\n"));
  EXPECT_EQ(300, server_->QuotaFor(5001).value_or(-1));
  EXPECT_EQ(0, server_->QuotaFor(5002).value_or(-1));  // explicit zero quota
  EXPECT_FALSE(server_->QuotaFor(5003).has_value());   // no quota at all
}

TEST_F(NfsUsageSimTest, ApplyQuotasRejectsMalformedFiles) {
  EXPECT_EQ(1, Apply("5001 300\n5001 200\n"));  // duplicate uid
  EXPECT_EQ(1, Apply("5001 -5\n"));             // negative units
  EXPECT_EQ(1, Apply("5001 lots\n"));           // non-numeric units
}

TEST_F(NfsUsageSimTest, DrainReportsOnlyChangedUidsWithMonotoneSequences) {
  ASSERT_EQ(0, Apply("5001 300\n5002 300\n"));
  server_->SetUsage(5001, 50);
  std::vector<UsageReportLine> lines = server_->DrainUsageReports();
  ASSERT_EQ(1u, lines.size());
  EXPECT_EQ("u1", lines[0].partition);
  EXPECT_EQ(5001, lines[0].uid);
  EXPECT_EQ(50, lines[0].delta);
  EXPECT_EQ(1, lines[0].seq);
  // No movement, nothing to report.
  EXPECT_TRUE(server_->DrainUsageReports().empty());
  // Shrinkage reports a negative delta; sequences keep climbing.
  server_->SetUsage(5001, 30);
  server_->SetUsage(5002, 10);
  lines = server_->DrainUsageReports();
  ASSERT_EQ(2u, lines.size());
  EXPECT_EQ(-20, lines[0].delta);
  EXPECT_EQ(10, lines[1].delta);
  EXPECT_LT(lines[0].seq, lines[1].seq);
  EXPECT_EQ(3, server_->report_seq());
}

TEST_F(NfsUsageSimTest, ChurnIsDeterministicForASeed) {
  ASSERT_EQ(0, Apply("5001 300\n5002 80\n5003 300\n"));
  NfsServerSim other(host_.get());
  ASSERT_EQ(0, other.ApplyMoiraFiles("/site/moira"));
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    server_->ChurnUsage(seed);
    other.ChurnUsage(seed);
  }
  EXPECT_EQ(server_->usage(), other.usage());
  // Churn touched every quota-holding uid.
  EXPECT_EQ(3u, server_->usage().size());
}

class DbckQuotaTest : public QuotaQueryTest {
 protected:
  std::vector<DbckIssue> QuotaIssues() {
    std::vector<DbckIssue> all = DbConsistencyChecker(mc_.get()).Check();
    std::vector<DbckIssue> quota;
    for (DbckIssue& issue : all) {
      if (issue.table == "nfsquota" || issue.table == "quotausage" ||
          issue.table == "quotarollup") {
        quota.push_back(std::move(issue));
      }
    }
    return quota;
  }

  bool HasIssue(const std::vector<DbckIssue>& issues, const std::string& needle) {
    for (const DbckIssue& issue : issues) {
      if (issue.description.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

TEST_F(DbckQuotaTest, DetectsAndRepairsQuotaInvariantViolations) {
  // Healthy accounting state first.
  Locker l = LockerFor(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, Report(l, 120, 1));
  ASSERT_TRUE(QuotaIssues().empty());
  // Break every invariant the quota pass guards.
  Table* quota = mc_->nfsquota();
  size_t some_quota = From(quota).Rows()[0];
  MoiraContext::SetCell(quota, some_quota, "soft", Value(int64_t{900}));  // > hard 300
  mc_->quotausage()->Append({Value(int64_t{999999}), Value(int64_t{1}), Value(int64_t{1}),
                             Value(int64_t{10}), Value(int64_t{1}), Value(int64_t{0})});
  Table* usage = mc_->quotausage();
  size_t live_usage = From(usage).Rows()[0];
  MoiraContext::SetCell(usage, live_usage, "usage", Value(int64_t{-7}));
  mc_->quotarollup()->Append({Value("BOGUS"), Value(int64_t{1}), Value(int64_t{5}),
                              Value(int64_t{1}), Value(int64_t{0})});
  Table* rollup = mc_->quotarollup();
  size_t live_rollup = From(rollup).WhereEq("kind", Value("USER")).Rows()[0];
  MoiraContext::SetCell(rollup, live_rollup, "usage", Value(int64_t{5555}));
  std::vector<DbckIssue> issues = QuotaIssues();
  EXPECT_TRUE(HasIssue(issues, "soft limit 900 exceeds hard quota"));
  EXPECT_TRUE(HasIssue(issues, "usage for missing user"));
  EXPECT_TRUE(HasIssue(issues, "negative usage -7"));
  EXPECT_TRUE(HasIssue(issues, "unknown rollup kind BOGUS"));
  EXPECT_TRUE(HasIssue(issues, "usage rows sum to"));
  for (const DbckIssue& issue : issues) {
    EXPECT_TRUE(issue.repairable) << issue.description;
  }
  // Repair fixes everything, reporting one line per violation.
  std::vector<std::string> log;
  int repaired = DbConsistencyChecker(mc_.get()).Repair(&log);
  EXPECT_GE(repaired, 5);
  EXPECT_EQ(static_cast<size_t>(repaired), log.size());
  ASSERT_TRUE(QuotaIssues().empty());
  // And is idempotent.
  EXPECT_EQ(0, DbConsistencyChecker(mc_.get()).Repair());
}

TEST_F(DbckQuotaTest, CascadedQuotaDeleteLeavesConsistentAccounting) {
  // Usage accounted against a quota row, then the quota (and filesystem) is
  // deleted through the query layer: the cascade must remove the usage and
  // shrink the rollups so dbck stays clean.
  Locker l = LockerFor(logins_[0]);
  ASSERT_EQ(MR_SUCCESS, Report(l, 120, 1));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_nfs_quota", {logins_[0], logins_[0]}));
  ASSERT_TRUE(QuotaIssues().empty());
  EXPECT_EQ("0", Status("USER", logins_[0])[2]);
  EXPECT_EQ("0", Status("USER", logins_[0])[6]);  // no quota entries left
}

}  // namespace
}  // namespace moira
