// Unit tests for the com_err error-table system (paper section 5.6.1).
#include <gtest/gtest.h>

#include "src/comerr/com_err.h"
#include "src/comerr/error_table.h"
#include "src/comerr/moira_errors.h"

namespace moira {
namespace {

TEST(ErrorTableBase, IsDeterministic) {
  EXPECT_EQ(ErrorTableBase("sms"), ErrorTableBase("sms"));
  EXPECT_NE(ErrorTableBase("sms"), ErrorTableBase("krb"));
}

TEST(ErrorTableBase, MatchesManualPacking) {
  // 's' = 27 + ('s'-'a') = 45; base = ((45<<6 | 39)<<6 | 45) << 8.
  int32_t expected = ((((45 << 6) + 39) << 6) + 45) << 8;
  EXPECT_EQ(expected, ErrorTableBase("sms"));
}

TEST(ErrorTableBase, IgnoresCharactersBeyondFour) {
  EXPECT_EQ(ErrorTableBase("abcd"), ErrorTableBase("abcd"));
  // Only the first 4 characters participate.
  EXPECT_EQ(ErrorTableBase(std::string_view("abcdzzz").substr(0, 4)),
            ErrorTableBase("abcd"));
}

TEST(ErrorTableBase, DistinctTablesGetDistinctRanges) {
  int32_t a = ErrorTableBase("ath");
  int32_t b = ErrorTableBase("atg");
  EXPECT_NE(a, b);
  EXPECT_EQ(0, a & (kMaxTableMessages - 1));
  EXPECT_EQ(0, b & (kMaxTableMessages - 1));
}

TEST(MoiraErrors, SuccessIsZero) { EXPECT_EQ(0, MR_SUCCESS); }

TEST(MoiraErrors, CodesAreInSmsRange) {
  EXPECT_EQ(kMrErrorBase + 1, MR_ARG_TOO_LONG);
  EXPECT_EQ(kMrErrorBase, MR_PERM & ~(kMaxTableMessages - 1));
  EXPECT_EQ(kMrErrorBase, MR_NO_CHANGE & ~(kMaxTableMessages - 1));
}

TEST(MoiraErrors, MessagesResolve) {
  RegisterMoiraErrorTable();
  EXPECT_EQ("Insufficient permission to perform requested database access",
            ErrorMessage(MR_PERM));
  EXPECT_EQ("No records in database match query", ErrorMessage(MR_NO_MATCH));
  EXPECT_EQ("No change in database since last file generation", ErrorMessage(MR_NO_CHANGE));
  EXPECT_EQ("Unknown machine", ErrorMessage(MR_MACHINE));
}

TEST(MoiraErrors, ZeroIsSuccessMessage) { EXPECT_EQ("Success", ErrorMessage(0)); }

TEST(MoiraErrors, ErrnoRangeFallsBackToStrerror) {
  std::string msg = ErrorMessage(2);  // ENOENT
  EXPECT_FALSE(msg.empty());
  EXPECT_NE(msg.find("No such file"), std::string::npos);
}

TEST(MoiraErrors, UnknownOffsetReportsTableAndOffset) {
  RegisterMoiraErrorTable();
  std::string msg = ErrorMessage(kMrErrorBase + 250);
  EXPECT_NE(msg.find("Unknown code"), std::string::npos);
  EXPECT_NE(msg.find("sms"), std::string::npos);
  EXPECT_NE(msg.find("250"), std::string::npos);
}

TEST(ComErr, HookReceivesMessage) {
  RegisterMoiraErrorTable();
  std::string captured_whoami;
  int32_t captured_code = -1;
  std::string captured_message;
  SetComErrHook([&](std::string_view whoami, int32_t code, std::string_view message) {
    captured_whoami = std::string(whoami);
    captured_code = code;
    captured_message = std::string(message);
  });
  ComErr("mrtest", MR_PERM, "while updating user");
  SetComErrHook(nullptr);
  EXPECT_EQ("mrtest", captured_whoami);
  EXPECT_EQ(MR_PERM, captured_code);
  EXPECT_EQ("while updating user", captured_message);
}

TEST(ComErr, RestoringHookReturnsPrevious) {
  ComErrHook hook = [](std::string_view, int32_t, std::string_view) {};
  SetComErrHook(hook);
  ComErrHook previous = SetComErrHook(nullptr);
  EXPECT_TRUE(previous != nullptr);
}

// Registering a second table and resolving codes from both.
TEST(ErrorTable, MultipleTablesCoexist) {
  static constexpr std::string_view kMessages[] = {"zeroth", "first", "second"};
  ErrorTable table{"tst", std::span<const std::string_view>(kMessages)};
  int32_t base = InitErrorTable(table);
  RegisterMoiraErrorTable();
  EXPECT_EQ("first", ErrorMessage(base + 1));
  EXPECT_EQ("Unknown machine", ErrorMessage(MR_MACHINE));
}

}  // namespace
}  // namespace moira
