// Edge-case and failure-injection tests across module boundaries: corrupt
// wire input, disappearing hosts, empty databases, and odd-but-legal inputs.
#include <filesystem>

#include "src/backup/backup.h"
#include "src/client/client.h"
#include "src/dcm/dcm.h"
#include "src/dcm/generators.h"
#include "src/reg/regserver.h"
#include "src/server/server.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class EdgeCaseTest : public MoiraEnv {};

TEST_F(EdgeCaseTest, ServerRejectsGarbagePayload) {
  MoiraServer server(mc_.get(), realm_.get());
  LoopbackChannel channel(&server);
  // A well-framed message whose payload is not a request.
  std::string garbage = "not-a-request";
  std::string framed;
  framed.push_back(0);
  framed.push_back(0);
  framed.push_back(0);
  framed.push_back(static_cast<char>(garbage.size()));
  framed += garbage;
  ASSERT_EQ(MR_SUCCESS, channel.Send(framed));
  std::string payload;
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_ABORTED, DecodeReply(payload)->code);
}

TEST_F(EdgeCaseTest, ServerRejectsEmptyQueryName) {
  MoiraServer server(mc_.get(), realm_.get());
  MrClient client([&server] { return std::make_unique<LoopbackChannel>(&server); });
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_NO_HANDLE, client.Query("", {}, [](Tuple) {}));
}

TEST_F(EdgeCaseTest, AuthWithNoArgsIsArgsError) {
  MoiraServer server(mc_.get(), realm_.get());
  LoopbackChannel channel(&server);
  ASSERT_EQ(MR_SUCCESS, channel.Send(EncodeRequest(
                            MrRequest{kMrProtocolVersion, MajorRequest::kAuthenticate,
                                      {}})));
  std::string payload;
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_ARGS, DecodeReply(payload)->code);
}

TEST_F(EdgeCaseTest, UnknownMajorRequest) {
  MoiraServer server(mc_.get(), realm_.get());
  LoopbackChannel channel(&server);
  MrRequest request{kMrProtocolVersion, static_cast<MajorRequest>(99), {}};
  ASSERT_EQ(MR_SUCCESS, channel.Send(EncodeRequest(request)));
  std::string payload;
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_UNKNOWN_PROC, DecodeReply(payload)->code);
}

TEST_F(EdgeCaseTest, DcmSurvivesMissingSimHost) {
  // A serverhost row whose machine has no registered host is a configuration
  // error: the update fails hard (flagged in hosterror, halting replicated
  // services) rather than being retried forever as a soft failure — and it
  // never crashes the DCM.
  SiteBuilder builder(mc_.get(), realm_.get());
  builder.Build(TestSiteSpec());
  ZephyrBus zephyr(&clock_);
  HostDirectory directory;  // deliberately empty: every host is unreachable
  Dcm dcm(mc_.get(), realm_.get(), &zephyr, &directory);
  ConfigureStandardServices(&dcm);
  clock_.Advance(kSecondsPerDay);
  DcmRunSummary summary = dcm.RunOnce();
  EXPECT_TRUE(summary.ran);
  EXPECT_EQ(4, summary.services_generated);
  EXPECT_EQ(0, summary.hosts_updated);
  EXPECT_EQ(0, summary.host_soft_failures);
  // Replicated services halt their host scan on the first hard failure, so
  // not every serverhost row is visited.
  EXPECT_EQ(6, summary.host_hard_failures);
}

TEST_F(EdgeCaseTest, DcmWithNoServicesConfigured) {
  SiteBuilder builder(mc_.get(), realm_.get());
  builder.Build(TestSiteSpec());
  ZephyrBus zephyr(&clock_);
  HostDirectory directory;
  Dcm dcm(mc_.get(), realm_.get(), &zephyr, &directory);  // no generators
  clock_.Advance(kSecondsPerDay);
  DcmRunSummary summary = dcm.RunOnce();
  EXPECT_TRUE(summary.ran);
  EXPECT_EQ(0, summary.services_considered);
}

TEST_F(EdgeCaseTest, BackupOfEmptyDatabaseRestores) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "moira-test" / "empty-dump";
  fs::remove_all(dir);
  SimulatedClock clock(0);
  Database empty(&clock);
  CreateMoiraSchema(&empty);
  EXPECT_EQ(0, BackupManager::Dump(empty, dir));
  Database restored(&clock);
  CreateMoiraSchema(&restored);
  EXPECT_EQ(MR_SUCCESS, BackupManager::Restore(&restored, dir));
}

TEST_F(EdgeCaseTest, RestoreFromMissingDirectoryIsEmptyRestore) {
  Database restored(&clock_);
  CreateMoiraSchema(&restored);
  EXPECT_EQ(MR_SUCCESS,
            BackupManager::Restore(&restored, "/nonexistent/moira/backup"));
  EXPECT_EQ(0u, restored.GetTable(kUsersTable)->LiveCount());
}

TEST_F(EdgeCaseTest, RegServerUnknownRequestType) {
  RegistrationServer reg(mc_.get(), realm_.get());
  std::string packet;
  PackField(&packet, "9");
  PackField(&packet, "First");
  PackField(&packet, "Last");
  PackField(&packet, "auth");
  std::string reply = reg.HandlePacket(packet);
  std::string_view view(reply);
  std::string code;
  ASSERT_TRUE(UnpackField(&view, &code));
  EXPECT_EQ(std::to_string(MR_REG_BAD_AUTH), code);
}

TEST_F(EdgeCaseTest, LoginWithMaximallyAwkwardLegalCharacters) {
  // Legal but unusual: dots, dashes, underscores.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {"a.b-c_d", "777", "/bin/csh", "L", "F", "M",
                                             "1", "id", "G"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"a.b-c_d"}, &tuples));
  EXPECT_EQ("a.b-c_d", tuples[0][0]);
}

TEST_F(EdgeCaseTest, EmptyStringArgumentsAccepted) {
  // Finger fields are free-form and may be empty.
  AddActiveUser("empties", 800);
  EXPECT_EQ(MR_SUCCESS, RunRoot("update_finger_by_login",
                                {"empties", "", "", "", "", "", "", "", ""}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_finger_by_login", {"empties"}, &tuples));
  EXPECT_EQ("", tuples[0][1]);
}

TEST_F(EdgeCaseTest, WildcardOnlyPatternMatchesAll) {
  AddActiveUser("wa", 801);
  AddActiveUser("wb", 802);
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
}

TEST_F(EdgeCaseTest, ClientSurvivesServerDestruction) {
  auto server = std::make_unique<MoiraServer>(mc_.get(), realm_.get());
  MrClient client(
      [&server]() -> std::unique_ptr<ClientChannel> {
        if (server == nullptr) {
          return nullptr;
        }
        return std::make_unique<LoopbackChannel>(server.get());
      });
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  ASSERT_EQ(MR_SUCCESS, client.Noop());
  ASSERT_EQ(MR_SUCCESS, client.Disconnect());
  server.reset();
  // Reconnect fails cleanly rather than crashing.
  EXPECT_EQ(MR_ABORTED, client.Connect());
  EXPECT_EQ(MR_NOT_CONNECTED, client.Noop());
}

TEST_F(EdgeCaseTest, RegisterUserExhaustsPopCapacity) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"po.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"nfs.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info",
                                {"POP", "0", "", "", "UNIQUE", "1", "NONE", "NONE"}));
  // Capacity for exactly one pobox.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"POP", "po.mit.edu", "1", "0", "1", ""}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfsphys", {"nfs.mit.edu", "/u1", "ra0",
                                                std::to_string(kFsStudent), "0",
                                                "100000"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "One", "Stu",
                                             "A", "0", "h1", "1989"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "Two", "Stu",
                                             "B", "0", "h2", "1989"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"Stu", "One"}, &tuples));
  ASSERT_EQ(MR_SUCCESS, RunRoot("register_user", {tuples[0][1], "stuone", "1"}));
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"Stu", "Two"}, &tuples));
  // The only post office is full: registration fails cleanly.
  EXPECT_EQ(MR_MACHINE, RunRoot("register_user", {tuples[0][1], "stutwo", "1"}));
}

TEST_F(EdgeCaseTest, RegisterUserNeedsMatchingFstype) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"po.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"nfs.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_info",
                                {"POP", "0", "", "", "UNIQUE", "1", "NONE", "NONE"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_server_host_info",
                                {"POP", "po.mit.edu", "1", "0", "10", ""}));
  // Only a faculty partition exists; a student registration cannot place a
  // home directory.
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_nfsphys", {"nfs.mit.edu", "/u1", "ra0",
                                                std::to_string(kFsFaculty), "0",
                                                "100000"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "Kid", "New",
                                             "A", "0", "h", "1989"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_name", {"New", "Kid"}, &tuples));
  EXPECT_EQ(MR_NO_FILESYS,
            RunRoot("register_user", {tuples[0][1], "newkid", std::to_string(kFsStudent)}));
  EXPECT_EQ(MR_SUCCESS,
            RunRoot("register_user", {tuples[0][1], "newkid", std::to_string(kFsFaculty)}));
}

TEST_F(EdgeCaseTest, GeneratorsOnEmptySiteProduceValidFiles) {
  // Generators must produce valid (possibly empty) files on a bare schema.
  GeneratorResult hesiod;
  EXPECT_EQ(MR_SUCCESS, GenerateHesiod(*mc_, &hesiod));
  EXPECT_EQ(11u, hesiod.common.size());
  GeneratorResult nfs;
  EXPECT_EQ(MR_SUCCESS, GenerateNfs(*mc_, &nfs));
  EXPECT_TRUE(nfs.per_host.empty());
  GeneratorResult mail;
  EXPECT_EQ(MR_SUCCESS, GenerateMail(*mc_, &mail));
  EXPECT_NE(nullptr, mail.common.Find("aliases"));
  GeneratorResult zephyr;
  EXPECT_EQ(MR_SUCCESS, GenerateZephyrAcls(*mc_, &zephyr));
  EXPECT_TRUE(zephyr.common.empty());
}

}  // namespace
}  // namespace moira
