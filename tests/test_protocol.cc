// Tests for the wire protocol (paper section 5.3): counted-string encoding,
// framing, version handling, and incremental stream parsing.
#include <gtest/gtest.h>

#include "src/protocol/wire.h"

namespace moira {
namespace {

TEST(Wire, RequestRoundTrip) {
  MrRequest request{kMrProtocolVersion, MajorRequest::kQuery,
                    {"get_user_by_login", "babette", "", std::string("\x00\xff", 2)}};
  std::string framed = EncodeRequest(request);
  FrameReader reader;
  reader.Feed(framed);
  std::optional<std::string> payload = reader.Next();
  ASSERT_TRUE(payload.has_value());
  std::optional<MrRequest> decoded = DecodeRequest(*payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(request.version, decoded->version);
  EXPECT_EQ(request.major, decoded->major);
  EXPECT_EQ(request.args, decoded->args);
}

TEST(Wire, ReplyRoundTrip) {
  MrReply reply{kMrProtocolVersion, 42, {"a", "b", "c"}};
  std::string framed = EncodeReply(reply);
  FrameReader reader;
  reader.Feed(framed);
  std::optional<MrReply> decoded = DecodeReply(reader.Next().value());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(42, decoded->code);
  EXPECT_EQ(reply.fields, decoded->fields);
}

TEST(Wire, NegativeErrorCodeSurvives) {
  MrReply reply{kMrProtocolVersion, -7, {}};
  FrameReader reader;
  reader.Feed(EncodeReply(reply));
  EXPECT_EQ(-7, DecodeReply(reader.Next().value())->code);
}

TEST(Wire, DecodeRejectsTruncation) {
  std::string framed = EncodeRequest(
      MrRequest{kMrProtocolVersion, MajorRequest::kQuery, {"q", "arg"}});
  std::string payload = framed.substr(4);  // strip frame header
  for (size_t cut = 1; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(payload.substr(0, payload.size() - cut)).has_value())
        << "cut " << cut;
  }
}

TEST(Wire, DecodeRejectsTrailingGarbage) {
  std::string framed = EncodeReply(MrReply{kMrProtocolVersion, 0, {"x"}});
  std::string payload = framed.substr(4) + "junk";
  EXPECT_FALSE(DecodeReply(payload).has_value());
}

// Property: a stream of several messages parses identically no matter how it
// is sliced into Feed() calls.
class FrameSliceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FrameSliceTest, SlicedFeedsReassemble) {
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    stream += EncodeReply(MrReply{kMrProtocolVersion, i,
                                  {std::string(static_cast<size_t>(i) * 7, 'x')}});
  }
  size_t chunk = GetParam();
  FrameReader reader;
  std::vector<int32_t> codes;
  for (size_t off = 0; off < stream.size(); off += chunk) {
    reader.Feed(std::string_view(stream).substr(off, chunk));
    while (std::optional<std::string> payload = reader.Next()) {
      codes.push_back(DecodeReply(*payload)->code);
    }
  }
  EXPECT_EQ((std::vector<int32_t>{0, 1, 2, 3, 4}), codes);
  EXPECT_FALSE(reader.corrupt());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, FrameSliceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 13, 64, 1024));

TEST(FrameReader, OversizedFrameMarksCorrupt) {
  FrameReader reader;
  // A frame header claiming 2GB: a "deathgram" (paper section 4).
  std::string header = {'\x7f', '\xff', '\xff', '\xff'};
  reader.Feed(header);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.corrupt());
}

TEST(FrameReader, EmptyFrameIsValid) {
  FrameReader reader;
  reader.Feed(std::string(4, '\0'));
  std::optional<std::string> payload = reader.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(FrameReader, BuffersCompact) {
  FrameReader reader;
  std::string frame = EncodeReply(MrReply{kMrProtocolVersion, 1, {"data"}});
  for (int i = 0; i < 1000; ++i) {
    reader.Feed(frame);
    ASSERT_TRUE(reader.Next().has_value());
  }
  // The internal buffer must not grow without bound.
  EXPECT_LT(reader.buffered_bytes(), 10 * frame.size());
}

}  // namespace
}  // namespace moira
