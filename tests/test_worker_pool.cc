// WorkerPool unit tests: bounded queue back-pressure, shutdown semantics,
// exception propagation, the 0-thread inline degenerate pool, and nested
// ParallelFor (which must not deadlock on a full queue).
#include "src/common/worker_pool.h"

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace moira {
namespace {

TEST(WorkerPoolTest, RunsSubmittedTasks) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ++count; }));
  }
  pool.Drain();
  EXPECT_EQ(50, count.load());
  EXPECT_EQ(50, pool.stats().tasks_run);
}

TEST(WorkerPoolTest, ZeroThreadPoolRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(0u, pool.thread_count());
  int count = 0;
  // Inline execution: the task has run by the time Submit returns, so a
  // plain int (no synchronization) is enough.
  ASSERT_TRUE(pool.Submit([&] { ++count; }));
  EXPECT_EQ(1, count);
  std::vector<size_t> seen;
  pool.ParallelFor(4, [&](size_t i) { seen.push_back(i); });
  EXPECT_EQ((std::vector<size_t>{0, 1, 2, 3}), seen);
  pool.Drain();
  EXPECT_EQ(1, pool.stats().tasks_run);
}

TEST(WorkerPoolTest, BoundedQueueBlocksProducer) {
  WorkerPool pool(1, /*queue_capacity=*/2);
  std::atomic<bool> release{false};
  // Occupy the single worker so queued tasks cannot drain.
  ASSERT_TRUE(pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::yield();
    }
  }));
  // Fill the queue, then one more: the extra Submit must block until the
  // worker is released, and the pool records the back-pressure event.
  std::atomic<int> done{0};
  std::thread producer([&] {
    for (int i = 0; i < 3; ++i) {
      pool.Submit([&] { ++done; });
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release = true;
  producer.join();
  pool.Drain();
  EXPECT_EQ(3, done.load());
  EXPECT_GE(pool.stats().submit_blocks, 1);
}

TEST(WorkerPoolTest, ShutdownStopsAcceptingWork) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&] { ++count; }));
  pool.Shutdown();
  EXPECT_EQ(1, count.load());
  // After shutdown, Submit reports the drop instead of silently queueing.
  EXPECT_FALSE(pool.Submit([&] { ++count; }));
  EXPECT_EQ(1, count.load());
  pool.Shutdown();  // idempotent
}

TEST(WorkerPoolTest, DrainRethrowsFirstTaskException) {
  WorkerPool pool(2);
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("task failed"); }));
  EXPECT_THROW(pool.Drain(), std::runtime_error);
  // The error is consumed: subsequent drains are clean and the pool still
  // runs work.
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&] { ++count; }));
  EXPECT_NO_THROW(pool.Drain());
  EXPECT_EQ(1, count.load());
}

TEST(WorkerPoolTest, ParallelForCoversEveryIndexOnce) {
  WorkerPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(1, hits[i].load()) << "index " << i;
  }
  EXPECT_EQ(1, pool.stats().parallel_fors);
}

TEST(WorkerPoolTest, ParallelForRethrowsAfterBarrier) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](size_t i) {
                                  ++ran;
                                  if (i == 3) {
                                    throw std::runtime_error("body failed");
                                  }
                                }),
               std::runtime_error);
  // The throw happens after the barrier, so no body call is still running
  // and the pool remains usable.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) { ++count; });
  EXPECT_EQ(8, count.load());
}

TEST(WorkerPoolTest, NestedParallelForDoesNotDeadlock) {
  // An outer ParallelFor whose bodies each run an inner ParallelFor on the
  // same pool: helper enqueueing is best-effort, so even with every thread
  // busy in outer bodies the inner loops complete on their callers.
  WorkerPool pool(2, /*queue_capacity=*/2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(6, [&](size_t) {
    pool.ParallelFor(5, [&](size_t) { ++inner_total; });
  });
  EXPECT_EQ(30, inner_total.load());
}

TEST(WorkerPoolTest, ConcurrentParallelForCallers) {
  // Two threads sharing one pool must both complete their batches.
  WorkerPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread other([&] { pool.ParallelFor(200, [&](size_t) { ++a; }); });
  pool.ParallelFor(200, [&](size_t) { ++b; });
  other.join();
  EXPECT_EQ(200, a.load());
  EXPECT_EQ(200, b.load());
}

}  // namespace
}  // namespace moira
