// Tests for the archive container, the simulated server hosts, and the
// Moira-to-server update protocol (paper section 5.9).
#include <gtest/gtest.h>

#include "src/comerr/moira_errors.h"
#include "src/common/checksum.h"
#include "src/common/clock.h"
#include "src/krb/kerberos.h"
#include "src/update/archive.h"
#include "src/update/sim_host.h"
#include "src/update/update_client.h"

namespace moira {
namespace {

TEST(Archive, RoundTrip) {
  Archive archive;
  archive.Add("passwd.db", "contents-1");
  archive.Add("group.db", std::string("\0binary\xff", 8));
  archive.Add("empty", "");
  std::string bytes = archive.Serialize();
  std::optional<Archive> back = Archive::Parse(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(3u, back->size());
  EXPECT_EQ("contents-1", *back->Find("passwd.db"));
  EXPECT_EQ(std::string("\0binary\xff", 8), *back->Find("group.db"));
  EXPECT_EQ("", *back->Find("empty"));
  EXPECT_EQ(nullptr, back->Find("missing"));
  EXPECT_EQ(18u, back->ContentBytes());
}

TEST(Archive, AddReplacesSameName) {
  Archive archive;
  archive.Add("f", "v1");
  archive.Add("f", "v2");
  EXPECT_EQ(1u, archive.size());
  EXPECT_EQ("v2", *archive.Find("f"));
}

TEST(Archive, ParseRejectsCorruption) {
  Archive archive;
  archive.Add("f", "data");
  std::string bytes = archive.Serialize();
  EXPECT_FALSE(Archive::Parse("").has_value());
  EXPECT_FALSE(Archive::Parse("XXXX").has_value());
  EXPECT_FALSE(Archive::Parse(bytes.substr(0, bytes.size() - 1)).has_value());
  std::string flipped = bytes;
  flipped[10] ^= 1;
  EXPECT_FALSE(Archive::Parse(flipped).has_value());
}

class SimHostTest : public ::testing::Test {
 protected:
  SimHostTest()
      : clock_(1000),
        realm_(&clock_),
        host_("SERVER-1.MIT.EDU", &realm_, &clock_),
        client_(&realm_, "moira.dcm", "pw") {
    realm_.AddPrincipal("moira.dcm", "pw");
    Archive archive;
    archive.Add("passwd.db", "passwd contents");
    archive.Add("group.db", "group contents");
    payload_ = archive.Serialize();
  }

  std::string Authenticator() {
    Ticket ticket;
    EXPECT_EQ(MR_SUCCESS,
              realm_.GetInitialTickets("moira.dcm", "pw", kUpdateServiceName, &ticket));
    return realm_.MakeAuthenticator(ticket);
  }

  SimulatedClock clock_;
  KerberosRealm realm_;
  SimHost host_;
  UpdateClient client_;
  std::string payload_;
  const std::string script_ =
      "extract passwd.db /etc/hes/passwd.db\n"
      "install /etc/hes/passwd.db\n"
      "extract group.db /etc/hes/group.db\n"
      "install /etc/hes/group.db\n"
      "exec restart_hesiod\n";
};

TEST_F(SimHostTest, FullUpdateInstallsFiles) {
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/hes.out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code) << outcome.message;
  EXPECT_EQ("passwd contents", *host_.ReadFile("/etc/hes/passwd.db"));
  EXPECT_EQ("group contents", *host_.ReadFile("/etc/hes/group.db"));
  ASSERT_EQ(1u, host_.executed_commands().size());
  EXPECT_EQ("restart_hesiod", host_.executed_commands()[0]);
  EXPECT_EQ(1, host_.update_count());
  // The transferred payload remains at the target path; temp files are gone.
  EXPECT_TRUE(host_.HasFile("/tmp/hes.out"));
  EXPECT_FALSE(host_.HasFile("/etc/hes/passwd.db.moira_update"));
}

TEST_F(SimHostTest, InstallKeepsBackupAndRevertRestores) {
  host_.WriteFileDirect("/etc/hes/passwd.db", "old contents");
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/hes.out", payload_, script_);
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("old contents", *host_.ReadFile("/etc/hes/passwd.db.moira_backup"));
  // Revert puts the old file back (paper: "may be useful in the case of an
  // erroneous installation").
  outcome = client_.Update(&host_, "/tmp/hes.out", payload_,
                           "revert /etc/hes/passwd.db\n");
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("old contents", *host_.ReadFile("/etc/hes/passwd.db"));
}

TEST_F(SimHostTest, SyncdirInstallsAllMembers) {
  UpdateOutcome outcome =
      client_.Update(&host_, "/tmp/out", payload_, "syncdir /site/moira\n");
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("passwd contents", *host_.ReadFile("/site/moira/passwd.db"));
  EXPECT_EQ("group contents", *host_.ReadFile("/site/moira/group.db"));
}

TEST_F(SimHostTest, ChecksumMismatchDetected) {
  ASSERT_EQ(MR_SUCCESS, host_.BeginSession(Authenticator()));
  EXPECT_EQ(MR_UPDATE_CKSUM,
            host_.ReceiveFile("/tmp/out", payload_, Crc32(payload_) ^ 0xdeadbeef));
}

TEST_F(SimHostTest, BadAuthenticatorIsHardFailure) {
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ(MR_BAD_AUTH, host_.BeginSession("garbage"));
}

TEST_F(SimHostTest, RefusedConnectionIsSoft) {
  host_.SetFailMode(HostFailMode::kRefuseConnection);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_FALSE(outcome.hard);
  // The very next attempt succeeds (fail mode consumed).
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
}

TEST_F(SimHostTest, CrashDuringTransferLeavesPartialTemp) {
  host_.SetFailMode(HostFailMode::kCrashDuringTransfer);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_XFER, outcome.code);
  EXPECT_FALSE(outcome.hard);
  EXPECT_TRUE(host_.crashed());
  // The partial temp file exists but is incomplete.
  const std::string* partial = host_.ReadFile("/tmp/out.moira_update");
  ASSERT_NE(nullptr, partial);
  EXPECT_LT(partial->size(), payload_.size());
  // While down, connections fail.
  EXPECT_EQ(MR_UPDATE_CONN, host_.BeginSession(Authenticator()));
  // After reboot, the retried update deletes the stale temp and succeeds.
  host_.Reboot();
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("passwd contents", *host_.ReadFile("/etc/hes/passwd.db"));
}

TEST_F(SimHostTest, CrashBeforeExecuteRecoversOnRetry) {
  host_.SetFailMode(HostFailMode::kCrashBeforeExecute);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_FALSE(outcome.hard);
  EXPECT_FALSE(host_.HasFile("/etc/hes/passwd.db"));  // nothing installed
  host_.Reboot();
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
}

TEST_F(SimHostTest, CrashDuringExecuteLeavesPartialInstallThatRetries) {
  host_.SetFailMode(HostFailMode::kCrashDuringExecute);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  // Extra installations are not harmful: the retry re-sends everything.
  host_.Reboot();
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("passwd contents", *host_.ReadFile("/etc/hes/passwd.db"));
  EXPECT_EQ("group contents", *host_.ReadFile("/etc/hes/group.db"));
}

TEST_F(SimHostTest, ScriptErrorIsHard) {
  host_.SetFailMode(HostFailMode::kScriptError);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
  EXPECT_TRUE(outcome.hard);
}

TEST_F(SimHostTest, UnknownInstructionIsHard) {
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, "frobnicate x\n");
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
  EXPECT_TRUE(outcome.hard);
  EXPECT_NE(outcome.message.find("unknown instruction"), std::string::npos);
}

TEST_F(SimHostTest, ExecHandlerFailureIsHard) {
  host_.RegisterCommand("restart_hesiod", [](SimHost&) { return 1; });
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
  EXPECT_TRUE(outcome.hard);
}

TEST_F(SimHostTest, SignalReadsPidFileAtExecutionTime) {
  host_.WriteFileDirect("/var/run/named.pid", "123");
  UpdateOutcome outcome =
      client_.Update(&host_, "/tmp/out", payload_, "signal /var/run/named.pid\n");
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  ASSERT_EQ(1u, host_.signals_sent().size());
  // Missing pid file fails at execution time.
  outcome = client_.Update(&host_, "/tmp/out", payload_, "signal /var/run/gone.pid\n");
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
}

TEST_F(SimHostTest, ReplayedUpdateAuthenticatorRejected) {
  std::string authenticator = Authenticator();
  ASSERT_EQ(MR_SUCCESS, host_.BeginSession(authenticator));
  EXPECT_EQ(MR_BAD_AUTH, host_.BeginSession(authenticator));
}

TEST(HostDirectoryTest, RegisterAndFind) {
  SimulatedClock clock(0);
  KerberosRealm realm(&clock);
  SimHost a("A.MIT.EDU", &realm, &clock);
  SimHost b("B.MIT.EDU", &realm, &clock);
  HostDirectory directory;
  directory.Register(&a);
  directory.Register(&b);
  EXPECT_EQ(&a, directory.Find("A.MIT.EDU"));
  EXPECT_EQ(&b, directory.Find("B.MIT.EDU"));
  EXPECT_EQ(nullptr, directory.Find("C.MIT.EDU"));
  EXPECT_EQ(2u, directory.size());
}

TEST(UpdateClientTest, NullHostIsSoftConnFailure) {
  SimulatedClock clock(0);
  KerberosRealm realm(&clock);
  realm.AddPrincipal("moira.dcm", "pw");
  UpdateClient client(&realm, "moira.dcm", "pw");
  UpdateOutcome outcome = client.Update(nullptr, "/t", "p", "s");
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_FALSE(outcome.hard);
}

}  // namespace
}  // namespace moira
