// Tests for the archive container, the simulated server hosts, and the
// Moira-to-server update protocol (paper section 5.9).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/comerr/moira_errors.h"
#include "src/common/checksum.h"
#include "src/common/clock.h"
#include "src/krb/kerberos.h"
#include "src/update/archive.h"
#include "src/update/sim_host.h"
#include "src/update/update_client.h"

namespace moira {
namespace {

TEST(Archive, RoundTrip) {
  Archive archive;
  archive.Add("passwd.db", "contents-1");
  archive.Add("group.db", std::string("\0binary\xff", 8));
  archive.Add("empty", "");
  std::string bytes = archive.Serialize();
  std::optional<Archive> back = Archive::Parse(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(3u, back->size());
  EXPECT_EQ("contents-1", *back->Find("passwd.db"));
  EXPECT_EQ(std::string("\0binary\xff", 8), *back->Find("group.db"));
  EXPECT_EQ("", *back->Find("empty"));
  EXPECT_EQ(nullptr, back->Find("missing"));
  EXPECT_EQ(18u, back->ContentBytes());
}

TEST(Archive, AddReplacesSameName) {
  Archive archive;
  archive.Add("f", "v1");
  archive.Add("f", "v2");
  EXPECT_EQ(1u, archive.size());
  EXPECT_EQ("v2", *archive.Find("f"));
}

TEST(Archive, ParseRejectsCorruption) {
  Archive archive;
  archive.Add("f", "data");
  std::string bytes = archive.Serialize();
  EXPECT_FALSE(Archive::Parse("").has_value());
  EXPECT_FALSE(Archive::Parse("XXXX").has_value());
  EXPECT_FALSE(Archive::Parse(bytes.substr(0, bytes.size() - 1)).has_value());
  std::string flipped = bytes;
  flipped[10] ^= 1;
  EXPECT_FALSE(Archive::Parse(flipped).has_value());
}

class SimHostTest : public ::testing::Test {
 protected:
  SimHostTest()
      : clock_(1000),
        realm_(&clock_),
        host_("SERVER-1.MIT.EDU", &realm_, &clock_),
        client_(&realm_, "moira.dcm", "pw") {
    realm_.AddPrincipal("moira.dcm", "pw");
    Archive archive;
    archive.Add("passwd.db", "passwd contents");
    archive.Add("group.db", "group contents");
    payload_ = archive.Serialize();
  }

  std::string Authenticator() {
    Ticket ticket;
    EXPECT_EQ(MR_SUCCESS,
              realm_.GetInitialTickets("moira.dcm", "pw", kUpdateServiceName, &ticket));
    return realm_.MakeAuthenticator(ticket);
  }

  SimulatedClock clock_;
  KerberosRealm realm_;
  SimHost host_;
  UpdateClient client_;
  std::string payload_;
  const std::string script_ =
      "extract passwd.db /etc/hes/passwd.db\n"
      "install /etc/hes/passwd.db\n"
      "extract group.db /etc/hes/group.db\n"
      "install /etc/hes/group.db\n"
      "exec restart_hesiod\n";
};

TEST_F(SimHostTest, FullUpdateInstallsFiles) {
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/hes.out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code) << outcome.message;
  EXPECT_EQ("passwd contents", *host_.ReadFile("/etc/hes/passwd.db"));
  EXPECT_EQ("group contents", *host_.ReadFile("/etc/hes/group.db"));
  ASSERT_EQ(1u, host_.executed_commands().size());
  EXPECT_EQ("restart_hesiod", host_.executed_commands()[0]);
  EXPECT_EQ(1, host_.update_count());
  // The transferred payload remains at the target path; temp files are gone.
  EXPECT_TRUE(host_.HasFile("/tmp/hes.out"));
  EXPECT_FALSE(host_.HasFile("/etc/hes/passwd.db.moira_update"));
}

TEST_F(SimHostTest, InstallKeepsBackupAndRevertRestores) {
  host_.WriteFileDirect("/etc/hes/passwd.db", "old contents");
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/hes.out", payload_, script_);
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("old contents", *host_.ReadFile("/etc/hes/passwd.db.moira_backup"));
  // Revert puts the old file back (paper: "may be useful in the case of an
  // erroneous installation").
  outcome = client_.Update(&host_, "/tmp/hes.out", payload_,
                           "revert /etc/hes/passwd.db\n");
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("old contents", *host_.ReadFile("/etc/hes/passwd.db"));
}

TEST_F(SimHostTest, SyncdirInstallsAllMembers) {
  UpdateOutcome outcome =
      client_.Update(&host_, "/tmp/out", payload_, "syncdir /site/moira\n");
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("passwd contents", *host_.ReadFile("/site/moira/passwd.db"));
  EXPECT_EQ("group contents", *host_.ReadFile("/site/moira/group.db"));
}

TEST_F(SimHostTest, ChecksumMismatchDetected) {
  ASSERT_EQ(MR_SUCCESS, host_.BeginSession(Authenticator()));
  EXPECT_EQ(MR_UPDATE_CKSUM,
            host_.ReceiveFile("/tmp/out", payload_, Crc32(payload_) ^ 0xdeadbeef));
}

TEST_F(SimHostTest, BadAuthenticatorIsHardFailure) {
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ(MR_BAD_AUTH, host_.BeginSession("garbage"));
}

TEST_F(SimHostTest, RefusedConnectionIsSoft) {
  host_.SetFailMode(HostFailMode::kRefuseConnection);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_FALSE(outcome.hard);
  // The very next attempt succeeds (fail mode consumed).
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
}

TEST_F(SimHostTest, CrashDuringTransferLeavesPartialTemp) {
  host_.SetFailMode(HostFailMode::kCrashDuringTransfer);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_XFER, outcome.code);
  EXPECT_FALSE(outcome.hard);
  EXPECT_TRUE(host_.crashed());
  // The partial temp file exists but is incomplete.
  const std::string* partial = host_.ReadFile("/tmp/out.moira_update");
  ASSERT_NE(nullptr, partial);
  EXPECT_LT(partial->size(), payload_.size());
  // While down, connections fail.
  EXPECT_EQ(MR_UPDATE_CONN, host_.BeginSession(Authenticator()));
  // After reboot, the retried update deletes the stale temp and succeeds.
  host_.Reboot();
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("passwd contents", *host_.ReadFile("/etc/hes/passwd.db"));
}

TEST_F(SimHostTest, CrashBeforeExecuteRecoversOnRetry) {
  host_.SetFailMode(HostFailMode::kCrashBeforeExecute);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_FALSE(outcome.hard);
  EXPECT_FALSE(host_.HasFile("/etc/hes/passwd.db"));  // nothing installed
  host_.Reboot();
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
}

TEST_F(SimHostTest, CrashDuringExecuteLeavesPartialInstallThatRetries) {
  host_.SetFailMode(HostFailMode::kCrashDuringExecute);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  // Extra installations are not harmful: the retry re-sends everything.
  host_.Reboot();
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ("passwd contents", *host_.ReadFile("/etc/hes/passwd.db"));
  EXPECT_EQ("group contents", *host_.ReadFile("/etc/hes/group.db"));
}

TEST_F(SimHostTest, ScriptErrorIsHard) {
  host_.SetFailMode(HostFailMode::kScriptError);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
  EXPECT_TRUE(outcome.hard);
}

TEST_F(SimHostTest, UnknownInstructionIsHard) {
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, "frobnicate x\n");
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
  EXPECT_TRUE(outcome.hard);
  EXPECT_NE(outcome.message.find("unknown instruction"), std::string::npos);
}

TEST_F(SimHostTest, ExecHandlerFailureIsHard) {
  host_.RegisterCommand("restart_hesiod", [](SimHost&) { return 1; });
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
  EXPECT_TRUE(outcome.hard);
}

TEST_F(SimHostTest, SignalReadsPidFileAtExecutionTime) {
  host_.WriteFileDirect("/var/run/named.pid", "123");
  UpdateOutcome outcome =
      client_.Update(&host_, "/tmp/out", payload_, "signal /var/run/named.pid\n");
  ASSERT_EQ(MR_SUCCESS, outcome.code);
  ASSERT_EQ(1u, host_.signals_sent().size());
  // Missing pid file fails at execution time.
  outcome = client_.Update(&host_, "/tmp/out", payload_, "signal /var/run/gone.pid\n");
  EXPECT_EQ(MR_UPDATE_EXEC, outcome.code);
}

TEST_F(SimHostTest, ReplayedUpdateAuthenticatorRejected) {
  std::string authenticator = Authenticator();
  ASSERT_EQ(MR_SUCCESS, host_.BeginSession(authenticator));
  EXPECT_EQ(MR_BAD_AUTH, host_.BeginSession(authenticator));
}

TEST_F(SimHostTest, FlakyHostHealsAfterConfiguredFailures) {
  host_.SetFailMode(HostFailMode::kFlaky, 2);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_FALSE(outcome.hard);
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
  EXPECT_EQ(3, host_.connect_attempts());
}

TEST_F(SimHostTest, InPassRetriesHealFlakyHost) {
  host_.SetFailMode(HostFailMode::kFlaky, 2);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 5;
  client_.set_retry_policy(policy);
  client_.set_sleep_fn([this](UnixTime s) { clock_.Advance(s); });
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code) << outcome.message;
  EXPECT_EQ(3, outcome.attempts);
  EXPECT_EQ(5 + 10, outcome.elapsed);  // the two backoffs, on the sim clock
  EXPECT_EQ(UpdatePhase::kDone, outcome.phase);
}

TEST_F(SimHostTest, SingleAttemptSuppressesRetries) {
  host_.SetFailMode(HostFailMode::kFlaky, 2);
  RetryPolicy policy;
  policy.max_attempts = 4;
  client_.set_retry_policy(policy);
  UpdateOutcome outcome =
      client_.Update(&host_, "/tmp/out", payload_, script_, /*single_attempt=*/true);
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_EQ(1, outcome.attempts);
}

TEST_F(SimHostTest, SlowTransferTripsPhaseDeadline) {
  host_.AttachSimClock(&clock_);
  host_.SetSlowDelay(10 * kSecondsPerMinute);
  host_.SetFailMode(HostFailMode::kSlow);
  UpdateDeadlines deadlines;
  deadlines.transfer = 5 * kSecondsPerMinute;
  client_.set_deadlines(deadlines);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_TIMEOUT, outcome.code);
  EXPECT_FALSE(outcome.hard);
  EXPECT_EQ(UpdatePhase::kTransfer, outcome.phase);
  // Without a deadline the same stall is merely slow, not an error.
  host_.SetFailMode(HostFailMode::kSlow);
  client_.set_deadlines(UpdateDeadlines{});
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code) << outcome.message;
}

TEST_F(SimHostTest, CorruptTransferIsSoftChecksumFailure) {
  host_.SetFailMode(HostFailMode::kCorruptTransfer);
  UpdateOutcome outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_UPDATE_CKSUM, outcome.code);
  EXPECT_FALSE(outcome.hard);
  EXPECT_EQ(UpdatePhase::kTransfer, outcome.phase);
  outcome = client_.Update(&host_, "/tmp/out", payload_, script_);
  EXPECT_EQ(MR_SUCCESS, outcome.code);
}

TEST_F(SimHostTest, TicketCachedForItsLifetime) {
  SimHost other("SERVER-2.MIT.EDU", &realm_, &clock_);
  EXPECT_EQ(0, client_.ticket_requests());
  ASSERT_EQ(MR_SUCCESS, client_.Update(&host_, "/tmp/out", payload_, script_).code);
  ASSERT_EQ(MR_SUCCESS, client_.Update(&other, "/tmp/out", payload_, script_).code);
  ASSERT_EQ(MR_SUCCESS, client_.Update(&host_, "/tmp/out", payload_, script_).code);
  // One KDC round trip covers the whole fleet scan.
  EXPECT_EQ(1, client_.ticket_requests());
  // Once the ticket expires the next update refreshes it.
  clock_.Advance(KerberosRealm::kDefaultLifetime + 1);
  ASSERT_EQ(MR_SUCCESS, client_.Update(&host_, "/tmp/out", payload_, script_).code);
  EXPECT_EQ(2, client_.ticket_requests());
}

TEST(FaultPlanTest, SameSeedReplaysSameSchedule) {
  SimulatedClock clock(0);
  KerberosRealm realm(&clock);
  auto make_fleet = [&] {
    std::vector<std::unique_ptr<SimHost>> fleet;
    for (int i = 0; i < 20; ++i) {
      fleet.push_back(std::make_unique<SimHost>("H" + std::to_string(i) + ".MIT.EDU",
                                                &realm, &clock));
    }
    return fleet;
  };
  std::vector<std::unique_ptr<SimHost>> fleet_a = make_fleet();
  std::vector<std::unique_ptr<SimHost>> fleet_b = make_fleet();
  FaultPlanSpec spec;
  spec.seed = 7;
  spec.flaky_permille = 300;
  spec.down_permille = 150;
  spec.corrupt_permille = 100;
  FaultPlan plan(spec);
  std::set<HostFailMode> seen;
  for (int pass = 0; pass < 5; ++pass) {
    plan.ArmPass(fleet_a, pass);
    plan.ArmPass(fleet_b, pass);
    for (size_t i = 0; i < fleet_a.size(); ++i) {
      EXPECT_EQ(fleet_a[i]->fail_mode(), fleet_b[i]->fail_mode());
      EXPECT_EQ(fleet_a[i]->fail_count(), fleet_b[i]->fail_count());
      seen.insert(fleet_a[i]->fail_mode());
    }
  }
  // The draw actually injects a mix of faults (and leaves some hosts healthy).
  EXPECT_TRUE(seen.contains(HostFailMode::kNone));
  EXPECT_GE(seen.size(), 3u);
}

TEST(HostDirectoryTest, RegisterAndFind) {
  SimulatedClock clock(0);
  KerberosRealm realm(&clock);
  SimHost a("A.MIT.EDU", &realm, &clock);
  SimHost b("B.MIT.EDU", &realm, &clock);
  HostDirectory directory;
  directory.Register(&a);
  directory.Register(&b);
  EXPECT_EQ(&a, directory.Find("A.MIT.EDU"));
  EXPECT_EQ(&b, directory.Find("B.MIT.EDU"));
  EXPECT_EQ(nullptr, directory.Find("C.MIT.EDU"));
  EXPECT_EQ(2u, directory.size());
}

TEST(UpdateClientTest, NullHostIsHardConnFailure) {
  // A host absent from the directory is a configuration error, not a
  // transient outage: retrying it every pass forever would never succeed.
  SimulatedClock clock(0);
  KerberosRealm realm(&clock);
  realm.AddPrincipal("moira.dcm", "pw");
  UpdateClient client(&realm, "moira.dcm", "pw");
  RetryPolicy retry;
  retry.max_attempts = 5;  // must NOT be consumed on a missing host
  client.set_retry_policy(retry);
  UpdateOutcome outcome = client.Update(nullptr, "/t", "p", "s");
  EXPECT_EQ(MR_UPDATE_CONN, outcome.code);
  EXPECT_TRUE(outcome.hard);
  EXPECT_EQ(0, outcome.attempts);
  EXPECT_EQ(UpdatePhase::kNone, outcome.phase);
}

}  // namespace
}  // namespace moira
