// End-to-end tests for the downstream consumers of DCM output: the NFS
// fileserver substrate (locker creation, quotas, credentials) and the Zephyr
// server substrate (ACL enforcement) — paper section 5.8.2.
#include "src/dcm/dcm.h"
#include "src/nfsd/nfs_server.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_server.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class ConsumerTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    logins_ = builder.active_logins();
    nfs_names_ = builder.nfs_server_names();
    zephyr_names_ = builder.zephyr_server_names();
    zephyr_bus_ = std::make_unique<ZephyrBus>(&clock_);
    hosts_ = CreateSimHosts(*mc_, realm_.get(), &directory_);
    dcm_ = std::make_unique<Dcm>(mc_.get(), realm_.get(), zephyr_bus_.get(), &directory_);
    ConfigureStandardServices(dcm_.get());
    // Attach the real consumers to the install scripts' exec commands.
    for (const std::string& name : nfs_names_) {
      auto server = std::make_unique<NfsServerSim>(directory_.Find(name));
      InstallNfsUpdateCommand(directory_.Find(name), server.get());
      nfs_servers_.emplace(name, std::move(server));
    }
    for (const std::string& name : zephyr_names_) {
      auto server = std::make_unique<ZephyrServerSim>(directory_.Find(name));
      InstallZephyrReloadCommand(directory_.Find(name), server.get());
      zephyr_servers_.emplace(name, std::move(server));
    }
    clock_.Advance(kSecondsPerDay);
  }

  NfsServerSim& Nfs(const std::string& name) { return *nfs_servers_.at(name); }
  ZephyrServerSim& Zephyr(const std::string& name) { return *zephyr_servers_.at(name); }

  std::vector<std::string> logins_;
  std::vector<std::string> nfs_names_;
  std::vector<std::string> zephyr_names_;
  std::unique_ptr<ZephyrBus> zephyr_bus_;
  HostDirectory directory_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::map<std::string, std::unique_ptr<NfsServerSim>> nfs_servers_;
  std::map<std::string, std::unique_ptr<ZephyrServerSim>> zephyr_servers_;
  std::unique_ptr<Dcm> dcm_;
};

TEST_F(ConsumerTest, LockersCreatedWithOwnershipAndQuota) {
  dcm_->RunOnce();
  // Every active user's home locker exists on their fileserver with the
  // right uid/gid/type and quota.
  int found = 0;
  for (const std::string& login : logins_) {
    RowRef fs = mc_->FilesysByLabel(login);
    ASSERT_EQ(MR_SUCCESS, fs.code);
    RowRef mach = mc_->ExactOne(
        mc_->machine(), "mach_id",
        Value(MoiraContext::IntCell(mc_->filesys(), fs.row, "mach_id")), MR_MACHINE);
    const std::string& server_name =
        MoiraContext::StrCell(mc_->machine(), mach.row, "name");
    NfsServerSim& server = Nfs(server_name);
    const std::string& server_dir = MoiraContext::StrCell(mc_->filesys(), fs.row, "name");
    const NfsLocker* locker = server.FindLocker(server_dir);
    ASSERT_NE(nullptr, locker) << server_dir;
    EXPECT_EQ("HOMEDIR", locker->type);
    RowRef user = mc_->UserByLogin(login);
    int64_t uid = MoiraContext::IntCell(mc_->users(), user.row, "uid");
    EXPECT_EQ(uid, locker->uid);
    EXPECT_EQ(300, server.QuotaFor(uid).value_or(-1));
    ++found;
  }
  EXPECT_EQ(static_cast<int>(logins_.size()), found);
}

TEST_F(ConsumerTest, HomedirGetsDefaultInitFiles) {
  dcm_->RunOnce();
  RowRef fs = mc_->FilesysByLabel(logins_[0]);
  RowRef mach = mc_->ExactOne(
      mc_->machine(), "mach_id",
      Value(MoiraContext::IntCell(mc_->filesys(), fs.row, "mach_id")), MR_MACHINE);
  SimHost* host = directory_.Find(MoiraContext::StrCell(mc_->machine(), mach.row, "name"));
  const std::string& server_dir = MoiraContext::StrCell(mc_->filesys(), fs.row, "name");
  EXPECT_TRUE(host->HasFile(server_dir + "/.cshrc"));
  EXPECT_TRUE(host->HasFile(server_dir + "/.login"));
}

TEST_F(ConsumerTest, LockerCreationIsIdempotent) {
  dcm_->RunOnce();
  NfsServerSim& server = Nfs(nfs_names_[0]);
  int created = server.lockers_created();
  ASSERT_GT(created, 0);
  // A user customizes their init file; a forced re-update must not clobber
  // it or re-create the locker.
  RowRef fs = mc_->FilesysByLabel(logins_[0]);
  const std::string& dir = MoiraContext::StrCell(mc_->filesys(), fs.row, "name");
  RowRef mach = mc_->ExactOne(
      mc_->machine(), "mach_id",
      Value(MoiraContext::IntCell(mc_->filesys(), fs.row, "mach_id")), MR_MACHINE);
  SimHost* host = directory_.Find(MoiraContext::StrCell(mc_->machine(), mach.row, "name"));
  host->WriteFileDirect(dir + "/.cshrc", "# my customizations\n");
  clock_.Advance(kSecondsPerMinute);
  for (const std::string& name : nfs_names_) {
    ASSERT_EQ(MR_SUCCESS, RunRoot("set_server_host_override", {"NFS", name}));
  }
  dcm_->RunOnce();
  if (host->name() == nfs_names_[0]) {
    EXPECT_EQ(created, server.lockers_created());
  }
  EXPECT_EQ("# my customizations\n", *host->ReadFile(dir + "/.cshrc"));
}

TEST_F(ConsumerTest, CredentialsListActiveUsersOnly) {
  dcm_->RunOnce();
  NfsServerSim& server = Nfs(nfs_names_[0]);
  for (const std::string& login : logins_) {
    EXPECT_TRUE(server.HasCredential(login)) << login;
  }
  EXPECT_FALSE(server.HasCredential("no-such-user"));
  // Credentials carry the user's gid list.
  const NfsCredential* credential = server.CredentialFor(logins_[0]);
  ASSERT_NE(nullptr, credential);
  EXPECT_FALSE(credential->gids.empty());
}

TEST_F(ConsumerTest, QuotaChangeReachesSetquota) {
  dcm_->RunOnce();
  clock_.Advance(kSecondsPerMinute);
  const std::string& login = logins_[0];
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_nfs_quota", {login, login, "750"}));
  clock_.Advance(13 * kSecondsPerHour);
  dcm_->RunOnce();
  RowRef user = mc_->UserByLogin(login);
  int64_t uid = MoiraContext::IntCell(mc_->users(), user.row, "uid");
  RowRef fs = mc_->FilesysByLabel(login);
  RowRef mach = mc_->ExactOne(
      mc_->machine(), "mach_id",
      Value(MoiraContext::IntCell(mc_->filesys(), fs.row, "mach_id")), MR_MACHINE);
  const std::string& server_name = MoiraContext::StrCell(mc_->machine(), mach.row, "name");
  EXPECT_EQ(750, Nfs(server_name).QuotaFor(uid).value_or(-1));
}

TEST_F(ConsumerTest, ZephyrAclsLoadedOnAllServers) {
  dcm_->RunOnce();
  for (const std::string& name : zephyr_names_) {
    EXPECT_EQ(1, Zephyr(name).reload_count()) << name;
    EXPECT_EQ(6u, Zephyr(name).class_count()) << name;  // the 6 site classes
  }
}

TEST_F(ConsumerTest, ZephyrTransmitEnforcement) {
  dcm_->RunOnce();
  ZephyrServerSim& server = Zephyr(zephyr_names_[0]);
  // The site builder gives zclass-1 a LIST xmt ace, zclass-2 a USER ace,
  // zclass-3 NONE (wildcard).
  const ZephyrClassAcl* open_class = server.FindClass("zclass-3");
  ASSERT_NE(nullptr, open_class);
  EXPECT_TRUE(server.MayTransmit("zclass-3", "anyone@ATHENA.MIT.EDU"));
  const ZephyrClassAcl* user_class = server.FindClass("zclass-2");
  ASSERT_NE(nullptr, user_class);
  ASSERT_EQ(1u, user_class->xmt.principals.size());
  std::string allowed = *user_class->xmt.principals.begin();
  EXPECT_TRUE(server.MayTransmit("zclass-2", allowed));
  EXPECT_FALSE(server.MayTransmit("zclass-2", "someone-else@ATHENA.MIT.EDU"));
  // Unknown classes are uncontrolled.
  EXPECT_TRUE(server.MayTransmit("uncontrolled-class", "anyone@X"));
}

TEST_F(ConsumerTest, AclMembershipChangePropagatesToEnforcement) {
  dcm_->RunOnce();
  ZephyrServerSim& server = Zephyr(zephyr_names_[0]);
  // zclass-1's xmt ace is a LIST; add a user to that list and the next DCM
  // interval changes what the zephyr server enforces.
  const ZephyrClassAcl* acl = server.FindClass("zclass-1");
  ASSERT_NE(nullptr, acl);
  const std::string& newcomer = logins_[3];
  std::string principal = newcomer + "@ATHENA.MIT.EDU";
  if (server.MayTransmit("zclass-1", principal)) {
    GTEST_SKIP() << "picked user already on the ACL list";
  }
  clock_.Advance(kSecondsPerMinute);
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_zephyr_class", {"zclass-1"}, &tuples));
  const std::string& list_name = tuples[0][2];
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {list_name, "USER", newcomer}));
  clock_.Advance(25 * kSecondsPerHour);
  dcm_->RunOnce();
  EXPECT_EQ(2, server.reload_count());
  EXPECT_TRUE(server.MayTransmit("zclass-1", principal));
}

}  // namespace
}  // namespace moira
