// Unit tests for the hash table and queue abstractions (paper section 5.6.3),
// the CRC used by the update protocol, and the clocks.
#include <gtest/gtest.h>

#include <set>

#include "src/common/checksum.h"
#include "src/common/clock.h"
#include "src/common/hash_table.h"
#include "src/common/queue.h"
#include "src/common/random.h"
#include "src/common/retry.h"

namespace moira {
namespace {

TEST(HashTable, StoreFetchRemove) {
  MrHashTable<int> table;
  EXPECT_TRUE(table.empty());
  table.Store("alpha", 1);
  table.Store("beta", 2);
  EXPECT_EQ(2u, table.size());
  EXPECT_EQ(1, *table.Fetch("alpha"));
  EXPECT_EQ(2, *table.Fetch("beta"));
  EXPECT_EQ(nullptr, table.Fetch("gamma"));
  EXPECT_TRUE(table.Remove("alpha"));
  EXPECT_FALSE(table.Remove("alpha"));
  EXPECT_EQ(nullptr, table.Fetch("alpha"));
  EXPECT_EQ(1u, table.size());
}

TEST(HashTable, StoreReplacesExisting) {
  MrHashTable<std::string> table;
  table.Store("key", "old");
  table.Store("key", "new");
  EXPECT_EQ(1u, table.size());
  EXPECT_EQ("new", *table.Fetch("key"));
}

TEST(HashTable, GrowsPastInitialBuckets) {
  MrHashTable<int> table(4);
  for (int i = 0; i < 1000; ++i) {
    table.Store("key" + std::to_string(i), i);
  }
  EXPECT_EQ(1000u, table.size());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(nullptr, table.Fetch("key" + std::to_string(i)));
    EXPECT_EQ(i, *table.Fetch("key" + std::to_string(i)));
  }
}

TEST(HashTable, ForEachVisitsEverything) {
  MrHashTable<int> table;
  for (int i = 0; i < 50; ++i) {
    table.Store("k" + std::to_string(i), i);
  }
  std::set<int> seen;
  table.ForEach([&](const std::string&, int& v) { seen.insert(v); });
  EXPECT_EQ(50u, seen.size());
}

TEST(HashTable, ClearEmpties) {
  MrHashTable<int> table;
  table.Store("a", 1);
  table.Clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(nullptr, table.Fetch("a"));
}

TEST(Queue, FifoOrder) {
  MrQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(3u, queue.size());
  EXPECT_EQ(1, *queue.Front());
  EXPECT_EQ(1, queue.Pop().value());
  EXPECT_EQ(2, queue.Pop().value());
  EXPECT_EQ(3, queue.Pop().value());
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(Queue, GrowsThroughWraparound) {
  MrQueue<int> queue;
  // Interleave pushes and pops so head wraps the ring repeatedly.
  int next_out = 0;
  int next_in = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 7; ++i) {
      queue.Push(next_in++);
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(next_out++, queue.Pop().value());
    }
  }
  while (!queue.empty()) {
    ASSERT_EQ(next_out++, queue.Pop().value());
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Crc32, KnownVectors) {
  // Standard test vector for CRC-32/IEEE.
  EXPECT_EQ(0xCBF43926u, Crc32("123456789"));
  EXPECT_EQ(0u, Crc32(""));
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::string data = "the athena service management system";
  uint32_t one_shot = Crc32(data);
  uint32_t incremental = 0;
  for (size_t i = 0; i < data.size(); i += 5) {
    incremental = Crc32Update(incremental, std::string_view(data).substr(i, 5));
  }
  EXPECT_EQ(one_shot, incremental);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(128, 'x');
  uint32_t before = Crc32(data);
  data[64] ^= 1;
  EXPECT_NE(before, Crc32(data));
}

TEST(SimulatedClock, AdvanceAndSet) {
  SimulatedClock clock(100);
  EXPECT_EQ(100, clock.Now());
  clock.Advance(50);
  EXPECT_EQ(150, clock.Now());
  clock.Set(7);
  EXPECT_EQ(7, clock.Now());
}

TEST(SystemClock, LooksLikeWallTime) {
  SystemClock clock;
  // Any time after 2020 and before 2100.
  EXPECT_GT(clock.Now(), 1577836800);
  EXPECT_LT(clock.Now(), 4102444800);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  SplitMix64 c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(SplitMix64, BoundsRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
    int64_t v = rng.Between(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}


TEST(RetryController, ExhaustsAttemptBudget) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 4;
  policy.multiplier = 2;
  RetryController retry(policy, &clock);
  EXPECT_EQ(4, retry.RecordFailure());   // before attempt 2
  clock.Advance(4);
  EXPECT_EQ(8, retry.RecordFailure());   // before attempt 3
  clock.Advance(8);
  EXPECT_EQ(-1, retry.RecordFailure());  // budget spent
  EXPECT_EQ(3, retry.attempts());
  EXPECT_EQ(12, retry.elapsed());
}

TEST(RetryController, SingleAttemptPolicyNeverRetries) {
  SimulatedClock clock(0);
  RetryController retry(RetryPolicy{}, &clock);
  EXPECT_EQ(-1, retry.RecordFailure());
}

TEST(RetryController, BackoffCapsAtMax) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = 100;
  policy.multiplier = 10;
  policy.max_backoff = 300;
  RetryController retry(policy, &clock);
  EXPECT_EQ(100, retry.RecordFailure());
  EXPECT_EQ(300, retry.RecordFailure());  // 1000 capped to 300
  EXPECT_EQ(300, retry.RecordFailure());
}

TEST(RetryController, DeadlineRefusesOverrunningWait) {
  SimulatedClock clock(0);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff = 30;
  policy.multiplier = 1;
  policy.deadline = 70;
  RetryController retry(policy, &clock);
  EXPECT_EQ(30, retry.RecordFailure());
  clock.Advance(30);
  EXPECT_EQ(30, retry.RecordFailure());  // ends exactly at 60 < 70
  clock.Advance(30);
  EXPECT_TRUE(retry.WithinDeadline());
  EXPECT_EQ(-1, retry.RecordFailure());  // 60 + 30 >= 70: refused
  clock.Advance(10);
  EXPECT_FALSE(retry.WithinDeadline());
}

TEST(RetryController, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = 1000;
  policy.multiplier = 1;
  policy.max_backoff = 1000;     // keep the base flat across attempts
  policy.jitter_permille = 200;  // scale in [0.8, 1.2]
  policy.seed = 42;
  SimulatedClock clock_a(0);
  SimulatedClock clock_b(0);
  RetryController a(policy, &clock_a);
  RetryController b(policy, &clock_b);
  bool varied = false;
  for (int i = 0; i < 40; ++i) {
    UnixTime wa = a.RecordFailure();
    EXPECT_EQ(wa, b.RecordFailure());  // same seed, same schedule
    EXPECT_GE(wa, 800);
    EXPECT_LE(wa, 1200);
    if (wa != 1000) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace moira
