// Integration tests for the Moira server and application library over the
// loopback transport (paper sections 5.4 - 5.6).
#include <memory>

#include "src/client/client.h"
#include "src/server/server.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class ServerClientTest : public MoiraEnv {
 protected:
  void SetUp() override {
    server_ = std::make_unique<MoiraServer>(mc_.get(), realm_.get());
    AddActiveUser("jrandom", 100);
    realm_->AddPrincipal("jrandom", "hunter2");
  }

  MrClient MakeClient() {
    return MrClient([this] { return std::make_unique<LoopbackChannel>(server_.get()); });
  }

  std::unique_ptr<MoiraServer> server_;
};

TEST_F(ServerClientTest, ConnectNoopDisconnect) {
  MrClient client = MakeClient();
  EXPECT_EQ(MR_NOT_CONNECTED, client.Noop());
  EXPECT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_ALREADY_CONNECTED, client.Connect());
  EXPECT_EQ(MR_SUCCESS, client.Noop());
  EXPECT_EQ(MR_SUCCESS, client.Disconnect());
  EXPECT_EQ(MR_NOT_CONNECTED, client.Disconnect());
}

TEST_F(ServerClientTest, UnauthenticatedWorldQueryWorks) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  std::vector<Tuple> tuples;
  EXPECT_EQ(MR_SUCCESS, client.Query("get_all_logins", {}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  EXPECT_EQ(1u, tuples.size());
}

TEST_F(ServerClientTest, AccessPathStatsAggregateOverTables) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  client.SetKerberosIdentity(realm_.get(), "jrandom", "hunter2");
  ASSERT_EQ(MR_SUCCESS, client.Auth("testapp"));
  MoiraServer::AccessPathStats before = server_->access_path_stats();
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, client.Query("get_user_by_login", {"jrandom"}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(1u, tuples.size());
  MoiraServer::AccessPathStats after = server_->access_path_stats();
  // The login lookup is answered by the users login index, not a scan.
  EXPECT_GT(after.index_hits, before.index_hits);
  EXPECT_GT(after.rows_emitted, before.rows_emitted);
  EXPECT_EQ(after.full_scans, before.full_scans);
}

TEST_F(ServerClientTest, AccessPathStatsExposeClosureCacheCounters) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  client.SetKerberosIdentity(realm_.get(), "jrandom", "hunter2");
  ASSERT_EQ(MR_SUCCESS, client.Auth("testapp"));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_list", {"jlist", "1", "0", "0", "1", "0", "-1",
                                             "NONE", "NONE", "d"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_member_to_list", {"jlist", "USER", "jrandom"}));
  MoiraServer::AccessPathStats before = server_->access_path_stats();
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(MR_SUCCESS,
              client.Query("get_lists_of_member", {"RUSER", "jrandom"}, [](Tuple) {}));
  }
  MoiraServer::AccessPathStats after = server_->access_path_stats();
  // The first recursive expansion computes and memoizes jrandom's list
  // closure; the repeat is served from the cache.
  EXPECT_GT(after.closure_cache_misses, before.closure_cache_misses);
  EXPECT_GT(after.closure_cache_hits, before.closure_cache_hits);
}

TEST_F(ServerClientTest, UnauthenticatedMutationDenied) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_PERM, client.Query("add_machine", {"m.mit.edu", "VAX"}, [](Tuple) {}));
}

TEST_F(ServerClientTest, AuthEstablishesIdentity) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  // No identity configured: can't find ticket.
  EXPECT_EQ(MR_KRB_NO_TKT, client.Auth("testapp"));
  client.SetKerberosIdentity(realm_.get(), "jrandom", "wrong");
  EXPECT_EQ(MR_KRB_BAD_PASSWORD, client.Auth("testapp"));
  client.SetKerberosIdentity(realm_.get(), "jrandom", "hunter2");
  ASSERT_EQ(MR_SUCCESS, client.Auth("testapp"));
  // Self-service now works.
  EXPECT_EQ(MR_SUCCESS,
            client.Query("update_user_shell", {"jrandom", "/bin/sh"}, [](Tuple) {}));
  EXPECT_EQ(1u, server_->stats().auth_successes);
}

TEST_F(ServerClientTest, AccessRequestDoesNotExecute) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  client.SetKerberosIdentity(realm_.get(), "jrandom", "hunter2");
  ASSERT_EQ(MR_SUCCESS, client.Auth("testapp"));
  EXPECT_EQ(MR_SUCCESS, client.Access("update_user_shell", {"jrandom", "/bin/zsh"}));
  // The shell was not actually changed.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_user_by_login", {"jrandom"}, &tuples));
  EXPECT_NE("/bin/zsh", tuples[0][2]);
  EXPECT_EQ(MR_PERM, client.Access("add_machine", {"m.mit.edu", "VAX"}));
}

TEST_F(ServerClientTest, AccessCacheHitsOnRepeat) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(MR_PERM, client.Access("add_machine", {"m.mit.edu", "VAX"}));
  }
  EXPECT_EQ(5u, server_->stats().access_checks);
  EXPECT_EQ(4u, server_->stats().access_cache_hits);
}

TEST_F(ServerClientTest, AccessCacheInvalidatedByMutation) {
  MrClient admin = MakeClient();
  ASSERT_EQ(MR_SUCCESS, admin.Connect());
  realm_->AddPrincipal("root", "rootpw");
  admin.SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, admin.Auth("admin"));
  ASSERT_EQ(MR_SUCCESS, admin.Access("add_machine", {"m.mit.edu", "VAX"}));
  uint64_t hits_before = server_->stats().access_cache_hits;
  // A mutation bumps the epoch; the next check must re-evaluate.
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"m.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, admin.Access("add_machine", {"m2.mit.edu", "VAX"}));
  EXPECT_EQ(hits_before, server_->stats().access_cache_hits);
}

TEST_F(ServerClientTest, TupleStreamingDeliversAll) {
  for (int i = 0; i < 20; ++i) {
    AddActiveUser("user" + std::to_string(i), 200 + i);
  }
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  int count = 0;
  EXPECT_EQ(MR_SUCCESS, client.Query("get_all_logins", {}, [&](Tuple) { ++count; }));
  EXPECT_EQ(21, count);
}

TEST_F(ServerClientTest, QueryErrorsPropagate) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  EXPECT_EQ(MR_NO_HANDLE, client.Query("bogus", {}, [](Tuple) {}));
  EXPECT_EQ(MR_NO_MATCH, client.Query("get_machine", {"NONESUCH"}, [](Tuple) {}));
}

TEST_F(ServerClientTest, ListUsersReportsConnections) {
  MrClient a = MakeClient();
  MrClient b = MakeClient();
  ASSERT_EQ(MR_SUCCESS, a.Connect());
  ASSERT_EQ(MR_SUCCESS, b.Connect());
  a.SetKerberosIdentity(realm_.get(), "jrandom", "hunter2");
  ASSERT_EQ(MR_SUCCESS, a.Auth("app-a"));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, b.Query("_list_users", {}, [&](Tuple t) {
    tuples.push_back(std::move(t));
  }));
  ASSERT_EQ(2u, tuples.size());
  int authed = 0;
  for (const Tuple& t : tuples) {
    if (t[0] == "jrandom") {
      ++authed;
    }
  }
  EXPECT_EQ(1, authed);
}

TEST_F(ServerClientTest, VersionSkewReportedCleanly) {
  // Hand-roll a request with a higher version.
  LoopbackChannel channel(server_.get());
  MrRequest request{kMrProtocolVersion + 1, MajorRequest::kNoop, {}};
  ASSERT_EQ(MR_SUCCESS, channel.Send(EncodeRequest(request)));
  std::string payload;
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_VERSION_HIGH, DecodeReply(payload)->code);
  request.version = kMrProtocolVersion - 1;
  ASSERT_EQ(MR_SUCCESS, channel.Send(EncodeRequest(request)));
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_VERSION_LOW, DecodeReply(payload)->code);
}

TEST_F(ServerClientTest, TriggerDcmGatedByAcl) {
  bool triggered = false;
  server_->set_dcm_trigger([&] { triggered = true; });
  MrClient pleb = MakeClient();
  ASSERT_EQ(MR_SUCCESS, pleb.Connect());
  EXPECT_EQ(MR_PERM, pleb.TriggerDcm());
  EXPECT_FALSE(triggered);
  MrClient admin = MakeClient();
  realm_->AddPrincipal("root", "rootpw");
  admin.SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, admin.Connect());
  ASSERT_EQ(MR_SUCCESS, admin.Auth("ops"));
  EXPECT_EQ(MR_SUCCESS, admin.TriggerDcm());
  EXPECT_TRUE(triggered);
}

TEST_F(ServerClientTest, JournalRecordsSuccessfulChangesOnly) {
  MrClient admin = MakeClient();
  realm_->AddPrincipal("root", "rootpw");
  admin.SetKerberosIdentity(realm_.get(), "root", "rootpw");
  ASSERT_EQ(MR_SUCCESS, admin.Connect());
  ASSERT_EQ(MR_SUCCESS, admin.Auth("ops"));
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_machine", {"j1.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(MR_NOT_UNIQUE, admin.Query("add_machine", {"j1.mit.edu", "VAX"}, [](Tuple) {}));
  ASSERT_EQ(MR_SUCCESS, admin.Query("get_machine", {"*"}, [](Tuple) {}));
  ASSERT_EQ(1u, server_->journal().entries().size());
  const JournalEntry& entry = server_->journal().entries()[0];
  EXPECT_EQ("add_machine", entry.query);
  EXPECT_EQ("root", entry.principal);
  ASSERT_EQ(2u, entry.args.size());
  EXPECT_EQ("j1.mit.edu", entry.args[0]);
}

TEST_F(ServerClientTest, DirectClientBypassesKerberos) {
  // The glue library used by the DCM: same interface, root identity.
  DirectClient direct(mc_.get(), "dcm");
  EXPECT_EQ(MR_SUCCESS, direct.Query("add_machine", {"g.mit.edu", "VAX"}, [](Tuple) {}));
  EXPECT_EQ(MR_SUCCESS, direct.Access("add_machine", {"g2.mit.edu", "VAX"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_machine", {"G.MIT.EDU"}, &tuples));
  EXPECT_EQ("dcm", tuples[0][4]);  // modwith records the application
}

TEST_F(ServerClientTest, HistoricalCallbackSignature) {
  MrClient client = MakeClient();
  ASSERT_EQ(MR_SUCCESS, client.Connect());
  struct Capture {
    int calls = 0;
    int argc = 0;
  } capture;
  MrCallbackProc proc = [](int argc, const char**, void* callarg) {
    auto* c = static_cast<Capture*>(callarg);
    ++c->calls;
    c->argc = argc;
  };
  EXPECT_EQ(MR_SUCCESS, client.Query("get_all_logins", {}, WrapCallback(proc, &capture)));
  EXPECT_EQ(1, capture.calls);
  EXPECT_EQ(6, capture.argc);
}

TEST_F(ServerClientTest, ReplayedAuthenticatorRejected) {
  // Build a raw Authenticate request and send it twice.
  Ticket ticket;
  ASSERT_EQ(MR_SUCCESS,
            realm_->GetInitialTickets("jrandom", "hunter2", kMoiraServiceName, &ticket));
  std::string authenticator = realm_->MakeAuthenticator(ticket);
  LoopbackChannel channel(server_.get());
  MrRequest request{kMrProtocolVersion, MajorRequest::kAuthenticate,
                    {authenticator, "evil"}};
  std::string payload;
  ASSERT_EQ(MR_SUCCESS, channel.Send(EncodeRequest(request)));
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_SUCCESS, DecodeReply(payload)->code);
  ASSERT_EQ(MR_SUCCESS, channel.Send(EncodeRequest(request)));
  ASSERT_EQ(MR_SUCCESS, channel.Recv(&payload));
  EXPECT_EQ(MR_KRB_REPLAY, DecodeReply(payload)->code);
}

}  // namespace
}  // namespace moira
