// Full-system integration: the paper's two motivating scenarios (section 3)
// run end to end through every layer — RPC client, Moira server, database,
// DCM, update protocol, simulated hosts, and the Hesiod/mail consumers.
#include "src/client/client.h"
#include "src/dcm/dcm.h"
#include "src/hesiod/hesiod.h"
#include "src/krb/crypt.h"
#include "src/reg/regserver.h"
#include "src/server/server.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class IntegrationTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    admin_ = builder.admin_login();
    a_login_ = builder.active_logins()[0];
    hesiod_host_name_ = builder.hesiod_server_name();
    zephyr_bus_ = std::make_unique<ZephyrBus>(&clock_);
    sim_hosts_ = CreateSimHosts(*mc_, realm_.get(), &directory_);
    dcm_ = std::make_unique<Dcm>(mc_.get(), realm_.get(), zephyr_bus_.get(), &directory_);
    ConfigureStandardServices(dcm_.get());
    moira_server_ = std::make_unique<MoiraServer>(mc_.get(), realm_.get());
    moira_server_->set_dcm_trigger([this] { dcm_->RunOnce(); });
    // Attach a live hesiod server to the hesiod host's restart command.
    directory_.Find(hesiod_host_name_)
        ->RegisterCommand("restart_hesiod", [this](SimHost& host) {
          std::vector<std::string> texts;
          for (const char* file :
               {"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db",
                "passwd.db", "pobox.db", "printcap.db", "service.db", "sloc.db",
                "uid.db"}) {
            const std::string* contents =
                host.ReadFile(std::string("/etc/athena/hesiod/") + file);
            if (contents == nullptr) {
              return 1;
            }
            texts.push_back(*contents);
          }
          return hesiod_.Reload(texts) >= 0 ? 0 : 1;
        });
    clock_.Advance(kSecondsPerDay);
  }

  MrClient ClientFor(const std::string& principal, const std::string& password) {
    MrClient client(
        [this] { return std::make_unique<LoopbackChannel>(moira_server_.get()); });
    client.SetKerberosIdentity(realm_.get(), principal, password);
    return client;
  }

  std::string admin_;
  std::string a_login_;
  std::string hesiod_host_name_;
  std::unique_ptr<ZephyrBus> zephyr_bus_;
  HostDirectory directory_;
  std::vector<std::unique_ptr<SimHost>> sim_hosts_;
  std::unique_ptr<Dcm> dcm_;
  std::unique_ptr<MoiraServer> moira_server_;
  HesiodServer hesiod_;
};

// Paper section 3, example 1: the accounts administrator changes a user's
// disk quota from her workstation; the change automatically reaches the
// proper server a short time later.
TEST_F(IntegrationTest, AdminQuotaChangePropagatesToFileserver) {
  dcm_->RunOnce();  // initial propagation
  clock_.Advance(kSecondsPerMinute);
  MrClient admin = ClientFor(admin_, "pw:opsmgr");
  ASSERT_EQ(MR_SUCCESS, admin.Connect());
  ASSERT_EQ(MR_SUCCESS, admin.Auth("chquota"));
  ASSERT_EQ(MR_SUCCESS,
            admin.Query("update_nfs_quota", {a_login_, a_login_, "999"}, [](Tuple) {}));
  // The fileserver still has the old quota until the next DCM interval.
  RowRef fs = mc_->FilesysByLabel(a_login_);
  ASSERT_EQ(MR_SUCCESS, fs.code);
  RowRef mach =
      mc_->ExactOne(mc_->machine(), "mach_id",
                    Value(MoiraContext::IntCell(mc_->filesys(), fs.row, "mach_id")),
                    MR_MACHINE);
  const std::string& server_name =
      MoiraContext::StrCell(mc_->machine(), mach.row, "name");
  SimHost* server = directory_.Find(server_name);
  ASSERT_NE(nullptr, server);
  RowRef user = mc_->UserByLogin(a_login_);
  std::string uid = std::to_string(MoiraContext::IntCell(mc_->users(), user.row, "uid"));
  EXPECT_EQ(server->ReadFile("/site/moira/u1.quotas")->find(uid + " 999"),
            std::string::npos);
  // 12+ hours later the DCM regenerates and propagates NFS files.
  clock_.Advance(13 * kSecondsPerHour);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_GT(summary.hosts_updated, 0);
  EXPECT_NE(server->ReadFile("/site/moira/u1.quotas")->find(uid + " 999"),
            std::string::npos);
}

// Paper section 3, example 2: a user adds themselves to a public mailing
// list; the aliases file on the mail hub shows the change later.
TEST_F(IntegrationTest, SelfServiceMaillistReachesMailhub) {
  dcm_->RunOnce();
  clock_.Advance(kSecondsPerMinute);
  MrClient admin = ClientFor(admin_, "pw:opsmgr");
  ASSERT_EQ(MR_SUCCESS, admin.Connect());
  ASSERT_EQ(MR_SUCCESS, admin.Auth("listmaint"));
  ASSERT_EQ(MR_SUCCESS, admin.Query("add_list",
                                    {"public-chatter", "1", "1", "0", "1", "0", "-1",
                                     "NONE", "NONE", "open list"},
                                    [](Tuple) {}));
  // The user joins from any workstation, authenticated as themselves.
  realm_->AddPrincipal(a_login_, "userpw");
  MrClient user = ClientFor(a_login_, "userpw");
  ASSERT_EQ(MR_SUCCESS, user.Connect());
  ASSERT_EQ(MR_SUCCESS, user.Auth("mailmaint"));
  ASSERT_EQ(MR_SUCCESS, user.Query("add_member_to_list",
                                   {"public-chatter", "USER", a_login_}, [](Tuple) {}));
  // Sometime later the mailing lists file on the central mail hub updates.
  clock_.Advance(25 * kSecondsPerHour);
  dcm_->RunOnce();
  const std::string* aliases =
      directory_.Find("ATHENA.MIT.EDU")->ReadFile("/usr/lib/moira.staged/aliases");
  ASSERT_NE(nullptr, aliases);
  EXPECT_NE(aliases->find("public-chatter: " + a_login_), std::string::npos);
}

// Registration followed by propagation: the lag the paper describes ("the
// user will not benefit from this allocation for a maximum of six hours").
TEST_F(IntegrationTest, NewRegistrationAppearsInHesiodAfterInterval) {
  dcm_->RunOnce();
  EXPECT_EQ(1, hesiod_.reload_count());
  clock_.Advance(kSecondsPerMinute);
  RegistrationServer reg(mc_.get(), realm_.get());
  UserregClient userreg(&reg, realm_.get());
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_user", {kUniqueLogin, "-1", "/bin/csh", "Newman",
                                             "Alice", "Q", "0",
                                             HashMitId("321-00-1234", "Alice", "Newman"),
                                             "1992"}));
  ASSERT_EQ(MR_SUCCESS, userreg.Register("Alice", "Q", "Newman", "321-00-1234",
                                         "anewman", "secret"));
  // Not yet visible in hesiod.
  EXPECT_TRUE(hesiod_.Resolve("anewman", "passwd").empty());
  // After the hesiod interval, the DCM pushes fresh files and the install
  // script restarts the server.
  clock_.Advance(7 * kSecondsPerHour);
  dcm_->RunOnce();
  EXPECT_EQ(2, hesiod_.reload_count());
  ASSERT_EQ(1u, hesiod_.Resolve("anewman", "passwd").size());
  EXPECT_FALSE(hesiod_.Resolve("anewman", "pobox").empty());
  EXPECT_FALSE(hesiod_.Resolve("anewman", "filsys").empty());
}

// Trigger_DCM through the RPC layer: the admin forces an immediate run.
TEST_F(IntegrationTest, TriggerDcmRunsImmediately) {
  MrClient admin = ClientFor(admin_, "pw:opsmgr");
  ASSERT_EQ(MR_SUCCESS, admin.Connect());
  ASSERT_EQ(MR_SUCCESS, admin.Auth("ops"));
  EXPECT_EQ(0, directory_.Find(hesiod_host_name_)->update_count());
  ASSERT_EQ(MR_SUCCESS, admin.TriggerDcm());
  EXPECT_EQ(1, directory_.Find(hesiod_host_name_)->update_count());
  // A plain user cannot trigger the DCM.
  realm_->AddPrincipal(a_login_, "userpw");
  MrClient user = ClientFor(a_login_, "userpw");
  ASSERT_EQ(MR_SUCCESS, user.Connect());
  ASSERT_EQ(MR_SUCCESS, user.Auth("sneaky"));
  EXPECT_EQ(MR_PERM, user.TriggerDcm());
}

// Hesiod serves cluster data for workstations (the save_cluster_info client).
TEST_F(IntegrationTest, WorkstationClusterLookupViaHesiod) {
  dcm_->RunOnce();
  std::vector<std::string> data = hesiod_.Resolve("W1.MIT.EDU", "cluster");
  ASSERT_FALSE(data.empty());
  bool has_zephyr = false;
  for (const std::string& item : data) {
    if (item.find("zephyr ") == 0) {
      has_zephyr = true;
    }
  }
  EXPECT_TRUE(has_zephyr);
}

// A machine in two clusters resolves through its pseudo-cluster to the union
// of both clusters' data.
TEST_F(IntegrationTest, PseudoClusterUnionServed) {
  dcm_->RunOnce();
  // W10 is the every-tenth workstation placed in two clusters by the site
  // builder.
  std::vector<std::string> data = hesiod_.Resolve("W10.MIT.EDU", "cluster");
  std::vector<std::string> single = hesiod_.Resolve("W1.MIT.EDU", "cluster");
  EXPECT_GT(data.size(), single.size());
}

}  // namespace
}  // namespace moira
