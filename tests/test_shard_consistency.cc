// Sharded-vs-flat consistency: the same workload against the same schema at
// different shard counts must produce byte-identical results (sharding is an
// index organization, not a semantic change), routing counters must reflect
// how probes were actually answered, and parallel execution — fan-out shard
// scans and the server's parallel read batches — must match serial execution
// exactly.  The *Parallel* tests here are the TSan smoke subset
// (scripts/check.sh --tsan-smoke).
#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/comerr/moira_errors.h"
#include "src/common/clock.h"
#include "src/common/worker_pool.h"
#include "src/core/context.h"
#include "src/core/registry.h"
#include "src/core/schema.h"
#include "src/db/exec.h"
#include "src/krb/kerberos.h"
#include "src/protocol/wire.h"
#include "src/server/server.h"

namespace moira {
namespace {

// --- table-level consistency --------------------------------------------

// One table partitioned over "id" at a given shard count, plus the mirror of
// live row indices the randomized workload mutates through.
struct ShardVariant {
  SimulatedClock clock{568000000};
  Database db{&clock};
  Table* t = nullptr;

  explicit ShardVariant(size_t shards) {
    TableSchema schema{"t",
                       {{"id", ColumnType::kInt},
                        {"name", ColumnType::kString},
                        {"grp", ColumnType::kInt},
                        {"flags", ColumnType::kInt}}};
    t = db.CreateShardedTable(std::move(schema), "id", shards);
    t->CreateIndex("id");
    t->CreateIndex("name");
    t->CreateIndex("grp");
  }
};

TEST(ShardConsistencyTest, RandomizedWorkloadIsShardCountInvariant) {
  constexpr size_t kShardCounts[] = {1, 2, 4, 8};
  std::vector<std::unique_ptr<ShardVariant>> variants;
  for (size_t shards : kShardCounts) {
    variants.push_back(std::make_unique<ShardVariant>(shards));
  }
  std::mt19937 rng(42);
  std::vector<size_t> live;  // identical storage indices across variants
  int64_t next_id = 1000;
  auto everywhere = [&](auto&& fn) {
    for (auto& v : variants) {
      fn(*v);
    }
  };
  for (int step = 0; step < 600; ++step) {
    int op = static_cast<int>(rng() % 10);
    if (op < 4 || live.empty()) {
      int64_t id = next_id++;
      std::string name = "n" + std::to_string(rng() % 40);
      int64_t grp = static_cast<int64_t>(rng() % 8);
      int64_t flags = static_cast<int64_t>(rng() % 16);
      size_t row = 0;
      everywhere([&](ShardVariant& v) { row = v.t->Append({id, name, grp, flags}); });
      live.push_back(row);
    } else if (op < 6) {
      // Update a non-partition column.
      size_t row = live[rng() % live.size()];
      int64_t grp = static_cast<int64_t>(rng() % 8);
      everywhere([&](ShardVariant& v) {
        v.t->Update(row, v.t->ColumnIndex("grp"), Value(grp));
      });
    } else if (op < 8) {
      // Update the partition column: the row must migrate shards and remain
      // findable under its new key.
      size_t row = live[rng() % live.size()];
      int64_t id = next_id++;
      everywhere([&](ShardVariant& v) {
        v.t->Update(row, v.t->ColumnIndex("id"), Value(id));
      });
    } else {
      size_t pick = rng() % live.size();
      size_t row = live[pick];
      live.erase(live.begin() + pick);
      everywhere([&](ShardVariant& v) { v.t->Delete(row); });
    }

    if (step % 20 != 0) {
      continue;
    }
    // Query battery: every access-path shape, compared row-for-row against
    // the flat (1-shard) variant.
    int64_t probe_id = next_id - 1 - static_cast<int64_t>(rng() % 50);
    // Named (not temporary) to dodge a GCC 12 -Wmaybe-uninitialized false
    // positive on moved-from Value variants.
    Value probe_name("n" + std::to_string(rng() % 40));
    int64_t probe_grp = static_cast<int64_t>(rng() % 8);
    std::vector<Value> in_set;
    for (int k = 0; k < 5; ++k) {
      in_set.emplace_back(static_cast<int64_t>(rng() % 8));
    }
    auto battery = [&](const Table* t) {
      std::vector<std::vector<size_t>> out;
      out.push_back(From(t).WhereEq("id", Value(probe_id)).Rows());
      out.push_back(From(t).WhereEq("name", probe_name).Rows());
      out.push_back(From(t).WhereEq("grp", Value(probe_grp)).Rows());
      out.push_back(
          From(t).WhereBetween("id", Value(probe_id - 100), Value(probe_id)).Rows());
      out.push_back(From(t).WhereIn("grp", in_set).Rows());
      out.push_back(From(t).WhereNe("grp", Value(probe_grp)).Rows());
      out.push_back(From(t).WhereAnyBits("flags", 0x5).Rows());
      out.push_back(From(t).WhereWild("name", "n1*").Rows());
      out.push_back(From(t).Rows());
      return out;
    };
    std::vector<std::vector<size_t>> flat = battery(variants[0]->t);
    for (size_t vi = 1; vi < variants.size(); ++vi) {
      EXPECT_EQ(flat, battery(variants[vi]->t))
          << "shards=" << kShardCounts[vi] << " step=" << step;
    }
  }
  // Shard bookkeeping: per-shard live counts add up to the mirror.
  for (auto& v : variants) {
    std::vector<int64_t> counts = v->t->ShardLiveCounts();
    ASSERT_EQ(v->t->shard_count(), counts.size());
    int64_t total = 0;
    for (int64_t c : counts) {
      total += c;
    }
    EXPECT_EQ(static_cast<int64_t>(live.size()), total);
  }
}

TEST(ShardConsistencyTest, RoutingCountersReflectProbeShape) {
  ShardVariant v(4);
  for (int64_t i = 0; i < 64; ++i) {
    v.t->Append({i, "name" + std::to_string(i % 4), i % 8, int64_t{0}});
  }
  const TableStats& stats = v.t->stats();
  int64_t single_before = stats.single_shard_probes;
  int64_t fanout_before = stats.fanout_scans;
  int64_t set_before = stats.set_probes;

  // Equality on the partition key routes to exactly one shard.
  EXPECT_EQ(1u, From(v.t).WhereEq("id", Value(int64_t{17})).Rows().size());
  EXPECT_EQ(single_before + 1, stats.single_shard_probes);
  EXPECT_EQ(fanout_before, stats.fanout_scans);

  // Equality on any other indexed column fans across every shard.
  EXPECT_EQ(16u, From(v.t).WhereEq("name", Value("name2")).Rows().size());
  EXPECT_EQ(single_before + 1, stats.single_shard_probes);
  EXPECT_EQ(fanout_before + 1, stats.fanout_scans);

  // Membership probes are counted as set probes.
  From(v.t).WhereIn("grp", {Value(int64_t{1}), Value(int64_t{3})}).Rows();
  EXPECT_GT(stats.set_probes, set_before);

  // The per-shard examined ledger only charges the probed shard for a
  // partition-key probe.
  std::vector<int64_t> before = v.t->ShardRowsExamined();
  From(v.t).WhereEq("id", Value(int64_t{23})).Rows();
  std::vector<int64_t> after = v.t->ShardRowsExamined();
  int shards_charged = 0;
  for (size_t s = 0; s < after.size(); ++s) {
    if (after[s] != before[s]) {
      ++shards_charged;
    }
  }
  EXPECT_EQ(1, shards_charged);
}

TEST(ShardConsistencyTest, ParallelFanOutMatchesSerial) {
  ShardVariant serial(4);
  ShardVariant parallel(4);
  WorkerPool pool(3);
  parallel.db.AttachWorkerPool(&pool);
  std::mt19937 rng(7);
  for (int i = 0; i < 20000; ++i) {
    int64_t id = static_cast<int64_t>(rng() % 100000);
    std::string name = "n" + std::to_string(rng() % 100);
    Row row{id, name, static_cast<int64_t>(rng() % 10),
            static_cast<int64_t>(rng() % 4)};
    serial.t->Append(row);
    parallel.t->Append(std::move(row));
  }
  // Fan-out shapes: non-partition eq, range window, full scan with residual.
  EXPECT_EQ(From(serial.t).WhereEq("name", Value("n42")).Rows(),
            From(parallel.t).WhereEq("name", Value("n42")).Rows());
  EXPECT_EQ(From(serial.t)
                .WhereBetween("id", Value(int64_t{1000}), Value(int64_t{5000}))
                .Rows(),
            From(parallel.t)
                .WhereBetween("id", Value(int64_t{1000}), Value(int64_t{5000}))
                .Rows());
  EXPECT_EQ(From(serial.t).WhereNe("grp", Value(int64_t{3})).Count(),
            From(parallel.t).WhereNe("grp", Value(int64_t{3})).Count());

  // Concurrent readers on the same sharded table: every reader must see the
  // same answer (this is the read-read race the atomic counters exist for).
  std::vector<size_t> expect =
      From(parallel.t).WhereEq("name", Value("n7")).Rows();
  WorkerPool readers(4);
  std::vector<std::vector<size_t>> got(16);
  readers.ParallelFor(got.size(), [&](size_t i) {
    got[i] = From(parallel.t).WhereEq("name", Value("n7")).Rows();
  });
  for (const std::vector<size_t>& g : got) {
    EXPECT_EQ(expect, g);
  }
}

// --- query-level consistency --------------------------------------------

// A full Moira stack at a given shard layout.
struct MoiraVariant {
  SimulatedClock clock{568000000};
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;

  explicit MoiraVariant(const SchemaOptions& options) {
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get(), options);
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
  }

  // Runs one registry query as root and serializes code + tuples.
  std::string Run(const std::string& query, const std::vector<std::string>& args) {
    std::string out = query + " code=";
    std::string tuples;
    int32_t code = QueryRegistry::Instance().Execute(
        *mc, "root", "shardtest", query, args, [&](Tuple tuple) {
          tuples += " |";
          for (const std::string& f : tuple) {
            tuples += ' ';
            tuples += f;
          }
        });
    out += std::to_string(code);
    out += tuples;
    out += '\n';
    return out;
  }
};

TEST(ShardConsistencyTest, RegistryWorkloadIsShardCountInvariant) {
  // The op list is generated once, then replayed against every layout.
  std::mt19937 rng(1988);
  std::vector<std::pair<std::string, std::vector<std::string>>> ops;
  int users = 0;
  int lists = 0;
  for (int step = 0; step < 250; ++step) {
    switch (rng() % 8) {
      case 0:
        ops.emplace_back("add_user",
                         std::vector<std::string>{
                             "u" + std::to_string(users), std::to_string(7000 + users),
                             "/bin/csh", "Last", "First", "M", "1",
                             "id" + std::to_string(users), "G"});
        ++users;
        break;
      case 1:
        ops.emplace_back("add_list", std::vector<std::string>{
                                         "l" + std::to_string(lists), "1", "0", "0", "1",
                                         "1", "-1", "NONE", "NONE", "d"});
        ++lists;
        break;
      case 2:
        if (users > 0 && lists > 0) {
          ops.emplace_back("add_member_to_list",
                           std::vector<std::string>{
                               "l" + std::to_string(rng() % lists), "USER",
                               "u" + std::to_string(rng() % users)});
        }
        break;
      case 3:
        if (lists > 1) {
          ops.emplace_back("add_member_to_list",
                           std::vector<std::string>{
                               "l" + std::to_string(rng() % lists), "LIST",
                               "l" + std::to_string(rng() % lists)});
        }
        break;
      case 4:
        if (lists > 0) {
          ops.emplace_back("get_members_of_list",
                           std::vector<std::string>{"l" + std::to_string(rng() % lists)});
        }
        break;
      case 5:
        if (users > 0) {
          ops.emplace_back("get_lists_of_member",
                           std::vector<std::string>{
                               rng() % 2 == 0 ? "USER" : "RUSER",
                               "u" + std::to_string(rng() % users)});
        }
        break;
      case 6:
        ops.emplace_back("get_user_by_login", std::vector<std::string>{"u*"});
        break;
      default:
        if (users > 0) {
          ops.emplace_back("update_user_shell",
                           std::vector<std::string>{
                               "u" + std::to_string(rng() % users), "/bin/sh"});
        }
        break;
    }
  }

  auto transcript = [&](const SchemaOptions& options) {
    MoiraVariant v(options);
    std::string out;
    for (const auto& [query, args] : ops) {
      out += v.Run(query, args);
    }
    return out;
  };
  std::string flat = transcript(SchemaOptions{1, 1});
  // The workload must actually exercise the database, not just fail argument
  // checks identically.
  EXPECT_NE(std::string::npos, flat.find("add_user code=0"));
  EXPECT_NE(std::string::npos, flat.find("get_members_of_list code=0"));
  EXPECT_EQ(flat, transcript(SchemaOptions{4, 4}));
  EXPECT_EQ(flat, transcript(SchemaOptions{8, 8}));
  EXPECT_EQ(flat, transcript(SchemaOptions{3, 5}));
}

// --- server parallel read dispatch --------------------------------------

// Extracts the payload OnMessage expects (frame header stripped).
std::string Payload(const MrRequest& request) {
  FrameReader reader;
  reader.Feed(EncodeRequest(request));
  std::optional<std::string> payload = reader.Next();
  EXPECT_TRUE(payload.has_value());
  return payload.value_or(std::string());
}

struct ServerVariant {
  SimulatedClock clock{568000000};
  std::unique_ptr<Database> db;
  std::unique_ptr<MoiraContext> mc;
  std::unique_ptr<KerberosRealm> realm;
  std::unique_ptr<MoiraServer> server;

  explicit ServerVariant(WorkerPool* read_pool) {
    db = std::make_unique<Database>(&clock);
    CreateMoiraSchema(db.get());
    SeedMoiraDefaults(db.get());
    mc = std::make_unique<MoiraContext>(db.get());
    realm = std::make_unique<KerberosRealm>(&clock);
    ServerOptions options;
    options.read_pool = read_pool;
    server = std::make_unique<MoiraServer>(mc.get(), realm.get(), options);
    // Public, visible lists: get_list_info on them is world_ok, so the
    // batch's unauthenticated retrieves return real tuples.
    for (int i = 0; i < 8; ++i) {
      QueryRegistry::Instance().Execute(
          *mc, "root", "seed", "add_list",
          {"pub" + std::to_string(i), "1", "1", "0", "0", "0", "-1", "NONE", "NONE",
           "list " + std::to_string(i)},
          [](Tuple) {});
    }
    for (uint64_t conn = 1; conn <= 4; ++conn) {
      server->OnConnect(conn, "test:" + std::to_string(conn));
    }
  }
};

TEST(ShardConsistencyTest, ServerBatchParallelRepliesMatchSerial) {
  WorkerPool pool(3);
  ServerVariant with_pool(&pool);
  ServerVariant without_pool(nullptr);

  // A round mixing parallel-safe retrieves with barrier requests: an
  // unauthorized mutation mid-batch and a server-state query near the end.
  std::vector<MessageHandler::BatchItem> batch;
  auto add = [&](uint64_t conn, MrRequest request) {
    batch.push_back(
        MessageHandler::BatchItem{conn, Payload(request), std::string()});
  };
  for (int i = 0; i < 5; ++i) {
    add(1 + static_cast<uint64_t>(i) % 4,
        MrRequest{kMrProtocolVersion, MajorRequest::kQuery,
                  {"get_list_info", "pub" + std::to_string(i)}});
  }
  add(2, MrRequest{kMrProtocolVersion, MajorRequest::kQuery,
                   {"add_machine", "box.mit.edu", "VAX"}});
  for (int i = 5; i < 8; ++i) {
    add(1 + static_cast<uint64_t>(i) % 4,
        MrRequest{kMrProtocolVersion, MajorRequest::kQuery,
                  {"get_list_info", "pub" + std::to_string(i)}});
  }
  add(3, MrRequest{kMrProtocolVersion, MajorRequest::kQuery, {"_list_users"}});
  add(3, MrRequest{kMrProtocolVersion, MajorRequest::kQuery,
                   {"get_list_info", "pub0"}});

  std::vector<MessageHandler::BatchItem> serial_batch = batch;
  with_pool.server->OnMessageBatch(&batch);
  without_pool.server->OnMessageBatch(&serial_batch);
  ASSERT_EQ(serial_batch.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(serial_batch[i].reply, batch[i].reply) << "item " << i;
    EXPECT_FALSE(batch[i].reply.empty()) << "item " << i;
  }
  // The pool server actually dispatched groups in parallel; the serial
  // server never did.
  EXPECT_GE(with_pool.server->stats().parallel_read_batches, 2u);
  EXPECT_GE(with_pool.server->stats().parallel_read_queries, 8u);
  EXPECT_EQ(0u, without_pool.server->stats().parallel_read_batches);
}

TEST(ShardConsistencyTest, ServerBatchPreservesPerConnectionOrder) {
  WorkerPool pool(3);
  ServerVariant v(&pool);
  // One connection sends several distinguishable retrieves in one round;
  // replies must come back in send order.
  std::vector<MessageHandler::BatchItem> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(MessageHandler::BatchItem{
        1,
        Payload(MrRequest{kMrProtocolVersion, MajorRequest::kQuery,
                          {"get_list_info", "pub" + std::to_string(i)}}),
        std::string()});
  }
  v.server->OnMessageBatch(&batch);
  for (int i = 0; i < 6; ++i) {
    // Each reply is a tuple stream mentioning the list it asked for.
    EXPECT_NE(std::string::npos, batch[i].reply.find("pub" + std::to_string(i)))
        << "item " << i;
  }
}

}  // namespace
}  // namespace moira
