// Tests for the Data Control Manager (paper section 5.7): intervals,
// incremental generation, host scans, overrides, soft/hard errors, locks,
// and the failure-notification path.
#include "src/dcm/dcm.h"
#include "src/hesiod/hesiod.h"
#include "src/sim/population.h"
#include "src/zephyrd/zephyr_bus.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class DcmTest : public MoiraEnv {
 protected:
  void SetUp() override {
    SiteBuilder builder(mc_.get(), realm_.get());
    builder.Build(TestSiteSpec());
    hesiod_name_ = builder.hesiod_server_name();
    nfs_names_ = builder.nfs_server_names();
    zephyr_ = std::make_unique<ZephyrBus>(&clock_);
    hosts_ = CreateSimHosts(*mc_, realm_.get(), &directory_);
    dcm_ = std::make_unique<Dcm>(mc_.get(), realm_.get(), zephyr_.get(), &directory_);
    ConfigureStandardServices(dcm_.get());
    // First runs happen a day in, so every interval has elapsed.
    clock_.Advance(kSecondsPerDay);
  }

  SimHost* Host(const std::string& name) { return directory_.Find(name); }

  std::string hesiod_name_;
  std::vector<std::string> nfs_names_;
  std::unique_ptr<ZephyrBus> zephyr_;
  HostDirectory directory_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::unique_ptr<Dcm> dcm_;
};

TEST_F(DcmTest, FirstRunGeneratesAndPropagatesEverything) {
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_TRUE(summary.ran);
  EXPECT_EQ(4, summary.services_considered);  // HESIOD NFS SMTP ZEPHYR (POP interval 0)
  EXPECT_EQ(4, summary.services_generated);
  EXPECT_EQ(0, summary.services_no_change);
  // 1 hesiod + 3 NFS + 1 mail + 3 zephyr hosts.
  EXPECT_EQ(8, summary.hosts_updated);
  EXPECT_EQ(0, summary.host_soft_failures);
  EXPECT_EQ(0, summary.host_hard_failures);
  // Hesiod files were installed and the server restarted.
  SimHost* hesiod = Host(hesiod_name_);
  ASSERT_NE(nullptr, hesiod);
  EXPECT_TRUE(hesiod->HasFile("/etc/athena/hesiod/passwd.db"));
  EXPECT_TRUE(hesiod->HasFile("/etc/athena/hesiod/sloc.db"));
  ASSERT_EQ(1u, hesiod->executed_commands().size());
  EXPECT_EQ("restart_hesiod", hesiod->executed_commands()[0]);
  // NFS hosts got their partition files and credentials.
  SimHost* nfs = Host(nfs_names_[0]);
  EXPECT_TRUE(nfs->HasFile("/site/moira/u1.dirs"));
  EXPECT_TRUE(nfs->HasFile("/site/moira/u1.quotas"));
  EXPECT_TRUE(nfs->HasFile("/site/moira/credentials"));
  // The mail hub's aliases file is staged, not installed over /usr/lib.
  SimHost* mail = Host("ATHENA.MIT.EDU");
  EXPECT_TRUE(mail->HasFile("/usr/lib/moira.staged/aliases"));
  EXPECT_TRUE(mail->HasFile("/usr/lib/moira.staged/passwd"));
}

TEST_F(DcmTest, NoDcmFileDisables) {
  dcm_->set_nodcm(true);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_FALSE(summary.ran);
  EXPECT_EQ(0, summary.hosts_updated);
}

TEST_F(DcmTest, DcmEnableValueDisables) {
  ASSERT_EQ(MR_SUCCESS, mc_->SetValue("dcm_enable", 0));
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_FALSE(summary.ran);
}

TEST_F(DcmTest, SecondRunWithinIntervalDoesNothing) {
  dcm_->RunOnce();
  clock_.Advance(15 * kSecondsPerMinute);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_TRUE(summary.ran);
  EXPECT_EQ(0, summary.services_generated);
  EXPECT_EQ(0, summary.services_no_change);  // not even due for a check
  EXPECT_EQ(0, summary.hosts_updated);
}

TEST_F(DcmTest, UnchangedDatabaseYieldsNoChange) {
  dcm_->RunOnce();
  // 6+ hours later HESIOD is due again, but nothing changed: no new files
  // are generated and nothing propagates (paper section 5.1.E).
  clock_.Advance(7 * kSecondsPerHour);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(0, summary.services_generated);
  EXPECT_EQ(1, summary.services_no_change);  // HESIOD checked, unchanged
  EXPECT_EQ(0, summary.hosts_updated);
  EXPECT_EQ(1, Host(hesiod_name_)->update_count());
}

TEST_F(DcmTest, RelevantChangeTriggersRegeneration) {
  dcm_->RunOnce();
  clock_.Advance(7 * kSecondsPerHour);
  // A user change is relevant to HESIOD (and SMTP/NFS, but those are not due
  // yet at +7h... NFS is 12h, SMTP 24h).
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_user_shell", {"opsmgr", "/bin/changed"}));
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.services_generated);  // HESIOD only
  EXPECT_EQ(1, summary.hosts_updated);
  EXPECT_EQ(2, Host(hesiod_name_)->update_count());
  const std::string* passwd = Host(hesiod_name_)->ReadFile("/etc/athena/hesiod/passwd.db");
  EXPECT_NE(passwd->find("/bin/changed"), std::string::npos);
}

TEST_F(DcmTest, IrrelevantChangeYieldsNoChange) {
  dcm_->RunOnce();
  clock_.Advance(7 * kSecondsPerHour);
  // Zephyr class changes are irrelevant to HESIOD.
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_zephyr_class",
                                {"zclass-3", "zclass-3", "NONE", "NONE", "NONE", "NONE",
                                 "NONE", "NONE", "NONE", "NONE"}));
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(0, summary.services_generated);
  EXPECT_EQ(1, summary.services_no_change);
}

TEST_F(DcmTest, OverrideForcesHostUpdate) {
  dcm_->RunOnce();
  clock_.Advance(10 * kSecondsPerMinute);
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_server_host_override", {"NFS", nfs_names_[0]}));
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.hosts_updated);
  EXPECT_EQ(2, Host(nfs_names_[0])->update_count());
  // The override flag clears after the successful update.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"NFS", nfs_names_[0]}, &tuples));
  EXPECT_EQ("0", tuples[0][3]);
}

TEST_F(DcmTest, DisabledServiceSkipped) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_info",
                                {"HESIOD", "360", "/tmp/hesiod.out", "hesiod.sh",
                                 "REPLICAT", "0", "NONE", "NONE"}));
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(3, summary.services_considered);
  EXPECT_EQ(0, Host(hesiod_name_)->update_count());
}

TEST_F(DcmTest, DisabledHostSkipped) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("update_server_host_info",
                                {"NFS", nfs_names_[1], "0", "0", "0", ""}));
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(7, summary.hosts_updated);
  EXPECT_EQ(0, Host(nfs_names_[1])->update_count());
}

TEST_F(DcmTest, SoftFailureRetriesNextRun) {
  Host(nfs_names_[0])->SetFailMode(HostFailMode::kRefuseConnection);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.host_soft_failures);
  EXPECT_EQ(7, summary.hosts_updated);
  // ltt was recorded, lts was not; the host has no hosterror, so a later run
  // retries it.
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"NFS", nfs_names_[0]}, &tuples));
  EXPECT_EQ("0", tuples[0][4]);   // success
  EXPECT_EQ("0", tuples[0][6]);   // hosterror
  EXPECT_NE("0", tuples[0][8]);   // lasttry
  EXPECT_EQ("0", tuples[0][9]);   // lastsuccess
  clock_.Advance(10 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.hosts_updated);
  EXPECT_EQ(1, Host(nfs_names_[0])->update_count());
}

TEST_F(DcmTest, HardFailureSetsHostErrorAndNotifies) {
  Host(nfs_names_[0])->SetFailMode(HostFailMode::kScriptError);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.host_hard_failures);
  // Zephyrgram to class MOIRA instance DCM plus the mail notification.
  EXPECT_EQ(1u, zephyr_->Matching("MOIRA", "DCM").size());
  EXPECT_EQ(1u, zephyr_->Matching("MAIL", "*").size());
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_info", {"NFS", nfs_names_[0]}, &tuples));
  EXPECT_NE("0", tuples[0][6]);  // hosterror recorded
  // The host is not retried until the error is reset.
  clock_.Advance(10 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(0, Host(nfs_names_[0])->update_count());
  ASSERT_EQ(MR_SUCCESS, RunRoot("reset_server_host_error", {"NFS", nfs_names_[0]}));
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, Host(nfs_names_[0])->update_count());
}

TEST_F(DcmTest, ReplicatedHardFailureHaltsService) {
  // ZEPHYR is replicated across 3 hosts; a hard failure on the first halts
  // updates to the rest and records the error on the service itself.
  SimHost* z1 = Host("ZEPHYR-1.MIT.EDU");
  ASSERT_NE(nullptr, z1);
  z1->SetFailMode(HostFailMode::kScriptError);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.host_hard_failures);
  EXPECT_EQ(0, Host("ZEPHYR-2.MIT.EDU")->update_count());
  EXPECT_EQ(0, Host("ZEPHYR-3.MIT.EDU")->update_count());
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"ZEPHYR"}, &tuples));
  EXPECT_NE("0", tuples[0][9]);  // service harderror
  // With the service hard error set, no further updates are attempted at all.
  clock_.Advance(kSecondsPerDay + kSecondsPerHour);
  summary = dcm_->RunOnce();
  EXPECT_EQ(3, summary.services_considered);
  // reset_server_error clears the error so the next run catches everyone up.
  ASSERT_EQ(MR_SUCCESS, RunRoot("reset_server_error", {"ZEPHYR"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("reset_server_host_error", {"ZEPHYR", "zephyr-1.mit.edu"}));
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, Host("ZEPHYR-1.MIT.EDU")->update_count());
  EXPECT_EQ(1, Host("ZEPHYR-2.MIT.EDU")->update_count());
  EXPECT_EQ(1, Host("ZEPHYR-3.MIT.EDU")->update_count());
}

TEST_F(DcmTest, CrashedHostCaughtUpAfterReboot) {
  SimHost* nfs = Host(nfs_names_[2]);
  nfs->SetFailMode(HostFailMode::kCrashDuringTransfer);
  dcm_->RunOnce();
  EXPECT_TRUE(nfs->crashed());
  // Several runs while down: still a soft failure, still retried.
  clock_.Advance(10 * kSecondsPerMinute);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.host_soft_failures);
  nfs->Reboot();
  clock_.Advance(10 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.hosts_updated);
  EXPECT_TRUE(nfs->HasFile("/site/moira/credentials"));
}

TEST_F(DcmTest, GenerationCountsDistinctFiles) {
  DcmRunSummary summary = dcm_->RunOnce();
  // 11 hesiod + (3 dirs + 3 quotas + 1 shared credentials) + 2 mail + 6
  // zephyr acl files.
  EXPECT_EQ(11 + 7 + 2 + 6, summary.files_generated);
  // Propagations: 11 + 3x3 NFS members + 2 mail + 6x3 zephyr.
  EXPECT_EQ(11 + 9 + 2 + 18, summary.propagations);
}

TEST_F(DcmTest, ServiceLockBlocksConcurrentGeneration) {
  ASSERT_TRUE(dcm_->locks().Acquire("service:HESIOD", LockManager::Mode::kExclusive));
  DcmRunSummary summary = dcm_->RunOnce();
  // HESIOD generation was skipped (lock held); other services proceeded.
  EXPECT_EQ(0, Host(hesiod_name_)->update_count());
  EXPECT_EQ(3, summary.services_generated);
  dcm_->locks().Release("service:HESIOD", LockManager::Mode::kExclusive);
  DcmRunSummary second = dcm_->RunOnce();
  EXPECT_EQ(1, second.services_generated);
  EXPECT_EQ(1, Host(hesiod_name_)->update_count());
}

TEST_F(DcmTest, BreakerFullCycleOnSimulatedClock) {
  DcmResilienceConfig config;
  config.breaker_threshold = 3;
  config.breaker_cooldown = 30 * kSecondsPerMinute;
  dcm_->set_resilience(config);
  SimHost* nfs = Host(nfs_names_[0]);
  nfs->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);  // down for good

  // Three consecutive soft failures cross the threshold and open the breaker.
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.host_soft_failures);
  EXPECT_EQ(0, summary.breaker_opens);
  for (int pass = 2; pass <= 3; ++pass) {
    clock_.Advance(15 * kSecondsPerMinute);
    summary = dcm_->RunOnce();
  }
  EXPECT_EQ(1, summary.breaker_opens);
  EXPECT_EQ(3, nfs->connect_attempts());
  // Quarantine is escalated exactly once via Zephyr class MOIRA instance DCM.
  EXPECT_EQ(1u, zephyr_->Matching("MOIRA", "DCM").size());
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_health", {}, &tuples));
  auto health = [&]() -> Tuple {
    for (const Tuple& t : tuples) {
      if (t[0] == "NFS" && t[1] == nfs_names_[0]) {
        return t;
      }
    }
    return {};
  };
  ASSERT_FALSE(health().empty());
  EXPECT_EQ("OPEN", health()[2]);
  EXPECT_EQ("3", health()[3]);  // consec_soft
  EXPECT_EQ("1", health()[5]);  // breaker_opens

  // While the breaker is open the host consumes zero update attempts.
  clock_.Advance(15 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.breaker_skips);
  EXPECT_EQ(0, summary.host_soft_failures);
  EXPECT_EQ(3, nfs->connect_attempts());

  // After the cool-down, a single half-open probe; still down, so it reopens.
  clock_.Advance(20 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.probe_failures);
  EXPECT_EQ(4, nfs->connect_attempts());
  EXPECT_EQ(1u, zephyr_->Matching("MOIRA", "DCM").size());  // no re-escalation

  // Host heals; the next probe closes the breaker and the update lands.
  nfs->SetFailMode(HostFailMode::kNone);
  clock_.Advance(31 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.probe_successes);
  EXPECT_EQ(1, summary.hosts_updated);
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_host_health", {}, &tuples));
  EXPECT_EQ("CLOSED", health()[2]);
  EXPECT_EQ("0", health()[3]);
  EXPECT_EQ("1", health()[5]);  // lifetime quarantine count survives closing
}

TEST_F(DcmTest, OperatorResetClearsBreakerState) {
  DcmResilienceConfig config;
  config.breaker_threshold = 2;
  config.breaker_cooldown = kSecondsPerHour;
  dcm_->set_resilience(config);
  SimHost* nfs = Host(nfs_names_[1]);
  nfs->SetFailMode(HostFailMode::kRefuseConnection, 1 << 20);
  dcm_->RunOnce();
  clock_.Advance(15 * kSecondsPerMinute);
  dcm_->RunOnce();  // second soft failure opens the breaker
  clock_.Advance(15 * kSecondsPerMinute);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.breaker_skips);
  // reset_server_host_error clears the quarantine as well as hosterror, so
  // the operator can force an immediate retry.
  nfs->SetFailMode(HostFailMode::kNone);
  ASSERT_EQ(MR_SUCCESS, RunRoot("reset_server_host_error", {"NFS", nfs_names_[1]}));
  clock_.Advance(15 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(0, summary.breaker_skips);
  EXPECT_EQ(1, summary.hosts_updated);
}

TEST_F(DcmTest, InPassRetriesHealFlakyFleet) {
  DcmResilienceConfig config;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff = 2;
  dcm_->set_resilience(config);
  dcm_->update_client().set_sleep_fn([this](UnixTime s) { clock_.Advance(s); });
  Host(nfs_names_[0])->SetFailMode(HostFailMode::kFlaky, 2);
  Host("ZEPHYR-2.MIT.EDU")->SetFailMode(HostFailMode::kFlaky, 1);
  DcmRunSummary summary = dcm_->RunOnce();
  // Both flaky hosts heal within the pass; the summary counts the retries.
  EXPECT_EQ(8, summary.hosts_updated);
  EXPECT_EQ(0, summary.host_soft_failures);
  EXPECT_EQ(3, summary.host_retries);
}

TEST_F(DcmTest, CrashDuringExecuteConvergesToSameFilesAsReplica) {
  SimHost* z1 = Host("ZEPHYR-1.MIT.EDU");
  z1->SetFailMode(HostFailMode::kCrashDuringExecute);
  DcmRunSummary summary = dcm_->RunOnce();
  EXPECT_TRUE(z1->crashed());
  EXPECT_EQ(1, summary.host_soft_failures);
  z1->Reboot();
  clock_.Advance(15 * kSecondsPerMinute);
  summary = dcm_->RunOnce();
  EXPECT_EQ(1, summary.hosts_updated);
  EXPECT_EQ(0, summary.host_soft_failures);
  // Idempotence: re-running the instructions converges the crashed host to
  // exactly the installed files of a replica that never crashed (ignoring
  // protocol artifacts: the re-install keeps .moira_backup copies).
  auto installed = [](SimHost* host) {
    std::vector<std::string> files;
    for (const std::string& path : host->ListFiles()) {
      if (path.ends_with(kUpdateSuffix) || path.ends_with(kBackupSuffix)) {
        continue;
      }
      files.push_back(path);
    }
    return files;
  };
  SimHost* z2 = Host("ZEPHYR-2.MIT.EDU");
  ASSERT_EQ(installed(z2), installed(z1));
  for (const std::string& path : installed(z2)) {
    EXPECT_EQ(*z2->ReadFile(path), *z1->ReadFile(path)) << path;
  }
  EXPECT_FALSE(installed(z1).empty());
}

TEST_F(DcmTest, HesiodServesGeneratedFilesAfterUpdate) {
  // Wire a HesiodServer to the host's restart command, as the install script
  // does in production.
  HesiodServer hesiod;
  SimHost* host = Host(hesiod_name_);
  host->RegisterCommand("restart_hesiod", [&hesiod](SimHost& h) {
    std::vector<std::string> texts;
    for (const char* file :
         {"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db", "passwd.db",
          "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db"}) {
      const std::string* contents = h.ReadFile(std::string("/etc/athena/hesiod/") + file);
      if (contents == nullptr) {
        return 1;
      }
      texts.push_back(*contents);
    }
    return hesiod.Reload(texts) >= 0 ? 0 : 1;
  });
  dcm_->RunOnce();
  EXPECT_EQ(1, hesiod.reload_count());
  EXPECT_GT(hesiod.record_count(), 0u);
  // A known active user resolves.
  EXPECT_FALSE(hesiod.Resolve("opsmgr", "passwd").empty());
}

}  // namespace
}  // namespace moira
