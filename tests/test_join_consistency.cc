// Randomized join-consistency properties for the cost-based executor.
//
// The reordered, probe-batched execution (src/db/exec.cc) must be
// observationally identical to the naive left-to-right nested loop: same
// tuple sequence, not just the same multiset.  Each round builds a random
// chain of 2-4 tables — random indexes (including folded), duplicate join
// keys, tombstoned rows, random stage conditions and residual filters — and
// checks three executions against each other:
//
//   1. a handwritten nested loop over the raw slots (the oracle);
//   2. Selector with ForceNaiveJoin() (one probe per outer row);
//   3. the cost-based Selector (reordered stages, batched probes).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/db/exec.h"

namespace moira {
namespace {

// A mixed-case pool so folded indexes see keys that collide only after
// case-folding.
const char* const kStrings[] = {"Aa", "aa", "bB", "bb", "Cc"};

// One stage of a randomly generated join chain, kept in a declarative form
// so the oracle can re-evaluate it without going through the executor.
struct StageSpec {
  Table* table = nullptr;
  // Join with the previous stage (unused for stage 0).  Column indices are
  // the same in every generated table: 0 = k (int), 1 = s (string),
  // 2 = v (int).
  int join_col = 0;
  // Conditions: kEq on s, kEq on v, or kBetween on v.
  std::vector<Condition> conds;
  // Residual filter on v's parity, if any.
  bool has_filter = false;
  int64_t parity = 0;
};

bool OracleRowPasses(const StageSpec& spec, size_t row) {
  for (const Condition& cond : spec.conds) {
    const Value& cell = spec.table->Cell(row, cond.column);
    switch (cond.op) {
      case Condition::Op::kEq:
        if (!(cell == cond.operand)) return false;
        break;
      case Condition::Op::kBetween:
        if (cell < cond.operand || cond.operand2 < cell) return false;
        break;
      default:
        ADD_FAILURE() << "unexpected generated op";
        return false;
    }
  }
  if (spec.has_filter && spec.table->Cell(row, 2).AsInt() % 2 != spec.parity) {
    return false;
  }
  return true;
}

// The naive left-to-right nested loop, written directly against the slots.
std::vector<std::vector<size_t>> OracleJoin(const std::vector<StageSpec>& specs) {
  std::vector<std::vector<size_t>> out;
  std::vector<size_t> tuple(specs.size());
  std::function<void(size_t)> rec = [&](size_t stage) {
    if (stage == specs.size()) {
      out.push_back(tuple);
      return;
    }
    const StageSpec& spec = specs[stage];
    for (size_t row = 0; row < spec.table->SlotCount(); ++row) {
      if (!spec.table->IsLive(row) || !OracleRowPasses(spec, row)) continue;
      if (stage > 0) {
        const Value& left = specs[stage - 1].table->Cell(tuple[stage - 1], spec.join_col);
        if (!(spec.table->Cell(row, spec.join_col) == left)) continue;
      }
      tuple[stage] = row;
      rec(stage + 1);
    }
  };
  rec(0);
  return out;
}

Selector BuildSelector(const std::vector<StageSpec>& specs) {
  Selector sel = From(specs[0].table);
  for (size_t i = 0; i < specs.size(); ++i) {
    const StageSpec& spec = specs[i];
    const char* join_name = spec.join_col == 0 ? "k" : "s";
    if (i > 0) sel.Join(spec.table, join_name, join_name);
    for (const Condition& cond : spec.conds) sel.Where(cond);
    if (spec.has_filter) {
      const int64_t parity = spec.parity;
      sel.Filter([parity](const Table& t, size_t row) {
        return t.Cell(row, 2).AsInt() % 2 == parity;
      });
    }
  }
  return sel;
}

std::vector<std::vector<size_t>> Collect(Selector& sel) {
  std::vector<std::vector<size_t>> out;
  sel.Emit([&](const std::vector<size_t>& rows) { out.push_back(rows); });
  return out;
}

class JoinConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinConsistencyTest, CostBasedMatchesNaiveNestedLoop) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    SimulatedClock clock(0);
    Database db(&clock);
    const size_t nstages = 2 + rng.Below(3);
    std::vector<StageSpec> specs(nstages);
    for (size_t i = 0; i < nstages; ++i) {
      Table* t = db.CreateTable(TableSchema{"t" + std::to_string(i),
                                            {{"k", ColumnType::kInt},
                                             {"s", ColumnType::kString},
                                             {"v", ColumnType::kInt}}});
      if (rng.Below(2) == 0) t->CreateIndex("k");
      if (rng.Below(2) == 0) t->CreateIndex("s");
      if (rng.Below(2) == 0) t->CreateFoldedIndex("s");
      if (rng.Below(3) == 0) t->CreateIndex("v");
      const size_t nrows = 1 + rng.Below(40);
      for (size_t r = 0; r < nrows; ++r) {
        size_t row = t->Append({static_cast<int64_t>(rng.Below(6)),
                                kStrings[rng.Below(5)],
                                static_cast<int64_t>(rng.Below(50))});
        if (rng.Below(5) == 0) t->Delete(row);
      }
      StageSpec& spec = specs[i];
      spec.table = t;
      spec.join_col = rng.Below(2) == 0 ? 0 : 1;
      const size_t nconds = rng.Below(3);
      for (size_t c = 0; c < nconds; ++c) {
        switch (rng.Below(3)) {
          case 0:
            spec.conds.push_back(Condition{1, Condition::Op::kEq,
                                           Value(kStrings[rng.Below(5)]), Value()});
            break;
          case 1:
            spec.conds.push_back(Condition{2, Condition::Op::kEq,
                                           Value(static_cast<int64_t>(rng.Below(50))),
                                           Value()});
            break;
          default: {
            const auto lo = static_cast<int64_t>(rng.Below(40));
            spec.conds.push_back(Condition{2, Condition::Op::kBetween, Value(lo),
                                           Value(lo + static_cast<int64_t>(rng.Below(20)))});
            break;
          }
        }
      }
      if (rng.Below(3) == 0) {
        spec.has_filter = true;
        spec.parity = static_cast<int64_t>(rng.Below(2));
      }
    }
    // Stage 0's join_col is what stage 1 links on; normalise so the oracle
    // and BuildSelector agree on which column each Join uses.
    for (size_t i = 0; i + 1 < nstages; ++i) specs[i].join_col = specs[i + 1].join_col;

    const std::vector<std::vector<size_t>> expected = OracleJoin(specs);

    Selector naive = BuildSelector(specs);
    naive.ForceNaiveJoin();
    EXPECT_EQ(expected, Collect(naive)) << "naive, round " << round;

    Selector cost = BuildSelector(specs);
    EXPECT_EQ(expected, Collect(cost)) << "cost-based, round " << round;

    // Rows(): deduplicated base rows in storage order, identical across
    // execution strategies.
    std::vector<size_t> base;
    for (const auto& tuple : expected) base.push_back(tuple[0]);
    std::sort(base.begin(), base.end());
    base.erase(std::unique(base.begin(), base.end()), base.end());
    Selector rows_cost = BuildSelector(specs);
    EXPECT_EQ(base, rows_cost.Rows()) << "Rows(), round " << round;

    Selector count_cost = BuildSelector(specs);
    EXPECT_EQ(expected.size(), count_cost.Count()) << "Count(), round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinConsistencyTest,
                         ::testing::Values(21, 22, 23, 99, 2026));

}  // namespace
}  // namespace moira
