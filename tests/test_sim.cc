// Tests for the synthetic site generator (DESIGN.md substitution for the MIT
// population): determinism and internal consistency invariants.
#include "src/sim/population.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class SimTest : public MoiraEnv {
 protected:
  int BuildSite(const SiteSpec& spec) {
    SiteBuilder builder(mc_.get(), realm_.get());
    int users = builder.Build(spec);
    builder_logins_ = builder.active_logins();
    return users;
  }

  std::vector<std::string> builder_logins_;
};

TEST_F(SimTest, BuildsRequestedScale) {
  SiteSpec spec = TestSiteSpec();
  EXPECT_EQ(spec.total_users, BuildSite(spec));
  // +1 for the opsmgr admin account.
  EXPECT_EQ(static_cast<size_t>(spec.total_users) + 1, mc_->users()->LiveCount());
  EXPECT_EQ(static_cast<size_t>(spec.clusters), mc_->cluster()->LiveCount());
  EXPECT_EQ(static_cast<size_t>(spec.printers), mc_->printcap()->LiveCount());
  EXPECT_EQ(static_cast<size_t>(spec.zephyr_classes), mc_->zephyr()->LiveCount());
  EXPECT_EQ(static_cast<size_t>(spec.network_services), mc_->services()->LiveCount());
  EXPECT_EQ(static_cast<size_t>(spec.nfs_servers * spec.partitions_per_server),
            mc_->nfsphys()->LiveCount());
}

TEST_F(SimTest, DeterministicAcrossBuilds) {
  SiteSpec spec = TestSiteSpec();
  BuildSite(spec);
  std::vector<std::string> first_logins = builder_logins_;
  // Fresh environment, same seed: identical logins.
  SimulatedClock clock2(568000000);
  Database db2(&clock2);
  CreateMoiraSchema(&db2);
  SeedMoiraDefaults(&db2);
  MoiraContext mc2(&db2);
  KerberosRealm realm2(&clock2);
  SiteBuilder builder2(&mc2, &realm2);
  builder2.Build(spec);
  EXPECT_EQ(first_logins, builder2.active_logins());
}

TEST_F(SimTest, EveryActiveUserFullyProvisioned) {
  SiteSpec spec = TestSiteSpec();
  BuildSite(spec);
  for (const std::string& login : builder_logins_) {
    RowRef user = mc_->UserByLogin(login);
    ASSERT_EQ(MR_SUCCESS, user.code) << login;
    EXPECT_EQ(kUserActive, MoiraContext::IntCell(mc_->users(), user.row, "status"));
    EXPECT_EQ("POP", MoiraContext::StrCell(mc_->users(), user.row, "potype"));
    EXPECT_EQ(MR_SUCCESS, mc_->FilesysByLabel(login).code) << login;
    EXPECT_EQ(MR_SUCCESS, mc_->ListByName(login).code) << login;
  }
}

TEST_F(SimTest, QuotaAllocationConsistent) {
  BuildSite(TestSiteSpec());
  // Sum of quotas per partition equals the partition's allocated count.
  std::map<int64_t, int64_t> by_phys;
  Table* quota = mc_->nfsquota();
  int phys_col = quota->ColumnIndex("phys_id");
  int q_col = quota->ColumnIndex("quota");
  quota->Scan([&](size_t, const Row& r) {
    by_phys[r[phys_col].AsInt()] += r[q_col].AsInt();
    return true;
  });
  Table* phys = mc_->nfsphys();
  phys->Scan([&](size_t row, const Row&) {
    int64_t phys_id = MoiraContext::IntCell(phys, row, "nfsphys_id");
    EXPECT_EQ(by_phys[phys_id], MoiraContext::IntCell(phys, row, "allocated"));
    return true;
  });
}

TEST_F(SimTest, PopCountsMatchAssignments) {
  BuildSite(TestSiteSpec());
  // value1 on each POP serverhost equals the number of users assigned to it.
  Table* sh = mc_->serverhosts();
  int service_col = sh->ColumnIndex("service");
  Table* users = mc_->users();
  int potype_col = users->ColumnIndex("potype");
  int pop_col = users->ColumnIndex("pop_id");
  for (size_t row :
       sh->Match({Condition{service_col, Condition::Op::kEq, Value("POP")}})) {
    int64_t mach_id = MoiraContext::IntCell(sh, row, "mach_id");
    int64_t counted = 0;
    users->Scan([&](size_t, const Row& r) {
      if (r[potype_col].AsString() == "POP" && r[pop_col].AsInt() == mach_id) {
        ++counted;
      }
      return true;
    });
    EXPECT_EQ(counted, MoiraContext::IntCell(sh, row, "value1"));
  }
}

TEST_F(SimTest, ServerTableMatchesPaperServices) {
  BuildSite(TestSiteSpec());
  for (const char* service : {"HESIOD", "NFS", "SMTP", "ZEPHYR", "POP"}) {
    EXPECT_EQ(MR_SUCCESS, mc_->ServiceByName(service).code) << service;
  }
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"HESIOD"}, &tuples));
  EXPECT_EQ("360", tuples[0][1]);   // 6 hours
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"NFS"}, &tuples));
  EXPECT_EQ("720", tuples[0][1]);   // 12 hours
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_server_info", {"SMTP"}, &tuples));
  EXPECT_EQ("1440", tuples[0][1]);  // 24 hours
}

TEST_F(SimTest, AdminHasAllCapabilities) {
  BuildSite(TestSiteSpec());
  EXPECT_EQ(MR_SUCCESS, Run("opsmgr", "add_machine", {"extra.mit.edu", "VAX"}));
  EXPECT_EQ(MR_SUCCESS,
            Run("opsmgr", "update_user_shell", {builder_logins_[0], "/bin/new"}));
}

TEST_F(SimTest, IdCountersFlushedToValues) {
  BuildSite(TestSiteSpec());
  // Allocating a fresh id through the normal path must not collide.
  int64_t users_id = 0;
  ASSERT_EQ(MR_SUCCESS, mc_->AllocateId("users_id", mc_->users(), "users_id", &users_id));
  Table* users = mc_->users();
  int col = users->ColumnIndex("users_id");
  EXPECT_TRUE(users->Match({Condition{col, Condition::Op::kEq, Value(users_id)}}).empty());
}

TEST_F(SimTest, SimHostsCoverAllServerMachines) {
  BuildSite(TestSiteSpec());
  HostDirectory directory;
  std::vector<std::unique_ptr<SimHost>> hosts =
      CreateSimHosts(*mc_, realm_.get(), &directory);
  // 1 hesiod + 3 nfs + 1 mail + 3 zephyr + 2 pop = 10 distinct machines.
  EXPECT_EQ(10u, hosts.size());
  EXPECT_NE(nullptr, directory.Find("SUOMI.MIT.EDU"));
  EXPECT_NE(nullptr, directory.Find("ATHENA.MIT.EDU"));
}

}  // namespace
}  // namespace moira
