// Tests for the machine and cluster queries (paper section 7.0.2).
#include "src/core/acl.h"
#include "tests/test_env.h"

namespace moira {
namespace {

class MachineQueriesTest : public MoiraEnv {};

TEST_F(MachineQueriesTest, AddUppercasesAndValidatesType) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"kermit.mit.edu", "VAX"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_machine", {"KERMIT.MIT.EDU"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("KERMIT.MIT.EDU", tuples[0][0]);
  EXPECT_EQ("VAX", tuples[0][1]);
  EXPECT_EQ(MR_TYPE, RunRoot("add_machine", {"other.mit.edu", "SUN"}));
  EXPECT_EQ(MR_NOT_UNIQUE, RunRoot("add_machine", {"KERMIT.mit.edu", "RT"}));
}

TEST_F(MachineQueriesTest, GetMachineIsCaseInsensitiveWithWildcards) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"a1.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"a2.mit.edu", "RT"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"b1.mit.edu", "RT"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_machine", {"a*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  EXPECT_EQ(MR_NO_MATCH, RunRoot("get_machine", {"z*"}));
  // Anyone may look up machines (world query).
  EXPECT_EQ(MR_SUCCESS, Run("nobody", "get_machine", {"B1.MIT.EDU"}));
}

TEST_F(MachineQueriesTest, UpdateMachine) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"old.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"taken.mit.edu", "VAX"}));
  EXPECT_EQ(MR_NOT_UNIQUE,
            RunRoot("update_machine", {"old.mit.edu", "taken.mit.edu", "VAX"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("update_machine", {"old.mit.edu", "new.mit.edu", "RT"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_machine", {"NEW.MIT.EDU"}, &tuples));
  EXPECT_EQ("RT", tuples[0][1]);
  EXPECT_EQ(MR_MACHINE, RunRoot("update_machine", {"old.mit.edu", "x.mit.edu", "RT"}));
}

TEST_F(MachineQueriesTest, DeleteMachineBlockedWhileReferenced) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"spool.mit.edu", "VAX"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_printcap", {"lp1", "spool.mit.edu", "/spool/lp1",
                                                 "lp1", ""}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_machine", {"spool.mit.edu"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_printcap", {"lp1"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_machine", {"spool.mit.edu"}));
  EXPECT_EQ(MR_MACHINE, RunRoot("delete_machine", {"spool.mit.edu"}));
}

TEST_F(MachineQueriesTest, DeleteMachineBlockedByPobox) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"po.mit.edu", "VAX"}));
  AddActiveUser("boxuser", 3100);
  ASSERT_EQ(MR_SUCCESS, RunRoot("set_pobox", {"boxuser", "POP", "po.mit.edu"}));
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_machine", {"po.mit.edu"}));
}

TEST_F(MachineQueriesTest, ClusterLifecycle) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"bldge40", "E40 cluster", "E40"}));
  EXPECT_EQ(MR_NOT_UNIQUE, RunRoot("add_cluster", {"bldge40", "dup", "x"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_cluster", {"bldg*"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("E40 cluster", tuples[0][1]);
  ASSERT_EQ(MR_SUCCESS,
            RunRoot("update_cluster", {"bldge40", "bldge40-vs", "still E40", "E40"}));
  EXPECT_EQ(MR_CLUSTER, RunRoot("update_cluster", {"bldge40", "x", "d", "l"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_cluster", {"bldge40-vs"}));
  EXPECT_EQ(MR_CLUSTER, RunRoot("delete_cluster", {"bldge40-vs"}));
}

TEST_F(MachineQueriesTest, ClusterNamesAreCaseSensitive) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"Alpha", "d", "l"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"alpha", "d", "l"}));
}

TEST_F(MachineQueriesTest, MachineClusterMap) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"toto.mit.edu", "RT"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"oz", "d", "l"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine_to_cluster", {"toto.mit.edu", "oz"}));
  EXPECT_EQ(MR_EXISTS, RunRoot("add_machine_to_cluster", {"toto.mit.edu", "oz"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_machine_to_cluster_map", {"*", "*"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("TOTO.MIT.EDU", tuples[0][0]);
  EXPECT_EQ("oz", tuples[0][1]);
  // A cluster with machines cannot be deleted.
  EXPECT_EQ(MR_IN_USE, RunRoot("delete_cluster", {"oz"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_machine_from_cluster", {"toto.mit.edu", "oz"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("delete_machine_from_cluster", {"toto.mit.edu", "oz"}));
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_cluster", {"oz"}));
}

TEST_F(MachineQueriesTest, DeleteMachineDropsClusterAssignment) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine", {"gone.mit.edu", "RT"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"c1", "d", "l"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_machine_to_cluster", {"gone.mit.edu", "c1"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_machine", {"gone.mit.edu"}));
  EXPECT_EQ(MR_NO_MATCH, RunRoot("get_machine_to_cluster_map", {"*", "c1"}));
}

TEST_F(MachineQueriesTest, ClusterData) {
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster", {"bldgw20", "d", "l"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster_data", {"bldgw20", "zephyr", "z1.mit.edu"}));
  ASSERT_EQ(MR_SUCCESS, RunRoot("add_cluster_data", {"bldgw20", "usrlib", "w20-usrlib"}));
  EXPECT_EQ(MR_TYPE, RunRoot("add_cluster_data", {"bldgw20", "badlabel", "x"}));
  std::vector<Tuple> tuples;
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_cluster_data", {"bldgw20", "*"}, &tuples));
  EXPECT_EQ(2u, tuples.size());
  tuples.clear();
  ASSERT_EQ(MR_SUCCESS, RunRoot("get_cluster_data", {"*", "zephyr"}, &tuples));
  ASSERT_EQ(1u, tuples.size());
  EXPECT_EQ("z1.mit.edu", tuples[0][2]);
  EXPECT_EQ(MR_SUCCESS, RunRoot("delete_cluster_data", {"bldgw20", "zephyr", "z1.mit.edu"}));
  EXPECT_EQ(MR_NO_MATCH,
            RunRoot("delete_cluster_data", {"bldgw20", "zephyr", "z1.mit.edu"}));
  // Deleting the cluster deletes its remaining service data.
  ASSERT_EQ(MR_SUCCESS, RunRoot("delete_cluster", {"bldgw20"}));
  EXPECT_EQ(0u, mc_->svc()->LiveCount());
}

TEST_F(MachineQueriesTest, NonPrivilegedCannotMutate) {
  AddActiveUser("pleb", 3200);
  EXPECT_EQ(MR_PERM, Run("pleb", "add_machine", {"h.mit.edu", "VAX"}));
  EXPECT_EQ(MR_PERM, Run("pleb", "add_cluster", {"c", "d", "l"}));
  EXPECT_EQ(MR_PERM, Run("", "add_machine", {"h.mit.edu", "VAX"}));
}

TEST_F(MachineQueriesTest, DbadminMemberGainsAccess) {
  AddActiveUser("admin2", 3300);
  RowRef dbadmin = mc_->ListByName("dbadmin");
  ASSERT_EQ(MR_SUCCESS, dbadmin.code);
  mc_->members()->Append({Value(MoiraContext::IntCell(mc_->list(), dbadmin.row, "list_id")),
                          Value("USER"), Value(int64_t{
                              PrincipalUserId(*mc_, "admin2")})});
  QueryRegistry::Instance().SeedCapacls(*mc_, "dbadmin");
  EXPECT_EQ(MR_SUCCESS, Run("admin2", "add_machine", {"h.mit.edu", "VAX"}));
}

}  // namespace
}  // namespace moira
